"""THM1 — Theorem 1: weakenings are administrative refinements.

Regenerates the theorem's verification table over the paper's policy
and random policies, and measures the bounded Definition-7 checker.
"""

from conftest import print_table

from repro.core.admin_refinement import check_admin_refinement
from repro.core.privileges import Grant
from repro.core.refinement import enumerate_weakenings, weaken_assignment
from repro.papercases import figures
from repro.workloads.generators import PolicyShape, random_policy


def test_report_theorem1_verification_sweep():
    """Every enumerable single-assignment weakening of Figure 2 and of
    random policies passes the bounded Definition-7 check."""
    rows = []
    checked = confirmed = 0
    policy = figures.figure2()
    for _role, stronger, weaker, psi in list(
        enumerate_weakenings(policy, max_depth=1)
    )[:6]:
        result = check_admin_refinement(policy, psi, depth=1)
        checked += 1
        confirmed += result.holds
        rows.append((
            "figure 2", str(stronger), str(weaker),
            "holds" if result.holds else "REFUTED",
        ))
    for seed in range(3):
        random = random_policy(
            seed, PolicyShape(n_admin_privileges=2, max_nesting=1,
                              allow_revocations=False),
        )
        for _role, stronger, weaker, psi in list(
            enumerate_weakenings(random, max_depth=1)
        )[:2]:
            result = check_admin_refinement(random, psi, depth=1)
            checked += 1
            confirmed += result.holds
            rows.append((
                f"random(seed={seed})", str(stronger), str(weaker),
                "holds" if result.holds else "REFUTED",
            ))
    print_table(
        "Theorem 1: weakening substitutions checked against bounded "
        "Definition 7 (paper: every weakening refines)",
        ["policy", "stronger", "weaker", "verdict"],
        rows,
    )
    assert checked == confirmed


def test_report_definition7_quantifier_directions():
    """The reproduction finding recorded in EXPERIMENTS.md: the
    formula as printed (universal over φ's queues) cannot see an
    administrative strengthening; the prose reading (universal over
    ψ's queues) refutes it."""
    from repro.core.entities import Role, User
    from repro.core.policy import Policy
    from repro.core.privileges import perm

    jane, bob = User("jane"), User("bob")
    staff, nurse, db, hr = Role("staff"), Role("nurse"), Role("db"), Role("HR")
    base = dict(
        ua=[(jane, hr)],
        rh=[(staff, nurse), (staff, db)],
        pa=[(nurse, perm("print", "black")), (db, perm("write", "t3"))],
    )
    phi = Policy(**base)
    phi.add_user(bob)
    phi.assign_privilege(hr, Grant(bob, db))
    strengthened = Policy(**base)
    strengthened.add_user(bob)
    strengthened.assign_privilege(hr, Grant(bob, staff))
    weakened = weaken_assignment(
        strengthened, hr, Grant(bob, staff), Grant(bob, db)
    )

    rows = []
    for label, a, b in [
        ("Theorem-1 weakening", strengthened, weakened),
        ("strengthening", phi, strengthened),
    ]:
        printed = check_admin_refinement(a, b, depth=1,
                                         direction="phi-universal")
        prose = check_admin_refinement(a, b, depth=1,
                                       direction="psi-universal")
        rows.append((
            label,
            "holds" if printed.holds else "refuted",
            "holds" if prose.holds else "refuted",
        ))
    print_table(
        "Definition 7 quantifier directions (printed formula vs prose "
        "intuition) on a weakening and a strengthening",
        ["substitution", "as printed (forall phi)", "prose (forall psi)"],
        rows,
    )
    assert rows[0] == ("Theorem-1 weakening", "holds", "holds")
    assert rows[1] == ("strengthening", "holds", "refuted")


def test_bench_definition7_depth1(benchmark):
    phi = figures.figure2()
    psi = weaken_assignment(
        phi, figures.HR,
        Grant(figures.BOB, figures.STAFF),
        Grant(figures.BOB, figures.DBUSR2),
    )
    result = benchmark(lambda: check_admin_refinement(phi, psi, depth=1))
    assert result.holds


def test_bench_definition7_depth2(benchmark):
    phi = figures.figure2()
    psi = weaken_assignment(
        phi, figures.HR,
        Grant(figures.BOB, figures.STAFF),
        Grant(figures.BOB, figures.DBUSR2),
    )
    result = benchmark(lambda: check_admin_refinement(phi, psi, depth=2))
    assert result.holds


def test_bench_counterexample_detection(benchmark):
    """Refuting a strengthening (the checker's other job)."""
    from repro.core.entities import Role, User
    from repro.core.policy import Policy
    from repro.core.privileges import perm

    jane, bob = User("jane"), User("bob")
    staff, nurse, db, hr = Role("staff"), Role("nurse"), Role("db"), Role("HR")
    base = dict(
        ua=[(jane, hr)],
        rh=[(staff, nurse), (staff, db)],
        pa=[(nurse, perm("print", "black")), (db, perm("write", "t3"))],
    )
    phi = Policy(**base)
    phi.add_user(bob)
    phi.assign_privilege(hr, Grant(bob, db))
    psi = Policy(**base)
    psi.add_user(bob)
    psi.assign_privilege(hr, Grant(bob, staff))

    result = benchmark(lambda: check_admin_refinement(phi, psi, depth=1))
    assert not result.holds
