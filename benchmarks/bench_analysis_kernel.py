"""Compiled analysis explorers vs. the frozenset oracle.

The claim under test: rebuilding the analysis layer's state-space
exploration on the bitset kernel — one mutable policy driven by an
apply/undo log, candidate pruning and ``reaches`` probes as bit tests,
canonical-fingerprint deduplication — beats the copy-per-candidate
frozenset explorers by >=5x on the enterprise workload at depth 3, for
both

* **safety** — ``can_obtain`` witness search (one query per
  department's newcomer against its bottom-level document privilege),
  and
* **admin reachability** — ``reachable_policies`` materializing every
  distinct policy state within the bound.

A third report pins differential identity on the bench workload itself
(state counts, witness lengths, ``states_explored``), and a reduced
invariant-10 campaign must come back clean.

Run under pytest (``pytest benchmarks/bench_analysis_kernel.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_analysis_kernel.py``).
``ANALYSIS_BENCH_DEPARTMENTS`` / ``ANALYSIS_BENCH_LEVELS`` /
``ANALYSIS_BENCH_EMPLOYEES`` shrink the workload for CI smoke runs;
``ANALYSIS_SPEEDUP_TARGET`` adjusts the assertion bar;
``tools/bench_report.py`` sets ``ANALYSIS_METRICS_OUT`` to collect the
numbers into the ``BENCH_kernel.json`` trajectory.
"""

import json
import os
import time

from conftest import print_table

from repro.analysis.reachability import reachable_policies
from repro.analysis.safety import can_obtain
from repro.core.commands import Mode, candidate_commands
from repro.core.entities import User
from repro.core.privileges import perm
from repro.workloads.enterprise import EnterpriseShape, enterprise_policy

DEPARTMENTS = int(os.environ.get("ANALYSIS_BENCH_DEPARTMENTS", "3"))
LEVELS = int(os.environ.get("ANALYSIS_BENCH_LEVELS", "3"))
EMPLOYEES = int(os.environ.get("ANALYSIS_BENCH_EMPLOYEES", "6"))
DEPTH = int(os.environ.get("ANALYSIS_BENCH_DEPTH", "3"))
SPEEDUP_TARGET = float(os.environ.get("ANALYSIS_SPEEDUP_TARGET", "5"))
MAX_STATES = 500
SHAPE = EnterpriseShape(
    departments=DEPARTMENTS,
    levels_per_department=LEVELS,
    roles_per_level=3,
    employees_per_department=EMPLOYEES,
    delegation_depth=2,
)
SEED = 0

_metrics_cache: dict = {}


def _safety_queries(policy):
    """One witness search per department: can the newcomer obtain the
    department's first bottom-level document privilege within DEPTH
    administrative steps?  (Yes — via the delegation chain; the witness
    exercises real exploration before the early exit.)"""
    return [
        (User(f"dept{dept}_newcomer"), perm("read", f"dept{dept}_doc0"))
        for dept in range(SHAPE.departments)
    ]


def _safety_seconds(policy, compiled: bool) -> tuple[float, list]:
    verdicts = []
    started = time.perf_counter()
    for subject, privilege in _safety_queries(policy):
        verdicts.append(
            can_obtain(policy, subject, privilege, DEPTH, compiled=compiled)
        )
    return time.perf_counter() - started, verdicts


def _reachable_seconds(policy, compiled: bool) -> tuple[float, list]:
    started = time.perf_counter()
    states = reachable_policies(
        policy, DEPTH, Mode.STRICT, max_states=MAX_STATES, compiled=compiled
    )
    return time.perf_counter() - started, states


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    policy = enterprise_policy(SHAPE, SEED)
    universe = len(candidate_commands(policy, Mode.STRICT))

    safety_compiled_s, verdicts_compiled = _safety_seconds(policy, True)
    safety_frozenset_s, verdicts_frozenset = _safety_seconds(policy, False)
    reachable_compiled_s, states_compiled = _reachable_seconds(policy, True)
    reachable_frozenset_s, states_frozenset = _reachable_seconds(policy, False)

    # Identity on the bench workload itself: equal answers, equal work.
    assert [
        (v.reachable, v.states_explored,
         None if v.witness is None else len(v.witness))
        for v in verdicts_compiled
    ] == [
        (v.reachable, v.states_explored,
         None if v.witness is None else len(v.witness))
        for v in verdicts_frozenset
    ], "safety verdicts diverge between kernels"
    assert len(states_compiled) == len(states_frozenset), (
        "reachable state counts diverge between kernels"
    )
    assert [len(s.witness) for s in states_compiled] == [
        len(s.witness) for s in states_frozenset
    ], "reachable witness lengths diverge between kernels"

    _metrics_cache.update({
        "departments": SHAPE.departments,
        "universe": universe,
        "depth": DEPTH,
        "safety_frozenset_s": round(safety_frozenset_s, 4),
        "safety_compiled_s": round(safety_compiled_s, 4),
        "safety_speedup": round(safety_frozenset_s / safety_compiled_s, 2),
        "reachable_states": len(states_compiled),
        "reachable_frozenset_s": round(reachable_frozenset_s, 4),
        "reachable_compiled_s": round(reachable_compiled_s, 4),
        "reachable_speedup": round(
            reachable_frozenset_s / reachable_compiled_s, 2
        ),
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_analysis_speedup():
    metrics = collect_metrics()
    print_table(
        f"Compiled analysis explorers vs frozenset oracle "
        f"(enterprise, {metrics['departments']} departments, "
        f"universe {metrics['universe']}, depth {metrics['depth']})",
        ["surface", "frozenset", "compiled", "speedup"],
        [
            (
                "safety (can_obtain)",
                f"{metrics['safety_frozenset_s'] * 1000:.0f}ms",
                f"{metrics['safety_compiled_s'] * 1000:.0f}ms",
                f"{metrics['safety_speedup']:.1f}x",
            ),
            (
                f"reachable_policies ({metrics['reachable_states']} states)",
                f"{metrics['reachable_frozenset_s'] * 1000:.0f}ms",
                f"{metrics['reachable_compiled_s'] * 1000:.0f}ms",
                f"{metrics['reachable_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["safety_speedup"] >= SPEEDUP_TARGET, (
        f"compiled safety exploration only {metrics['safety_speedup']:.1f}x "
        f"faster than the frozenset oracle (target >={SPEEDUP_TARGET}x)"
    )
    assert metrics["reachable_speedup"] >= SPEEDUP_TARGET, (
        f"compiled reachability exploration only "
        f"{metrics['reachable_speedup']:.1f}x faster than the frozenset "
        f"oracle (target >={SPEEDUP_TARGET}x)"
    )


def test_report_differential_identity():
    """Invariant 10 on a reduced campaign: compiled explorer answers
    are differentially identical to the frozenset oracle, including
    interner ID recycling from deprovision/re-provision churn."""
    from repro.workloads.fuzz import fuzz_compiled_analysis
    from repro.workloads.generators import PolicyShape

    report = fuzz_compiled_analysis(
        SEED, steps=15,
        shape=PolicyShape(n_users=3, n_roles=4, n_admin_privileges=3),
    )
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_differential_identity()
    test_report_analysis_speedup()
    metrics_out = os.environ.get("ANALYSIS_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
