"""ABLATION — authorization-path implementations for the refined
monitor.

DESIGN.md calls out the implementation choice Lemma 1's proof hints at
("the proof indicates how a decision algorithm ... can be implemented
at an RBAC reference monitor"): decide per query with the structural
procedure, or precompute grant rectangles per subject.  This bench
quantifies the trade-off on the hospital workload.
"""

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.core.commands import Mode, candidate_commands, grant_cmd, step
from repro.core.ordering import OrderingOracle
from repro.papercases import figures
from repro.workloads.hospital import HospitalShape, hospital_policy


def test_report_index_vs_oracle_agreement():
    policy = hospital_policy(HospitalShape(wards=2, flexworkers=2))
    index = AuthorizationIndex(policy)
    agree = total = permitted = 0
    for command in candidate_commands(policy, Mode.REFINED):
        probe = policy.copy()
        record = step(probe, command, Mode.REFINED, OrderingOracle(probe))
        indexed = index.authorizes(command.user, command)
        total += 1
        agree += record.executed == (indexed is not None)
        permitted += record.executed
    print_table(
        "Authorization index vs ordering oracle (hospital, 2 wards)",
        ["candidate commands", "permitted", "agreement"],
        [(total, permitted, f"{agree}/{total}")],
    )
    assert agree == total


def _implicit_command():
    return grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)


def test_bench_oracle_path(benchmark):
    policy = figures.figure3()
    command = _implicit_command()
    oracle = OrderingOracle(policy)

    def run():
        # Authorization decision only (no mutation): mirror _authorize.
        from repro.core.commands import _authorize

        return _authorize(policy, command, Mode.REFINED, oracle)

    privilege, implicit = benchmark(run)
    assert privilege is not None and implicit


def test_bench_index_path(benchmark):
    policy = figures.figure3()
    command = _implicit_command()
    index = AuthorizationIndex(policy)

    privilege = benchmark(lambda: index.authorizes(command.user, command))
    assert privilege is not None


def test_bench_index_build(benchmark):
    policy = hospital_policy(HospitalShape(wards=4, flexworkers=2))

    def run():
        return AuthorizationIndex(policy).statistics()

    stats = benchmark(run)
    assert stats["rectangles"] > 0


def test_bench_grantable_pairs_review(benchmark):
    policy = hospital_policy(HospitalShape(wards=2, flexworkers=2))
    index = AuthorizationIndex(policy)
    from repro.core.entities import User

    pairs = benchmark(lambda: index.grantable_pairs(User("hr0")))
    assert pairs
