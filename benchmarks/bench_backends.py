"""BACKENDS — the three storage engines under the Fig-1 monitor workload.

The paper's Example 1 is a DBMS whose every access pays one
``check_access`` against the live policy; this benchmark replays that
workload (Diana's nurse/staff query mix over the Figure-2 hospital,
scaled to a few hundred EHR rows) over each pluggable storage backend
and reports per-statement cost side by side, so the mediation overhead
and the storage overhead are separately visible.  All three engines
must produce identical row counts — the timing comparison is only
meaningful over equal work (the differential suite pins full equality).

Run under pytest (``pytest benchmarks/bench_backends.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_backends.py``).
"""

import time

import pytest
from conftest import print_table

from repro.core.commands import Mode, grant_cmd
from repro.dbms.backends import BACKENDS
from repro.dbms.engine import hospital_database
from repro.dbms.sql import execute_sql
from repro.errors import AccessDenied
from repro.papercases import figures

SCALE_ROWS = 300          # extra synthetic EHR rows in t1
WORKLOAD_ROUNDS = 200     # repetitions of the Example-1 statement mix


def build_database(backend: str):
    """The Figure-2 hospital over ``backend``, scaled, with Bob
    appointed to dbusr2 (the Example-4 refined grant) so the workload
    has a writing session too."""
    database = hospital_database(mode=Mode.REFINED, backend=backend)
    for index in range(SCALE_ROWS):
        database.store.insert("t1", {
            "patient": f"p-{index:04d}",
            "ward": "cardiology" if index % 2 else "oncology",
            "status": "stable" if index % 3 else "critical",
        })
    database.administer(grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2))
    nurse = database.login(figures.DIANA, figures.NURSE)
    writer = database.login(figures.BOB, figures.DBUSR2)
    return database, nurse, writer


def run_workload(database, nurse, writer) -> dict:
    """One pass of the Example-1 mix; returns observable totals."""
    totals = {"rows": 0, "affected": 0, "denied": 0}
    for round_index in range(WORKLOAD_ROUNDS):
        result = execute_sql(
            database, nurse,
            "SELECT patient FROM t1 WHERE status = 'critical'",
        )
        totals["rows"] += len(result.rows)
        result = execute_sql(
            database, nurse,
            "SELECT * FROM t2 WHERE dose != '75mg'",
        )
        totals["rows"] += len(result.rows)
        result = execute_sql(
            database, writer,
            "INSERT INTO t3 (patient, note, author) "
            f"VALUES ('p-{round_index:04d}', 'rounds', 'bob')",
        )
        totals["affected"] += result.affected
        result = execute_sql(
            database, writer,
            f"UPDATE t3 SET note = 'checked' WHERE patient = 'p-{round_index:04d}'",
        )
        totals["affected"] += result.affected
        try:  # nurses cannot write t3 (Figure 1): the denial is part of the mix
            execute_sql(database, nurse, "DELETE FROM t3")
        except AccessDenied:
            totals["denied"] += 1
    return totals


def test_report_backend_comparison():
    """The acceptance gate: every registered engine runs the workload
    without error and observes the same row/denial totals."""
    rows = []
    observed = {}
    for backend in sorted(BACKENDS):
        database, nurse, writer = build_database(backend)
        statements = WORKLOAD_ROUNDS * 5
        started = time.perf_counter()
        totals = run_workload(database, nurse, writer)
        elapsed = time.perf_counter() - started
        observed[backend] = totals
        pushed = getattr(database.store, "pushed_statements", "-")
        rows.append((
            backend,
            f"{elapsed / statements * 1e6:.1f}",
            totals["rows"],
            totals["affected"],
            totals["denied"],
            pushed,
        ))
        database.close()
    print_table(
        f"Fig-1 monitor workload over each backend "
        f"({SCALE_ROWS + 2}-row t1, {WORKLOAD_ROUNDS} rounds)",
        ["backend", "us/stmt", "rows", "affected", "denied", "pushed"],
        rows,
    )
    assert set(observed) == set(BACKENDS)
    baseline = observed["memory"]
    for backend, totals in observed.items():
        assert totals == baseline, (
            f"backend {backend!r} diverged from the in-memory oracle: "
            f"{totals} != {baseline}"
        )
    assert baseline["denied"] == WORKLOAD_ROUNDS


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_bench_guarded_select(benchmark, backend):
    database, nurse, _writer = build_database(backend)
    result = benchmark(
        lambda: execute_sql(
            database, nurse,
            "SELECT patient FROM t1 WHERE status = 'critical'",
        )
    )
    assert result.rows
    database.close()


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_bench_guarded_insert(benchmark, backend):
    database, _nurse, writer = build_database(backend)
    counter = iter(range(10_000_000))

    def run():
        index = next(counter)
        return execute_sql(
            database, writer,
            "INSERT INTO t3 (patient, note, author) "
            f"VALUES ('x-{index}', 'n', 'bob')",
        )

    result = benchmark(run)
    assert result.affected == 1
    database.close()


if __name__ == "__main__":
    test_report_backend_comparison()
