"""BASE — §5: flexibility vs safety against the related-work models.

Regenerates the comparison the paper argues qualitatively: the
ordering-based model permits strictly more administrative operations
than the strict Definition-5 semantics (flexibility) while making
nothing new obtainable (safety); ARBAC97's range-based translation is
coarser (it loses the target-user component); administrative scope
derives authority purely from hierarchy position.
"""

from conftest import print_table

from repro.analysis.compare import flexibility_report, safety_comparison
from repro.core.commands import Mode, effective_commands
from repro.papercases import figures
from repro.workloads.hospital import HospitalShape, hospital_policy


def test_report_flexibility_table():
    rows = []
    workloads = [
        ("figure 2", figures.figure2()),
        ("hospital (2 wards)", hospital_policy(HospitalShape(wards=2))),
        ("hospital (4 wards)", hospital_policy(HospitalShape(wards=4))),
    ]
    for label, policy in workloads:
        report = flexibility_report(policy)
        rows.append((
            label,
            report.strict_operations,
            report.refined_operations,
            report.arbac_operations,
            report.scope_operations,
            f"{report.refined_over_strict:.2f}x",
        ))
    print_table(
        "Permitted administrative operations per model "
        "(paper: the ordering adds flexibility)",
        ["workload", "strict", "refined", "ARBAC97", "admin-scope",
         "refined/strict"],
        rows,
    )
    for row in rows:
        assert row[2] > row[1]


def test_report_safety_table():
    rows = []
    for label, policy in [
        ("figure 2", figures.figure2()),
        ("hospital (1 ward)", hospital_policy(
            HospitalShape(wards=1, nurses_per_ward=2, flexworkers=1))),
    ]:
        comparison = safety_comparison(policy, depth=1)
        rows.append((
            label,
            comparison.strict_pairs,
            comparison.refined_pairs,
            "yes" if comparison.refined_is_safe else "NO",
        ))
    print_table(
        "Obtainable (subject, privilege) pairs after 1 admin step "
        "(paper: the extra flexibility is safe — no new pairs)",
        ["workload", "strict", "refined", "refined is safe"],
        rows,
    )
    assert all(row[3] == "yes" for row in rows)


def test_report_pbdm_encoding_cost():
    """§5's PBDM comparison, quantified: 'each delegation requires the
    addition of a separate role ... In our model the administrative
    privileges are assigned to roles just like the ordinary
    privileges.  It is not required to add any additional roles.'"""
    from repro.analysis.expressiveness import encoding_cost

    rows = []
    for depth in [1, 2, 4, 8]:
        cost = encoding_cost(depth)
        rows.append((
            depth,
            f"{cost.nested_new_roles} roles, {cost.nested_new_privileges} priv",
            f"{cost.pbdm_new_roles} roles, {cost.pbdm_new_privileges} priv",
        ))
    print_table(
        "Cascaded delegation of depth n: artifacts required "
        "(paper: PBDM needs a role per delegation; nesting needs none)",
        ["cascade depth", "nested-grant encoding", "PBDM-style encoding"],
        rows,
    )
    for depth, nested, _pbdm in rows:
        assert nested.startswith("0 roles")


def test_bench_effective_commands_strict(benchmark):
    policy = figures.figure2()
    ops = benchmark(lambda: list(effective_commands(policy, Mode.STRICT)))
    assert ops


def test_bench_effective_commands_refined(benchmark):
    policy = figures.figure2()
    ops = benchmark(lambda: list(effective_commands(policy, Mode.REFINED)))
    assert ops


def test_bench_flexibility_report(benchmark):
    policy = figures.figure2()
    report = benchmark(lambda: flexibility_report(policy))
    assert report.refined_operations > report.strict_operations
