"""Vectorized batch authorization vs. per-query compiled calls.

The claim under test: ``AuthorizationIndex.authorizes_batch`` answers a
duplicate-heavy burst of authorization queries >=10x faster than the
same burst through scalar ``authorizes`` calls on the same compiled
kernel.  The batch kernel wins by doing per-edge work once per distinct
(subject, edge) group instead of once per query: the burst is grouped
by object identity, each group's eligible-rectangle mask is computed
once, and every duplicate resolves by one ``held & eligible`` AND plus
a lowest-bit decode.

The workload is the IGA reconciliation shape the batch API exists for:
thousands of "may admin a assign user u to role r" probes where a hot
pool of distinct pairs repeats across the burst (access reviews replay
the same candidate edges for page after page of the report).  Both
paths see the *same* query objects, rebuilt fresh for every repetition
so neither side benefits from per-command caches, and the two verdict
sequences are asserted element-for-element identical before any
timing number is trusted.

A second report times ``held_privileges_bulk`` — the whole-population
audit sweep behind ``repro.analysis.audit_matrix`` — against per-user
``held_privileges`` calls.

Run under pytest (``pytest benchmarks/bench_batch_authz.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_batch_authz.py``).
``BATCH_BENCH_USERS`` / ``BATCH_BENCH_QUERIES`` /
``BATCH_SPEEDUP_TARGET`` shrink the workload and the assertion bar for
CI smoke runs; ``tools/bench_report.py`` sets ``BATCH_METRICS_OUT`` to
collect the numbers into the ``BENCH_kernel.json`` trajectory.
"""

import json
import os
import random
import time

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.core.commands import grant_cmd, revoke_cmd
from repro.core.entities import Role, User
from repro.core.privileges import Grant
from repro.workloads.churn import ChurnShape, churn_policy

USERS = int(os.environ.get("BATCH_BENCH_USERS", "5000"))
QUERIES = int(os.environ.get("BATCH_BENCH_QUERIES", "10000"))
#: local runs demand the full 10x; CI sets a lower sanity bound so a
#: noisy shared runner can't fail an unrelated PR on wall-clock jitter.
SPEEDUP_TARGET = float(os.environ.get("BATCH_SPEEDUP_TARGET", "10"))
#: the bitset-kernel enterprise shape: several roles per user, several
#: privileges per role — per-admin rectangle rows of realistic size.
SHAPE = ChurnShape(
    n_users=USERS, n_roles=48, layers=6, roles_per_user=3,
    privileges_per_role=4, delegations_per_top_role=12,
)
SEED = 13
REPETITIONS = 4
#: distinct (admin, action, user, role) edges in the hot pool; the
#: burst of QUERIES draws from it, so each edge repeats ~QUERIES/POOL
#: times — the duplicate profile of a paged access-review replay.
POOL = 500

_metrics_cache: dict = {}


def _hot_names(policy) -> tuple[list[str], list[str]]:
    """The names living inside administrator grant rectangles: delegated
    users (and users assigned into delegated senior roles) and the
    senior roles' inheritance subtrees.  Probes drawn from these pools
    are the plausible-assignment edges an access review replays — they
    pass the union-mask prefilter, so the scalar path must scan the
    admin's rectangle rows for every one of them."""
    hot_users: set[str] = set()
    hot_roles: set[str] = set()
    seniors: set[Role] = set()
    for privilege in policy.admin_privileges():
        if not isinstance(privilege, Grant):
            continue
        if isinstance(privilege.source, User):
            hot_users.add(privilege.source.name)
        if isinstance(privilege.target, Role):
            seniors.add(privilege.target)
    for senior in seniors:
        for vertex in policy.descendants(senior):
            if isinstance(vertex, Role):
                hot_roles.add(vertex.name)
    for user, role in policy.ua_edges():
        if role in seniors:
            hot_users.add(user.name)
    return sorted(hot_users), sorted(hot_roles)


def _fresh_pool(rng: random.Random, hot: tuple[list, list]) -> list:
    """A hot pool of POOL distinct (admin, make, user, role) edges over
    fresh entity objects.  Entities are rebuilt every repetition so the
    index's identity maps are the only sharing between repetitions.
    Half the edges are plausible-assignment probes from the delegated
    hot set (rectangle hits and near-misses that defeat the union-mask
    prefilter); the rest are uniform probes and revocations."""
    hot_users, hot_roles = hot
    admins = [User(f"admin{i}") for i in range(SHAPE.n_admins)]
    users = [User(f"u{i}") for i in range(SHAPE.n_users)]
    roles = [Role(f"r{i}") for i in range(SHAPE.n_roles)]
    pool = []
    for _ in range(POOL):
        admin = rng.choice(admins)
        draw = rng.random()
        if draw < 0.65 and hot_users and hot_roles:
            edge = (
                admin, grant_cmd,
                User(rng.choice(hot_users)), Role(rng.choice(hot_roles)),
            )
        elif draw < 0.85:
            edge = (admin, grant_cmd, rng.choice(users), rng.choice(roles))
        else:
            edge = (admin, revoke_cmd, rng.choice(users), rng.choice(roles))
        pool.append(edge)
    return pool


def _burst(rng: random.Random, pool: list) -> list:
    """QUERIES fresh :class:`Command` objects over the hot edge pool.

    Every query is a *new* command object, as arriving requests are in
    a real monitor — the scalar path pays the per-command work (wanted
    privilege construction, per-object memos) for each of them.  The
    commands still name the pool's shared entity objects, which is what
    the batch kernel's identity grouping collapses: ~QUERIES/POOL
    value-duplicate commands per edge become one decision."""
    return [
        (admin, make(admin, user, role))
        for admin, make, user, role in (
            rng.choice(pool) for _ in range(QUERIES)
        )
    ]


def _rates() -> tuple[float, float]:
    """Best-of-N (scalar, batch) queries/second on the same bursts.

    Every repetition rebuilds the pool with fresh objects and replays
    the identical burst through both paths; the verdict sequences are
    asserted equal each time, so the speedup compares equal answers.
    """
    policy = churn_policy(SEED, SHAPE)
    index = AuthorizationIndex(policy, compiled=True)
    authorizes = index.authorizes
    hot = _hot_names(policy)
    best_scalar = best_batch = float("inf")
    for repetition in range(REPETITIONS):
        rng = random.Random(SEED + repetition)
        burst = _burst(rng, _fresh_pool(rng, hot))

        started = time.perf_counter()
        scalar = [authorizes(user, command) for user, command in burst]
        best_scalar = min(best_scalar, time.perf_counter() - started)

        started = time.perf_counter()
        batch = index.authorizes_batch(burst)
        best_batch = min(best_batch, time.perf_counter() - started)

        assert batch == scalar, "batch verdicts diverged from scalar"
    return QUERIES / best_scalar, QUERIES / best_batch


def _bulk_rates() -> tuple[float, float]:
    """Best-of-N (per-user, bulk) audited users/second for the
    whole-population held-privilege sweep."""
    policy = churn_policy(SEED, SHAPE)
    index = AuthorizationIndex(policy, compiled=True)
    population = sorted(policy.users(), key=str)
    best_scalar = best_bulk = float("inf")
    for _ in range(REPETITIONS):
        started = time.perf_counter()
        per_user = {u: index.held_privileges(u) for u in population}
        best_scalar = min(best_scalar, time.perf_counter() - started)

        started = time.perf_counter()
        bulk = index.held_privileges_bulk(population)
        best_bulk = min(best_bulk, time.perf_counter() - started)

        assert bulk == per_user, "bulk audit diverged from per-user"
    return len(population) / best_scalar, len(population) / best_bulk


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    scalar_rate, batch_rate = _rates()
    bulk_scalar_rate, bulk_rate = _bulk_rates()
    _metrics_cache.update({
        "users": SHAPE.n_users,
        "queries": QUERIES,
        "pool": POOL,
        "scalar_per_s": round(scalar_rate),
        "batch_per_s": round(batch_rate),
        "batch_speedup": round(batch_rate / scalar_rate, 2),
        "bulk_per_user_per_s": round(bulk_scalar_rate),
        "bulk_users_per_s": round(bulk_rate),
        "bulk_speedup": round(bulk_rate / bulk_scalar_rate, 2),
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_batch_speedup():
    metrics = collect_metrics()
    print_table(
        f"Batch vs scalar authorization ({metrics['users']} users, "
        f"{metrics['queries']} queries over {metrics['pool']} pairs)",
        ["surface", "scalar", "batch", "speedup"],
        [
            (
                "authorizes/s",
                f"{metrics['scalar_per_s']:,}",
                f"{metrics['batch_per_s']:,}",
                f"{metrics['batch_speedup']:.1f}x",
            ),
            (
                "audit users/s",
                f"{metrics['bulk_per_user_per_s']:,}",
                f"{metrics['bulk_users_per_s']:,}",
                f"{metrics['bulk_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["batch_speedup"] >= SPEEDUP_TARGET, (
        f"batch authorization only {metrics['batch_speedup']:.1f}x faster "
        f"than per-query compiled calls (target >={SPEEDUP_TARGET}x on "
        f"{QUERIES} queries at {USERS} users)"
    )


def test_report_batch_identical_under_fuzz():
    """Invariant 12 on a reduced campaign: batch verdicts are
    differentially identical to scalar ones on both kernels and at
    shard counts {1, 2, 4}, across recycling churn and ghost
    subjects."""
    from repro.workloads.fuzz import fuzz_batch_authz
    from repro.workloads.generators import PolicyShape

    report = fuzz_batch_authz(
        SEED, steps=20,
        shape=PolicyShape(n_users=4, n_roles=5, n_admin_privileges=4),
        queries=120,
    )
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_batch_identical_under_fuzz()
    test_report_batch_speedup()
    metrics_out = os.environ.get("BATCH_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
