"""Bitset-compiled authorization kernel vs. the frozenset baseline.

The claim under test: compiling the monitor's hot sets — held
privileges, grant rectangles, dirty regions — to big-int bitmasks over
interned vertex IDs (``compiled=True``, the default) beats the
frozenset set algebra by >=3x on both

* **index build** — constructing the per-subject ``AuthorizationIndex``
  for the whole population (the cost every full rebuild pays), and
* **query throughput** — ``authorizes`` under a query burst against a
  quiet policy (exact match is one bit-test; a rectangle miss is
  rejected by two union-mask bit-tests).

A third report pins differential identity: the two kernels must make
identical grant/deny decisions over an entire churn trace, and the
randomized invariant-9 harness must come back clean.

Run under pytest (``pytest benchmarks/bench_bitset_kernel.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_bitset_kernel.py``).
``BITSET_BENCH_USERS`` / ``BITSET_SPEEDUP_TARGET`` shrink the workload
and the assertion bar for CI smoke runs; ``tools/bench_report.py`` sets
``BITSET_METRICS_OUT`` to collect the numbers into the
``BENCH_kernel.json`` trajectory.
"""

import json
import os
import time

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.workloads.churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    run_churn,
)

USERS = int(os.environ.get("BITSET_BENCH_USERS", "5000"))
#: local runs demand the full 3x; CI sets a lower sanity bound so a
#: noisy shared runner can't fail an unrelated PR on wall-clock jitter.
SPEEDUP_TARGET = float(os.environ.get("BITSET_SPEEDUP_TARGET", "3"))
#: enterprise-weight membership: several roles per user and several
#: privileges per role, so per-subject reachable sets have realistic
#: size (tens of vertices) — the regime the set algebra actually
#: dominates in.
SHAPE = ChurnShape(
    n_users=USERS, n_roles=48, layers=6, mutations=40,
    queries_per_mutation=6, roles_per_user=3, privileges_per_role=4,
    delegations_per_top_role=12,
)
SEED = 13
REPETITIONS = 3
QUERY_PASSES = 3

_metrics_cache: dict = {}


def _build_seconds(compiled: bool) -> float:
    """Best-of-N wall time to construct the full index at USERS users."""
    best = float("inf")
    for _ in range(REPETITIONS):
        policy = churn_policy(SEED, SHAPE)
        started = time.perf_counter()
        AuthorizationIndex(policy, compiled=compiled)
        best = min(best, time.perf_counter() - started)
    return best


def _probes(policy) -> list:
    """The authorization burst: administrators asking "may I assign
    user u to role r" across the population — the rectangle-covered
    decision the index exists for (rule 2's implicit authorization),
    and the query an IGA reconciliation loop issues by the thousand.
    Most probes miss (deny), so the frozenset path scans every held
    rectangle while the compiled path rejects on the union masks."""
    import random

    from repro.core.commands import grant_cmd
    from repro.core.entities import Role, User

    rng = random.Random(SEED)
    admins = [User(f"admin{i}") for i in range(SHAPE.n_admins)]
    users = [User(f"u{i}") for i in range(SHAPE.n_users)]
    roles = [Role(f"r{i}") for i in range(SHAPE.n_roles)]
    return [
        grant_cmd(rng.choice(admins), rng.choice(users), rng.choice(roles))
        for _ in range(1200)
    ]


def _query_rate(compiled: bool) -> float:
    """authorizes() calls per second against a quiet (pre-validated)
    policy, over the admin assignment-probe burst."""
    policy = churn_policy(SEED, SHAPE)
    index = AuthorizationIndex(policy, compiled=compiled)
    probes = _probes(policy)
    authorizes = index.authorizes
    for command in probes[:16]:  # warm the caches
        authorizes(command.user, command)
    best = float("inf")
    for _ in range(REPETITIONS):
        started = time.perf_counter()
        for _ in range(QUERY_PASSES):
            for command in probes:
                authorizes(command.user, command)
        best = min(best, time.perf_counter() - started)
    return QUERY_PASSES * len(probes) / best


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    build_frozenset = _build_seconds(compiled=False)
    build_compiled = _build_seconds(compiled=True)
    rate_frozenset = _query_rate(compiled=False)
    rate_compiled = _query_rate(compiled=True)
    _metrics_cache.update({
        "users": SHAPE.n_users,
        "build_frozenset_s": round(build_frozenset, 4),
        "build_compiled_s": round(build_compiled, 4),
        "build_speedup": round(build_frozenset / build_compiled, 2),
        "query_frozenset_per_s": round(rate_frozenset),
        "query_compiled_per_s": round(rate_compiled),
        "query_speedup": round(rate_compiled / rate_frozenset, 2),
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_kernel_speedup():
    metrics = collect_metrics()
    print_table(
        f"Bitset kernel vs frozenset baseline ({metrics['users']} users)",
        ["surface", "frozenset", "compiled", "speedup"],
        [
            (
                "index build",
                f"{metrics['build_frozenset_s'] * 1000:.1f}ms",
                f"{metrics['build_compiled_s'] * 1000:.1f}ms",
                f"{metrics['build_speedup']:.1f}x",
            ),
            (
                "queries/s",
                f"{metrics['query_frozenset_per_s']:,}",
                f"{metrics['query_compiled_per_s']:,}",
                f"{metrics['query_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["build_speedup"] >= SPEEDUP_TARGET, (
        f"compiled index build only {metrics['build_speedup']:.1f}x faster "
        f"than frozenset (target >={SPEEDUP_TARGET}x at {USERS} users)"
    )
    assert metrics["query_speedup"] >= SPEEDUP_TARGET, (
        f"compiled query throughput only {metrics['query_speedup']:.1f}x "
        f"the frozenset baseline (target >={SPEEDUP_TARGET}x at {USERS} "
        "users)"
    )


def test_report_decisions_identical():
    """Both kernels must make identical grant/deny decisions over a
    whole churn trace — the speedup compares equal answers."""
    trace = churn_trace(SEED, SHAPE)
    policy_a = churn_policy(SEED, SHAPE)
    policy_b = churn_policy(SEED, SHAPE)
    compiled = run_churn(
        policy_a, AuthorizationIndex(policy_a, compiled=True), trace
    )
    frozenset_ = run_churn(
        policy_b, AuthorizationIndex(policy_b, compiled=False), trace
    )
    assert compiled.decisions == frozenset_.decisions
    assert compiled.queries == frozenset_.queries > 0


def test_report_differential_identity():
    """Invariant 9 on a reduced campaign: compiled answers are
    differentially identical to the frozenset oracle under randomized
    churn, including interner ID reuse after remove_user + re-add."""
    from repro.workloads.fuzz import fuzz_compiled_kernel
    from repro.workloads.generators import PolicyShape

    report = fuzz_compiled_kernel(
        SEED, steps=25,
        shape=PolicyShape(n_users=4, n_roles=5, n_admin_privileges=3),
    )
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_decisions_identical()
    test_report_differential_identity()
    test_report_kernel_speedup()
    metrics_out = os.environ.get("BITSET_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
