"""RMK2 — Remark 2: the longest-chain cutoff conjecture.

Regenerates the conjecture's empirical verification: enumerating
weaker privileges beyond n = longest-RH-chain applications of rule (3)
adds terms, but those terms are redundant (they change nothing that is
ultimately obtainable).  Also measures the cost of the cutoff bound
itself and of the conjecture check.

The conjecture check explores admin reachability per deep term; it
defaults to the compiled undo-log explorer.  Run with ``--frozenset``
(script mode) or ``BENCH_FROZENSET=1`` (pytest mode) for the frozenset
oracle — identical reports, directly comparable timings.
"""

import os
import sys

from conftest import print_table

COMPILED = not (
    "--frozenset" in sys.argv or os.environ.get("BENCH_FROZENSET")
)

from repro.analysis.conjecture import check_conjecture_instance
from repro.core.entities import Role, User
from repro.core.policy import Policy
from repro.core.privileges import Grant, perm
from repro.core.weaker import remark2_bound, weaker_set
from repro.papercases.examples import example6_policy
from repro.workloads.generators import layered_hierarchy


def chain_instance():
    admin, u = User("admin"), User("u")
    adm, high, low = Role("adm"), Role("high"), Role("low")
    policy = Policy(
        ua=[(admin, adm)],
        rh=[(high, low)],
        pa=[(low, perm("read", "doc")), (adm, Grant(u, high))],
    )
    policy.add_user(u)
    return policy, adm, Grant(u, high)


def test_report_conjecture_verdicts():
    rows = []
    instances = [
        ("example 6", *(lambda pr: (pr[0], Role("r2"), pr[1]))(example6_policy())),
        ("2-chain", *chain_instance()),
    ]
    for label, policy, role, seed in instances:
        report = check_conjecture_instance(policy, role, seed, extra_depth=1,
                                           compiled=COMPILED)
        rows.append((
            label,
            report.bound,
            report.terms_within_bound,
            report.terms_beyond_bound,
            "holds" if report.holds else f"{len(report.violations)} violations",
        ))
    print_table(
        "Remark 2: deep weaker terms are redundant "
        "(paper conjecture; verified on these instances)",
        ["instance", "bound n", "terms <= n", "terms > n", "verdict"],
        rows,
    )
    assert all(row[4] == "holds" for row in rows)


def test_report_frontier_vs_bound():
    """Weaker-set growth around the bound on a chain with an
    Example-6-style self-referential assignment at the bottom: the set
    keeps growing past the bound (the enumeration is infinite), which
    is exactly why the cutoff matters — the conjecture says what lies
    beyond it is redundant."""
    chain = [Role(f"c{i}") for i in range(4)]
    policy = Policy(rh=list(zip(chain, chain[1:])))
    seed_privilege = Grant(chain[0], chain[-1])
    policy.assign_privilege(chain[-1], seed_privilege)
    bound = remark2_bound(policy)
    rows = []
    previous = None
    for depth in range(bound + 3):
        size = len(weaker_set(policy, seed_privilege, depth))
        rows.append((
            depth,
            size,
            "<= bound" if depth <= bound else "beyond (redundant terms)",
        ))
        if previous is not None:
            assert size >= previous
        previous = size
    print_table(
        f"Weaker-set growth around the Remark-2 bound (n = {bound}); "
        "growth continues past n — the cutoff is what keeps "
        "enumeration finite",
        ["depth", "|weaker set|", "region"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]


def test_bench_remark2_bound(benchmark):
    policy = layered_hierarchy(seed=3, layers=8, roles_per_layer=6)
    bound = benchmark(lambda: remark2_bound(policy))
    assert bound == 7


def test_bench_conjecture_instance(benchmark):
    policy, role, seed = chain_instance()
    report = benchmark(
        lambda: check_conjecture_instance(policy, role, seed, extra_depth=1,
                                          compiled=COMPILED)
    )
    assert report.holds


if __name__ == "__main__":
    kernel = "compiled" if COMPILED else "frozenset"
    print(f"RMK2 reports ({kernel} explorer)")
    test_report_conjecture_verdicts()
    test_report_frontier_vs_bound()
