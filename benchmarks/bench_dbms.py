"""DBMS — the guarded database substrate under load.

Not a paper experiment per se; quantifies the mediation overhead the
paper's architecture implies: every SQL statement pays one
``check_access`` against the live policy.  Reported alongside the
un-mediated table operations so the overhead is visible.
"""

from conftest import print_table

from repro.core.commands import Mode, grant_cmd
from repro.dbms.engine import hospital_database
from repro.dbms.sql import execute_sql, parse_sql
from repro.dbms.tables import Table
from repro.papercases import figures


def make_session():
    db = hospital_database(mode=Mode.REFINED)
    db.administer(grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2))
    session = db.login(figures.BOB, figures.DBUSR2)
    return db, session


def test_report_mediation_overhead():
    import time

    db, session = make_session()
    raw_table = db.store.table("t1")
    repeats = 2000

    start = time.perf_counter()
    for _ in range(repeats):
        raw_table.select(lambda row: row["status"] == "critical")
    raw = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        db.select(session, "t1", lambda row: row["status"] == "critical")
    guarded = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        execute_sql(db, session,
                    "SELECT * FROM t1 WHERE status = 'critical'")
    sql = (time.perf_counter() - start) / repeats

    print_table(
        "Mediation overhead per query (hospital DB, 2-row table)",
        ["path", "us/query"],
        [
            ("raw table scan", f"{raw * 1e6:.1f}"),
            ("guarded select (RBAC check)", f"{guarded * 1e6:.1f}"),
            ("SQL parse + guarded select", f"{sql * 1e6:.1f}"),
        ],
    )
    assert guarded >= raw


def test_bench_sql_parse(benchmark):
    stmt = benchmark(
        lambda: parse_sql(
            "SELECT patient, ward FROM t1 WHERE status = 'stable' AND n >= 3"
        )
    )
    assert stmt.table == "t1"


def test_bench_guarded_select(benchmark):
    db, session = make_session()
    rows = benchmark(lambda: db.select(session, "t1"))
    assert len(rows) == 2


def test_bench_sql_roundtrip(benchmark):
    db, session = make_session()
    result = benchmark(
        lambda: execute_sql(db, session, "SELECT patient FROM t2")
    )
    assert len(result.rows) == 2


def test_bench_insert_heavy_table(benchmark):
    table = Table("big", ["k", "v"])
    for index in range(5000):
        table.insert({"k": index, "v": str(index)})

    rows = benchmark(lambda: table.select(lambda row: row["k"] == 4999))
    assert len(rows) == 1
