"""FIG1 — Figure 1 / Example 1: the basic RBAC reference monitor.

Regenerates Example 1's access-decision table and measures the
monitor's check_access / session throughput on the hospital policy.
"""

from conftest import print_table

from repro.core.monitor import ReferenceMonitor
from repro.papercases import figures


def build_monitor():
    monitor = ReferenceMonitor(figures.figure1())
    nurse_session = monitor.create_session(figures.DIANA)
    monitor.add_active_role(nurse_session, figures.NURSE)
    staff_session = monitor.create_session(figures.DIANA)
    monitor.add_active_role(staff_session, figures.STAFF)
    return monitor, nurse_session, staff_session


def test_report_example1_access_table():
    monitor, nurse, staff = build_monitor()
    checks = [
        ("read", "t1"), ("read", "t2"), ("write", "t3"),
        ("print", "black"), ("print", "color"),
    ]
    rows = []
    for action, obj in checks:
        rows.append((
            f"{action} {obj}",
            "ALLOW" if monitor.check_access(nurse, action, obj) else "deny",
            "ALLOW" if monitor.check_access(staff, action, obj) else "deny",
        ))
    print_table(
        "Example 1: Diana's accesses (paper: nurse reads t1,t2; "
        "staff also writes t3)",
        ["access", "as nurse", "as staff"],
        rows,
    )
    assert rows[0][1] == "ALLOW" and rows[2][1] == "deny" and rows[2][2] == "ALLOW"


def test_bench_check_access(benchmark):
    monitor, nurse, _staff = build_monitor()

    def run():
        allowed = monitor.check_access(nurse, "read", "t1")
        denied = monitor.check_access(nurse, "write", "t3")
        return allowed, denied

    allowed, denied = benchmark(run)
    assert allowed and not denied


def test_bench_session_lifecycle(benchmark):
    monitor, _, _ = build_monitor()

    def run():
        session = monitor.create_session(figures.DIANA)
        monitor.add_active_role(session, figures.STAFF)
        monitor.check_access(session, "write", "t3")
        monitor.delete_session(session)

    benchmark(run)


def test_bench_session_privileges(benchmark):
    monitor, _nurse, staff = build_monitor()
    privileges = benchmark(lambda: monitor.session_privileges(staff))
    assert len(privileges) == 5
