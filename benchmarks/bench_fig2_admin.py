"""FIG2 — Figure 2 / Example 2: delegated administration.

Regenerates Example 2's command outcomes and measures Definition-5
transition throughput (strict mode) on the administrative policy.
"""

from conftest import print_table

from repro.core.commands import Mode, grant_cmd, revoke_cmd, run_queue, step
from repro.core.ordering import OrderingOracle
from repro.papercases import figures


QUEUE = [
    ("jane appoints bob to staff", grant_cmd(figures.JANE, figures.BOB, figures.STAFF), True),
    ("jane appoints joe to nurse", grant_cmd(figures.JANE, figures.JOE, figures.NURSE), True),
    ("jane revokes joe from nurse", revoke_cmd(figures.JANE, figures.JOE, figures.NURSE), True),
    ("jane appoints bob to nurse", grant_cmd(figures.JANE, figures.BOB, figures.NURSE), False),
    ("diana appoints bob to staff", grant_cmd(figures.DIANA, figures.BOB, figures.STAFF), False),
]


def test_report_example2_command_outcomes():
    policy = figures.figure2()
    _final, records = run_queue(policy, [cmd for _, cmd, _ in QUEUE])
    rows = [
        (label, "executed" if record.executed else "no-op (denied)",
         "yes" if record.executed == expected else "MISMATCH")
        for (label, _, expected), record in zip(QUEUE, records)
    ]
    print_table(
        "Example 2: HR administration under Definition 5 (strict)",
        ["command", "outcome", "matches paper"],
        rows,
    )
    assert all(row[2] == "yes" for row in rows)


def test_bench_single_transition(benchmark):
    base = figures.figure2()

    def run():
        policy = base.copy()
        return step(policy, grant_cmd(figures.JANE, figures.BOB, figures.STAFF))

    record = benchmark(run)
    assert record.executed


def test_bench_queue_execution(benchmark):
    base = figures.figure2()
    commands = [cmd for _, cmd, _ in QUEUE]

    def run():
        _final, records = run_queue(base, commands, Mode.STRICT)
        return records

    records = benchmark(run)
    assert sum(r.executed for r in records) == 3


def test_bench_denied_command(benchmark):
    """Denials are the hot path of a monitor under attack."""
    base = figures.figure2()
    oracle = OrderingOracle(base)

    def run():
        return step(base, grant_cmd(figures.DIANA, figures.BOB, figures.STAFF),
                    Mode.STRICT, oracle)

    record = benchmark(run)
    assert not record.executed
