"""FIG3 — Figure 3 / Examples 4–5: the flexworker and implicit
authorization.

Regenerates the strict-vs-refined outcome of Example 4 and the three
derivations of Example 5, and measures the refined monitor's implicit
authorization cost (the price of the ordering at decision time).
"""

from conftest import print_table

from repro.core.commands import Mode, grant_cmd, step
from repro.core.ordering import OrderingOracle, explain_weaker
from repro.core.privileges import Grant
from repro.papercases import figures


def test_report_example4_strict_vs_refined():
    rows = []
    for mode in (Mode.STRICT, Mode.REFINED):
        policy = figures.figure3()
        record = step(
            policy, grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2), mode
        )
        rows.append((
            mode.value,
            "executed" if record.executed else "denied",
            str(record.authorized_by) if record.authorized_by else "-",
        ))
    print_table(
        "Example 4: jane assigns bob directly to dbusr2 "
        "(paper: denied under prior models, allowed by the ordering)",
        ["monitor mode", "outcome", "authorizing privilege"],
        rows,
    )
    assert rows[0][1] == "denied" and rows[1][1] == "executed"


def test_report_example5_derivations():
    policy = figures.figure2()
    cases = [
        ("simple", Grant(figures.BOB, figures.STAFF),
         Grant(figures.BOB, figures.DBUSR2)),
        ("nested", Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF)),
         Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2))),
    ]
    rows = []
    for label, stronger, weaker in cases:
        derivation = explain_weaker(policy, stronger, weaker)
        rows.append((label, "holds", " then ".join(derivation.rules_used())))
    broken = policy.copy()
    broken.remove_edge(figures.STAFF, figures.DBUSR2)
    negative = explain_weaker(
        broken,
        Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF)),
        Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2)),
    )
    rows.append(("nested, edge removed",
                 "holds" if negative else "does not hold", "-"))
    print_table(
        "Example 5: ordering decisions (paper: rule 2; rule 3 then "
        "rule 2; negative after edge removal)",
        ["case", "verdict", "rules used"],
        rows,
    )
    assert rows[0][2] == "rule2"
    assert rows[1][2] == "rule3 then rule2"
    assert rows[2][1] == "does not hold"


def test_bench_implicit_authorization(benchmark):
    base = figures.figure3()
    command = grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)

    def run():
        policy = base.copy()
        return step(policy, command, Mode.REFINED, OrderingOracle(policy))

    record = benchmark(run)
    assert record.implicit


def test_bench_exact_vs_implicit_decision(benchmark):
    """The marginal cost of the ordering: decide an implicit grant
    (ordering search) right after an exact one (set lookup)."""
    base = figures.figure3()
    exact = grant_cmd(figures.JANE, figures.BOB, figures.STAFF)
    implicit = grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)

    def run():
        policy = base.copy()
        oracle = OrderingOracle(policy)
        first = step(policy, exact, Mode.REFINED, oracle)
        second = step(policy, implicit, Mode.REFINED, oracle)
        return first, second

    first, second = benchmark(run)
    assert not first.implicit and second.implicit


def test_bench_example5_derivation(benchmark):
    policy = figures.figure2()
    stronger = Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF))
    weaker = Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2))
    derivation = benchmark(lambda: explain_weaker(policy, stronger, weaker))
    assert derivation is not None
