"""HISTORY — versioned administration under load.

Quantifies the bookkeeping the history layer adds over the bare
Definition-5 transition, and the cost of replay/rollback as the log
grows (the snapshot-interval trade-off).
"""

from conftest import print_table

from repro.core.commands import Mode, grant_cmd, revoke_cmd, step
from repro.core.history import PolicyHistory
from repro.core.ordering import OrderingOracle
from repro.papercases import figures


def alternating_queue(length: int):
    commands = []
    for index in range(length):
        if index % 2 == 0:
            commands.append(
                grant_cmd(figures.JANE, figures.JOE, figures.NURSE)
            )
        else:
            commands.append(
                revoke_cmd(figures.JANE, figures.JOE, figures.NURSE)
            )
    return commands


def test_report_replay_cost_vs_snapshot_interval():
    import time

    rows = []
    for interval in [1, 4, 16, 64]:
        history = PolicyHistory(
            figures.figure2(), mode=Mode.STRICT, snapshot_interval=interval
        )
        for command in alternating_queue(64):
            history.submit(command)
        start = time.perf_counter()
        repeats = 30
        for _ in range(repeats):
            history.state_at(33)
        per_replay = (time.perf_counter() - start) / repeats
        rows.append((interval, history.version, f"{per_replay * 1e6:.0f}"))
    print_table(
        "Replay cost of state_at(33) after 64 commands, by snapshot "
        "interval (smaller interval = more snapshots = cheaper replay)",
        ["snapshot interval", "log length", "us/replay"],
        rows,
    )


def test_bench_submit_with_history(benchmark):
    def run():
        history = PolicyHistory(figures.figure2(), mode=Mode.STRICT)
        for command in alternating_queue(8):
            history.submit(command)
        return history.version

    version = benchmark(run)
    assert version == 8


def test_bench_submit_without_history(benchmark):
    """Baseline: the same queue through the bare transition."""

    def run():
        policy = figures.figure2()
        oracle = OrderingOracle(policy)
        executed = 0
        for command in alternating_queue(8):
            executed += step(policy, command, Mode.STRICT, oracle).executed
        return executed

    executed = benchmark(run)
    assert executed == 8


def test_bench_rollback(benchmark):
    history = PolicyHistory(
        figures.figure2(), mode=Mode.STRICT, snapshot_interval=8
    )
    for command in alternating_queue(32):
        history.submit(command)

    def run():
        history.rollback(16)
        # Re-extend so the next rollback has something to rewind.
        for command in alternating_queue(16):
            history.submit(command)
        return history.version

    version = benchmark(run)
    assert version == 32


def test_bench_audit_diff(benchmark):
    history = PolicyHistory(figures.figure2(), mode=Mode.STRICT)
    for command in alternating_queue(16):
        history.submit(command)

    diff = benchmark(lambda: history.audit_diff(0, 16))
    assert diff.direction == "equivalent"
