"""Incremental vs. full-rebuild authorization-index maintenance under
policy churn.

The hot path of a production reference monitor is interleaved
grant/revoke/query traffic: every mutation used to invalidate the whole
per-subject rectangle index, so the next query paid a rebuild
proportional to the entire user population — quadratic over a churn
trace.  With the change-journal + dirty-region maintenance the index
repairs only the subjects a mutation can actually have touched.

Run under pytest (``pytest benchmarks/bench_index_churn.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_index_churn.py``).
"""

import os
import time

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.core.commands import grant_cmd
from repro.core.entities import Role, User
from repro.core.privileges import Grant
from repro.workloads.churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    run_churn,
)

SHAPE = ChurnShape(
    n_users=1000, n_roles=32, mutations=60, queries_per_mutation=4
)
SEED = 7
REPETITIONS = 3
#: local runs demand the full 5x; CI sets a lower sanity bound so a
#: noisy shared runner can't fail an unrelated PR on wall-clock jitter.
SPEEDUP_TARGET = float(os.environ.get("CHURN_SPEEDUP_TARGET", "5"))


def _run(incremental: bool) -> tuple[float, dict]:
    """Best-of-N wall time for one trace replay; returns (seconds, stats)."""
    best = float("inf")
    statistics = {}
    for _ in range(REPETITIONS):
        policy = churn_policy(SEED, SHAPE)
        index = AuthorizationIndex(policy, incremental=incremental)
        trace = churn_trace(SEED, SHAPE)
        started = time.perf_counter()
        run_churn(policy, index, trace)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            statistics = index.statistics()
    return best, statistics


def test_report_incremental_vs_full_rebuild():
    incremental_time, incremental_stats = _run(incremental=True)
    rebuild_time, rebuild_stats = _run(incremental=False)
    operations = SHAPE.mutations * (1 + SHAPE.queries_per_mutation)

    def row(label, seconds, stats):
        return (
            label,
            f"{seconds * 1000:.1f}ms",
            f"{operations / seconds:,.0f}",
            stats["full_rebuilds"],
            stats["partial_refreshes"],
            stats["users_refreshed"],
        )

    speedup = rebuild_time / incremental_time
    print_table(
        f"Index maintenance under churn ({SHAPE.n_users} users, "
        f"{SHAPE.mutations} mutations x {SHAPE.queries_per_mutation} queries)",
        ["strategy", "time", "ops/s", "full rebuilds", "partial",
         "users refreshed"],
        [
            row("incremental", incremental_time, incremental_stats),
            row("full-rebuild", rebuild_time, rebuild_stats),
            ("speedup", f"{speedup:.1f}x", "", "", "", ""),
        ],
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"incremental maintenance only {speedup:.1f}x faster than "
        f"full rebuild (target >={SPEEDUP_TARGET}x at 1k users)"
    )


def test_report_memo_survives_localized_churn():
    """Churn-aware ordering-memo eviction (regression assert).

    The ordering oracle used to clear its memo wholesale on *every*
    policy version bump, so under churn each nested-privilege decision
    re-derived from scratch.  With dirty-region eviction, UA churn —
    whose upstream region is just the assigned user — must leave the
    nested-grant entries in place: no full clears, and re-queries after
    each mutation answered from the memo.
    """
    policy = churn_policy(SEED, SHAPE)
    admin_role, admin = Role("admin"), User("admin0")
    head, deputy = Role("dept-head"), Role("dept-deputy")
    policy.add_inheritance(head, deputy)
    nested = Grant(admin_role, Grant(head, head))
    policy.assign_privilege(admin_role, nested)
    index = AuthorizationIndex(policy)
    # A grant whose target is a (strictly weaker) privilege term falls
    # back to the ordering oracle — the query that populates the memo.
    probe = grant_cmd(admin, admin_role, Grant(head, deputy))
    assert index.authorizes(admin, probe) == nested
    oracle_stats = index._oracle.stats
    memo_entries = len(index._oracle._memo)
    assert memo_entries > 0
    hits_before = oracle_stats.memo_hits
    mutations = 60
    for i in range(mutations):
        policy.assign_user(User(f"u{i}"), Role(f"r{8 + i % 8}"))
        assert index.authorizes(admin, probe) is not None
    print_table(
        f"Ordering memo under {mutations} UA mutations",
        ["memo entries", "hits gained", "evictions", "full clears"],
        [(
            memo_entries,
            oracle_stats.memo_hits - hits_before,
            oracle_stats.memo_evictions,
            oracle_stats.memo_full_clears,
        )],
    )
    assert oracle_stats.memo_full_clears == 0, (
        "localized UA churn wholesale-cleared the ordering memo"
    )
    assert oracle_stats.memo_hits - hits_before >= mutations, (
        "nested decisions were re-derived instead of answered from the "
        "churn-surviving memo"
    )


def test_report_decisions_identical():
    """Both maintenance strategies must produce identical decisions on
    the whole trace — the benchmark compares equal work."""
    policy_a = churn_policy(SEED, SHAPE)
    policy_b = churn_policy(SEED, SHAPE)
    trace = churn_trace(SEED, SHAPE)
    incremental = run_churn(
        policy_a, AuthorizationIndex(policy_a, incremental=True), trace
    )
    rebuild = run_churn(
        policy_b, AuthorizationIndex(policy_b, incremental=False), trace
    )
    assert incremental.decisions == rebuild.decisions
    assert incremental.queries == rebuild.queries > 0


if __name__ == "__main__":
    test_report_decisions_identical()
    test_report_memo_survives_localized_churn()
    test_report_incremental_vs_full_rebuild()
