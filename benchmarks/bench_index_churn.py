"""Incremental vs. full-rebuild authorization-index maintenance under
policy churn.

The hot path of a production reference monitor is interleaved
grant/revoke/query traffic: every mutation used to invalidate the whole
per-subject rectangle index, so the next query paid a rebuild
proportional to the entire user population — quadratic over a churn
trace.  With the change-journal + dirty-region maintenance the index
repairs only the subjects a mutation can actually have touched.

Run under pytest (``pytest benchmarks/bench_index_churn.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_index_churn.py``).
"""

import os
import time

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.workloads.churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    run_churn,
)

SHAPE = ChurnShape(
    n_users=1000, n_roles=32, mutations=60, queries_per_mutation=4
)
SEED = 7
REPETITIONS = 3
#: local runs demand the full 5x; CI sets a lower sanity bound so a
#: noisy shared runner can't fail an unrelated PR on wall-clock jitter.
SPEEDUP_TARGET = float(os.environ.get("CHURN_SPEEDUP_TARGET", "5"))


def _run(incremental: bool) -> tuple[float, dict]:
    """Best-of-N wall time for one trace replay; returns (seconds, stats)."""
    best = float("inf")
    statistics = {}
    for _ in range(REPETITIONS):
        policy = churn_policy(SEED, SHAPE)
        index = AuthorizationIndex(policy, incremental=incremental)
        trace = churn_trace(SEED, SHAPE)
        started = time.perf_counter()
        run_churn(policy, index, trace)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            statistics = index.statistics()
    return best, statistics


def test_report_incremental_vs_full_rebuild():
    incremental_time, incremental_stats = _run(incremental=True)
    rebuild_time, rebuild_stats = _run(incremental=False)
    operations = SHAPE.mutations * (1 + SHAPE.queries_per_mutation)

    def row(label, seconds, stats):
        return (
            label,
            f"{seconds * 1000:.1f}ms",
            f"{operations / seconds:,.0f}",
            stats["full_rebuilds"],
            stats["partial_refreshes"],
            stats["users_refreshed"],
        )

    speedup = rebuild_time / incremental_time
    print_table(
        f"Index maintenance under churn ({SHAPE.n_users} users, "
        f"{SHAPE.mutations} mutations x {SHAPE.queries_per_mutation} queries)",
        ["strategy", "time", "ops/s", "full rebuilds", "partial",
         "users refreshed"],
        [
            row("incremental", incremental_time, incremental_stats),
            row("full-rebuild", rebuild_time, rebuild_stats),
            ("speedup", f"{speedup:.1f}x", "", "", "", ""),
        ],
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"incremental maintenance only {speedup:.1f}x faster than "
        f"full rebuild (target >={SPEEDUP_TARGET}x at 1k users)"
    )


def test_report_decisions_identical():
    """Both maintenance strategies must produce identical decisions on
    the whole trace — the benchmark compares equal work."""
    policy_a = churn_policy(SEED, SHAPE)
    policy_b = churn_policy(SEED, SHAPE)
    trace = churn_trace(SEED, SHAPE)
    incremental = run_churn(
        policy_a, AuthorizationIndex(policy_a, incremental=True), trace
    )
    rebuild = run_churn(
        policy_b, AuthorizationIndex(policy_b, incremental=False), trace
    )
    assert incremental.decisions == rebuild.decisions
    assert incremental.queries == rebuild.queries > 0


if __name__ == "__main__":
    test_report_decisions_identical()
    test_report_incremental_vs_full_rebuild()
