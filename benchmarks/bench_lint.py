"""Static policy lint: one kernel sweep vs. per-subject probing.

The claim under test: answering the lint questions (dead roles,
dormant privileges, irrevocable authority, self-escalation, SSD
conflicts, redundant delegation) with one bitset sweep per rule over
``PolicyBits`` masks and memoized ``descendants_bits`` beats the way
you would answer them without the lint subsystem — probing every
subject × object pair through the frozenset API (``policy.reaches``
per cell, ``policy.copy()`` + from-scratch index rebuild per
redundancy candidate) — by >=5x at 5k-user enterprise scale.

Three runs over the same workload (enterprise policy plus a handful of
closure-implied shortcut edges and a cross-department SSD set):

* **compiled** — ``lint_policy(compiled=True)``, the full rule sweep;
* **oracle** — ``lint_policy(compiled=False)``, the frozenset twin:
  findings must be *identical* (fuzz invariant 11 pins this under
  churn; the bench pins it at scale);
* **baseline** — the per-subject probing implementation defined below,
  which must agree with the sweep on every (rule, subject, witness)
  and is the denominator of the speedup assertion.

Run under pytest (``pytest benchmarks/bench_lint.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_lint.py``).
``LINT_BENCH_DEPARTMENTS`` / ``LINT_BENCH_LEVELS`` /
``LINT_BENCH_EMPLOYEES`` shrink the workload for CI smoke runs;
``LINT_SPEEDUP_TARGET`` adjusts the assertion bar;
``tools/bench_report.py`` sets ``LINT_METRICS_OUT`` to collect the
numbers into the ``BENCH_kernel.json`` trajectory.
"""

import json
import os
import time

from conftest import print_table

from repro.analysis.constraints import SsdConstraint
from repro.analysis.lint import lint_policy
from repro.core.authz_index import AuthorizationIndex
from repro.core.entities import Role, User
from repro.core.privileges import Grant, Revoke, is_privilege
from repro.workloads.enterprise import EnterpriseShape, enterprise_policy

DEPARTMENTS = int(os.environ.get("LINT_BENCH_DEPARTMENTS", "5"))
LEVELS = int(os.environ.get("LINT_BENCH_LEVELS", "4"))
EMPLOYEES = int(os.environ.get("LINT_BENCH_EMPLOYEES", "1000"))
SPEEDUP_TARGET = float(os.environ.get("LINT_SPEEDUP_TARGET", "5"))
SHAPE = EnterpriseShape(
    departments=DEPARTMENTS,
    levels_per_department=LEVELS,
    roles_per_level=3,
    employees_per_department=EMPLOYEES,
    delegation_depth=2,
)
SEED = 0

_metrics_cache: dict = {}


def build_workload():
    """The enterprise policy, seasoned so every rule has work to do:
    closure-implied shortcut edges feed the redundancy prober, and a
    cross-department SSD set feeds the constraint rule."""
    policy = enterprise_policy(SHAPE, SEED)
    if SHAPE.levels_per_department >= 3:
        for dept in range(SHAPE.departments):
            for index in range(SHAPE.roles_per_level):
                upper = Role(f"dept{dept}_L0_r{index}")
                lower = Role(f"dept{dept}_L2_r{index}")
                if (
                    upper in policy.graph
                    and lower in policy.graph
                    and policy.reaches(upper, lower)
                    and not policy.has_edge(upper, lower)
                ):
                    policy.add_inheritance(upper, lower)
    constraints = ()
    if SHAPE.departments >= 2:
        constraints = (
            SsdConstraint(
                "cross_department",
                frozenset(
                    Role(f"dept{dept}_L0_r0")
                    for dept in range(SHAPE.departments)
                ),
            ),
        )
    return policy, constraints


# ----------------------------------------------------------------------
# The per-subject probing baseline: same questions, no sweep.  Every
# reachability fact is re-derived per (subject, object) cell through
# the frozenset API, and every redundancy candidate costs a policy
# copy plus two from-scratch frozenset index builds.
# ----------------------------------------------------------------------
def baseline_signatures(policy, constraints):
    """rule -> sorted (str(subject), witness-strs) pairs, matching the
    lint findings' signature exactly."""
    graph = policy.graph
    users = sorted(policy.users(), key=str)
    roles = sorted(policy.roles(), key=str)
    privileges = sorted(policy.privileges(), key=str)
    entities = sorted(
        (
            vertex for vertex in policy.vertex_set()
            if isinstance(vertex, (User, Role))
        ),
        key=str,
    )
    out: dict[str, list] = {}

    def reached_by_someone(vertex):
        return any(policy.reaches(user, vertex) for user in users)

    def rectangle(privilege):
        if privilege.source in graph:
            sources = [
                entity for entity in entities
                if policy.reaches(entity, privilege.source)
            ]
        else:
            sources = [privilege.source]
        if privilege.target in graph:
            targets = [
                role for role in roles
                if policy.reaches(privilege.target, role)
            ]
        else:
            targets = (
                [privilege.target]
                if isinstance(privilege.target, Role) else []
            )
        return sources, targets

    # dead-role
    out["dead-role"] = [
        (str(role), ())
        for role in roles if not reached_by_someone(role)
    ]

    # dormant-privilege
    unreachable = [
        privilege for privilege in privileges
        if not reached_by_someone(privilege)
    ]
    potential: set = set()
    for grant in privileges:
        if not isinstance(grant, Grant) or not reached_by_someone(grant):
            continue
        if isinstance(grant.target, (User, Role)):
            sources, targets = rectangle(grant)
            activatable = any(
                source in graph and reached_by_someone(source)
                or source not in graph and isinstance(source, User)
                for source in sources
            )
            if not activatable:
                continue
            for target in targets:
                if target in graph:
                    potential.update(
                        privilege for privilege in privileges
                        if policy.reaches(target, privilege)
                    )
        else:
            if reached_by_someone(grant.source) and grant.target in graph:
                potential.add(grant.target)
    out["dormant-privilege"] = [
        (
            str(privilege),
            tuple(
                str(assigner) for assigner in
                sorted(graph.predecessors(privilege), key=str)
            ),
        )
        for privilege in unreachable if privilege not in potential
    ]

    # constraint-conflict
    conflicts = []
    for constraint in sorted(constraints, key=lambda c: c.name):
        separation = sorted(constraint.roles, key=str)
        for subject in users + roles:
            hit = [
                role for role in separation
                if role in graph and policy.reaches(subject, role)
            ]
            if len(hit) >= constraint.cardinality:
                conflicts.append(
                    (str(subject), tuple(str(role) for role in hit))
                )
    out["constraint-conflict"] = conflicts

    # irrevocable-authority
    revocable = {
        privilege.edge
        for privilege in privileges
        if isinstance(privilege, Revoke)
        and isinstance(privilege.target, (User, Role))
        and reached_by_someone(privilege)
    }
    irrevocable = []
    for grant in privileges:
        if (
            not isinstance(grant, Grant)
            or not isinstance(grant.target, (User, Role))
            or not reached_by_someone(grant)
        ):
            continue
        sources, targets = rectangle(grant)
        if not sources or not targets:
            continue
        witness = next(
            (
                (source, target)
                for source in sources for target in targets
                if (source, target) not in revocable
            ),
            None,
        )
        if witness is None:
            continue
        irrevocable.append(
            (str(grant), (str(witness[0]), str(witness[1])))
        )
    out["irrevocable-authority"] = irrevocable

    # self-escalation
    escalations = []
    priv_target_grants = sorted(
        (
            privilege
            for privilege in policy.admin_privileges()
            if isinstance(privilege, Grant)
            and is_privilege(privilege.target)
        ),
        key=str,
    )
    for user in users:
        reach = policy.descendants(user)
        for grant in privileges:
            if (
                not isinstance(grant, Grant)
                or not isinstance(grant.target, (User, Role))
                or grant not in reach
            ):
                continue
            sources, targets = rectangle(grant)
            routable = [
                source for source in sources if source in reach
            ]
            if not routable:
                continue
            witness = None
            for target in targets:
                if target not in graph or target in reach:
                    continue
                gained = next(
                    (
                        privilege for privilege in privileges
                        if policy.reaches(target, privilege)
                        and privilege not in reach
                    ),
                    None,
                )
                if gained is not None:
                    witness = (routable[0], target, gained)
                    break
            if witness:
                escalations.append(
                    (str(user), tuple(str(item) for item in witness))
                )
        for grant in priv_target_grants:
            if grant not in reach or grant.source not in reach:
                continue
            if grant.target in reach:
                continue
            escalations.append(
                (
                    str(user),
                    (str(grant.source), str(grant.target),
                     str(grant.target)),
                )
            )
    out["self-escalation"] = escalations

    # redundant-delegation: copy + from-scratch index rebuild per probe
    redundant = []
    edges = sorted(
        policy.edge_set(), key=lambda edge: (str(edge[0]), str(edge[1]))
    )
    for source, target in edges:
        if is_privilege(target) and graph.in_degree(target) == 1:
            continue
        if not any(
            policy.reaches(successor, target)
            for successor in graph.successors(source)
            if successor != target
        ):
            continue
        upstream = [
            user for user in users if policy.reaches(user, source)
        ]
        before = AuthorizationIndex(policy.copy(), compiled=False)
        before_held = {
            user: before.held_privileges(user) for user in upstream
        }
        before_authority = {
            user: before.effective_authority(user)
            for user in upstream[:8]
        }
        probe = policy.copy()
        probe.remove_edge(source, target)
        if not probe.reaches(source, target):
            continue
        after = AuthorizationIndex(probe, compiled=False)
        preserved = all(
            after.held_privileges(user) == before_held[user]
            for user in upstream
        ) and all(
            after.effective_authority(user) == before_authority[user]
            for user in before_authority
        )
        if not preserved:
            continue
        reroute = next(
            successor
            for successor in sorted(probe.graph.successors(source), key=str)
            if probe.reaches(successor, target)
        )
        redundant.append(
            (str(source), (str(source), str(target), str(reroute)))
        )
    out["redundant-delegation"] = redundant

    return {
        rule: sorted(pairs) for rule, pairs in out.items() if pairs
    }


def report_signatures(report):
    signatures: dict[str, list] = {}
    for finding in report.findings:
        signatures.setdefault(finding.rule, []).append(
            (
                str(finding.subject),
                tuple(str(item) for item in finding.witness),
            )
        )
    return {rule: sorted(pairs) for rule, pairs in signatures.items()}


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    policy, constraints = build_workload()

    compiled_policy = policy.copy()
    started = time.perf_counter()
    compiled_report = lint_policy(
        compiled_policy, compiled=True, constraints=constraints
    )
    compiled_s = time.perf_counter() - started

    oracle_policy = policy.copy()
    started = time.perf_counter()
    oracle_report = lint_policy(
        oracle_policy, compiled=False, constraints=constraints
    )
    oracle_s = time.perf_counter() - started

    baseline_policy = policy.copy()
    started = time.perf_counter()
    baseline = baseline_signatures(baseline_policy, constraints)
    baseline_s = time.perf_counter() - started

    assert compiled_report.findings == oracle_report.findings, (
        "compiled and frozenset lint findings diverge on the bench "
        "workload"
    )
    assert compiled_report.stats == oracle_report.stats, (
        "compiled and frozenset lint statistics diverge on the bench "
        "workload"
    )
    assert report_signatures(compiled_report) == baseline, (
        "per-subject probing baseline disagrees with the rule sweep"
    )
    assert compiled_report.findings, "bench workload produced no findings"

    _metrics_cache.update({
        "departments": SHAPE.departments,
        "users": len(list(policy.users())),
        "vertices": len(policy.vertex_set()),
        "findings": len(compiled_report.findings),
        "redundancy_candidates": compiled_report.stats.get(
            "redundant-delegation", {}
        ).get("candidates", 0),
        "baseline_s": round(baseline_s, 4),
        "oracle_s": round(oracle_s, 4),
        "compiled_s": round(compiled_s, 4),
        "compiled_speedup": round(baseline_s / compiled_s, 2),
        "oracle_speedup": round(baseline_s / oracle_s, 2),
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_lint_speedup():
    metrics = collect_metrics()
    print_table(
        f"Lint rule sweep vs per-subject probing "
        f"(enterprise, {metrics['users']} users, "
        f"{metrics['vertices']} vertices, "
        f"{metrics['findings']} findings)",
        ["implementation", "time", "speedup"],
        [
            (
                "per-subject frozenset probing",
                f"{metrics['baseline_s'] * 1000:.0f}ms",
                "1.0x",
            ),
            (
                "frozenset lint sweep (oracle)",
                f"{metrics['oracle_s'] * 1000:.0f}ms",
                f"{metrics['oracle_speedup']:.1f}x",
            ),
            (
                "compiled lint sweep",
                f"{metrics['compiled_s'] * 1000:.0f}ms",
                f"{metrics['compiled_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["compiled_speedup"] >= SPEEDUP_TARGET, (
        f"compiled lint sweep only {metrics['compiled_speedup']:.1f}x faster "
        f"than per-subject probing (target >={SPEEDUP_TARGET}x)"
    )


def test_report_lint_identity():
    """Invariant 11 on a reduced campaign: compiled and frozenset lint
    findings identical under ID-recycling churn."""
    from repro.workloads.fuzz import fuzz_lint
    from repro.workloads.generators import PolicyShape

    report = fuzz_lint(
        SEED, steps=16,
        shape=PolicyShape(n_users=4, n_roles=5, n_admin_privileges=4),
    )
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_lint_identity()
    test_report_lint_speedup()
    metrics_out = os.environ.get("LINT_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
