"""LEM1 — Lemma 1: the ordering decision procedure is tractable.

The paper's central algorithmic claim.  Measured two ways:

* decision latency as the role hierarchy grows (layers × width sweep);
* decision latency as the nesting depth of the compared terms grows.

The shape to reproduce: cost grows polynomially (roughly linearly in
reachability work × term depth), never exponentially, and does not
depend on the (infinite) size of the weaker set.
"""

import time

import pytest
from conftest import print_table

from repro.core.entities import Role, User
from repro.core.ordering import OrderingOracle
from repro.workloads.generators import layered_hierarchy, nested_grant


def hierarchy_and_terms(layers: int, width: int, depth: int):
    """A layered hierarchy plus a (stronger, weaker) term pair whose
    decision must traverse the whole hierarchy: the stronger term's
    innermost grant targets the top role, the weaker one's the bottom
    role (reachable through every layer), with identical wrappers."""
    policy = layered_hierarchy(seed=1, layers=layers, roles_per_layer=width)
    user = User("user0")
    top = Role("L0_r0")
    bottom = Role(f"L{layers - 1}_r0")
    wrappers = [Role(f"L{layer % layers}_r0") for layer in range(max(1, depth))]
    stronger = nested_grant([top] + wrappers, user, depth)
    weaker = nested_grant([bottom] + wrappers, user, depth)
    return policy, stronger, weaker


def _time_cold_queries(policy, stronger, weaker, repeats: int = 15) -> float:
    """Mean seconds per fully-cold decision (fresh policy copy each
    time, so neither the ordering memo nor the reachability cache is
    warm)."""
    copies = [policy.copy() for _ in range(repeats)]
    start = time.perf_counter()
    for copy in copies:
        OrderingOracle(copy).is_weaker(stronger, weaker)
    return (time.perf_counter() - start) / repeats


def test_report_scaling_with_hierarchy_size():
    rows = []
    for layers, width in [(3, 4), (5, 8), (7, 16), (9, 24), (11, 32)]:
        policy, stronger, weaker = hierarchy_and_terms(layers, width, 3)
        verdict = OrderingOracle(policy).is_weaker(stronger, weaker)
        per_query = _time_cold_queries(policy, stronger, weaker)
        rows.append((
            layers * width,
            policy.graph.edge_count,
            f"{per_query * 1e6:.0f}",
            verdict,
        ))
    print_table(
        "Lemma 1: cold decision latency vs hierarchy size "
        "(shape: grows smoothly with graph size — tractable)",
        ["roles", "edges", "us/decision (cold)", "verdict"],
        rows,
    )
    assert all(row[3] for row in rows)  # queries traverse the hierarchy


def test_report_scaling_with_nesting_depth():
    rows = []
    for depth in [1, 2, 4, 8, 16, 32]:
        policy, stronger, weaker = hierarchy_and_terms(6, 6, depth)
        verdict = OrderingOracle(policy).is_weaker(stronger, weaker)
        per_query = _time_cold_queries(policy, stronger, weaker)
        rows.append((depth, f"{per_query * 1e6:.0f}", verdict))
    print_table(
        "Lemma 1: cold decision latency vs term nesting depth "
        "(shape: linear in depth — the structural induction)",
        ["nesting depth", "us/decision (cold)", "verdict"],
        rows,
    )
    assert all(row[2] for row in rows)


@pytest.mark.parametrize("layers,width", [(3, 4), (6, 8), (9, 16)])
def test_bench_decision_by_hierarchy(benchmark, layers, width):
    policy, stronger, weaker = hierarchy_and_terms(layers, width, 3)

    def run():
        oracle = OrderingOracle(policy)
        return oracle.is_weaker(stronger, weaker)

    benchmark(run)


@pytest.mark.parametrize("depth", [1, 4, 16])
def test_bench_decision_by_depth(benchmark, depth):
    policy, stronger, weaker = hierarchy_and_terms(6, 6, depth)

    def run():
        oracle = OrderingOracle(policy)
        return oracle.is_weaker(stronger, weaker)

    benchmark(run)


def test_bench_memoized_repeat_queries(benchmark):
    policy, stronger, weaker = hierarchy_and_terms(6, 8, 8)
    oracle = OrderingOracle(policy)
    oracle.is_weaker(stronger, weaker)  # warm

    benchmark(lambda: oracle.is_weaker(stronger, weaker))
