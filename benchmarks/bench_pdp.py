"""Async PDP serving latency vs. a naive one-lock-per-call baseline.

The claim under test: under >=64 concurrent principals issuing
access-review pages of authorization probes, the
:class:`repro.serve.PolicyDecisionPoint` — journal-invalidated
decision cache in front of lock-free snapshot reads coalesced into
``authorizes_batch`` sweeps — answers with a p50 request latency >=3x
better than the obvious first implementation: one ``asyncio.Lock``
around the monitor, one scalar ``authorizes`` call per probe.

The workload is the serving shape the PDP exists for.  Every *burst*,
each principal (a client connection acting as one of the policy's
administrators) submits one ``check_many`` page of PROBES fresh
command objects drawn from a hot pool of distinct requests — paged
access reviews replay the same candidate edges page after page, so
the burst is duplicate-heavy and later bursts re-ask earlier
questions.  After several bursts a writer cohort pushes grant/revoke
toggles through the mutation path (quiesced before the next round's
reads, so both servers decide every burst against the identical
policy state), invalidating the dirty slice of the cache and
republishing the snapshot.  Request latency runs from burst arrival
to page completion — queueing delay included, which is what a caller
actually experiences — and the serialized baseline queues every page
behind every other principal's scalar sweep while the PDP answers
repeats from the cache and collapses cold pages into one batched
sweep.  Both servers replay value-identical request scripts and every
burst's allowed/denied page (and every round's write outcomes) is
asserted equal between them before any timing number is trusted;
percentiles are computed exactly from the raw samples (the PDP's own
histogram p50 is reported alongside as a metrics-surface sanity
value).

Run under pytest (``pytest benchmarks/bench_pdp.py -s``) or directly
(``PYTHONPATH=src python benchmarks/bench_pdp.py``).
``PDP_BENCH_PRINCIPALS`` / ``PDP_BENCH_ROUNDS`` / ``PDP_BENCH_USERS``
/ ``PDP_SPEEDUP_TARGET`` shrink the workload and the assertion bar for
CI smoke runs; ``tools/bench_report.py`` sets ``PDP_METRICS_OUT`` to
collect the numbers into the ``BENCH_kernel.json`` trajectory.
"""

import asyncio
import json
import math
import os
import random
import time

from conftest import print_table

from repro.core.commands import Mode, grant_cmd, revoke_cmd
from repro.core.entities import Role, User
from repro.core.monitor import ReferenceMonitor
from repro.core.privileges import Grant
from repro.serve import PolicyDecisionPoint
from repro.workloads.churn import ChurnShape, churn_policy

PRINCIPALS = int(os.environ.get("PDP_BENCH_PRINCIPALS", "128"))
ROUNDS = int(os.environ.get("PDP_BENCH_ROUNDS", "6"))
BENCH_USERS = int(os.environ.get("PDP_BENCH_USERS", "2000"))
#: local runs and CI both demand the issue's 3x floor; the measured
#: margin is far wider (the cache short-circuits repeated probes and
#: the baseline queues every page behind every other principal's).
SPEEDUP_TARGET = float(os.environ.get("PDP_SPEEDUP_TARGET", "3"))
#: probes per page: one principal request carries a review page of
#: several candidate edges, the RPC shape ``check_many`` exists for.
PROBES = 8
#: read bursts between write phases — reads dominate mutations in the
#: serving workload (ChurnShape's queries_per_mutation says the same),
#: so the per-publication snapshot cost lands on the one cold burst
#: and the steady-state bursts measure the cached path.
BURSTS = 5
#: the enterprise shape, with delegated administration scaled up so a
#: single scalar decision carries realistic rectangle-scan weight.
SHAPE = ChurnShape(
    n_users=BENCH_USERS, n_roles=48, layers=6, roles_per_user=3,
    privileges_per_role=8, delegations_per_top_role=40,
)
SEED = 29
REPETITIONS = 2
#: distinct request values in the hot pool — every burst draws
#: PRINCIPALS * PROBES probes from it, so duplicates collapse in the
#: batch sweep and later bursts re-hit surviving cache entries.
POOL = max(32, PRINCIPALS)
WRITERS = max(1, PRINCIPALS // 8)

_metrics_cache: dict = {}


class SerializedBaseline:
    """The naive PDP: one lock per call, one scalar decision per probe.

    This is the honest first cut, not a strawman — it is exactly what
    wrapping the refined monitor's index in a mutex gives: correct,
    snapshot-free, and every concurrent page queues behind the page
    ahead of it."""

    def __init__(self, policy):
        self.monitor = ReferenceMonitor(
            policy, mode=Mode.REFINED, use_index=True, compiled=True
        )
        self._lock = asyncio.Lock()

    async def check_many(self, subject, commands) -> list[bool]:
        async with self._lock:
            authorizes = self.monitor._index.authorizes
            return [
                authorizes(subject, command) is not None
                for command in commands
            ]

    async def submit(self, command):
        async with self._lock:
            return self.monitor.submit(command)


class ServedPdp:
    """The tentpole under test, adapted to the same driver surface."""

    def __init__(self, policy):
        self.pdp = PolicyDecisionPoint(policy=policy, compiled=True)

    async def check_many(self, subject, commands) -> list[bool]:
        decisions = await self.pdp.check_many(subject, commands)
        return [decision.allowed for decision in decisions]

    async def submit(self, command):
        return await self.pdp.submit(command)


def _hot_names(policy):
    """Names inside the administrators' grant rectangles — probes over
    these pass the union-mask prefilter, so the scalar baseline pays
    the full rectangle scan for each of them."""
    hot_users: set[str] = set()
    hot_roles: set[str] = set()
    seniors: set[Role] = set()
    for privilege in policy.admin_privileges():
        if not isinstance(privilege, Grant):
            continue
        if isinstance(privilege.source, User):
            hot_users.add(privilege.source.name)
        if isinstance(privilege.target, Role):
            seniors.add(privilege.target)
    for senior in seniors:
        for vertex in policy.descendants(senior):
            if isinstance(vertex, Role):
                hot_roles.add(vertex.name)
    for user, role in policy.ua_edges():
        if role in seniors:
            hot_users.add(user.name)
    return sorted(hot_users), sorted(hot_roles)


def _value_script(policy):
    """The deterministic request script, as entity *names* — each
    server run rematerializes fresh objects from it, so the two
    servers (and repetitions) replay value-identical but
    object-distinct traces and neither benefits from the other's
    per-object memos.

    Returns (pool, read_script, write_script): POOL distinct
    (make, user_name, role_name) probe values; per round, BURSTS
    bursts of PRINCIPALS pages of PROBES pool indices; per round,
    WRITERS (make, user_name, role_name) hot-pair toggles."""
    rng = random.Random(SEED + 1)
    hot_users, hot_roles = _hot_names(policy)
    plain_users = [f"u{i}" for i in range(SHAPE.n_users)]
    plain_roles = [f"r{i}" for i in range(SHAPE.n_roles)]
    pool = []
    for _ in range(POOL):
        draw = rng.random()
        if draw < 0.7 and hot_users and hot_roles:
            pool.append((
                grant_cmd, rng.choice(hot_users), rng.choice(hot_roles),
            ))
        elif draw < 0.85:
            pool.append((
                grant_cmd, rng.choice(plain_users), rng.choice(plain_roles),
            ))
        else:
            pool.append((
                revoke_cmd, rng.choice(plain_users), rng.choice(plain_roles),
            ))
    read_script = [
        [
            [
                [rng.randrange(POOL) for _ in range(PROBES)]
                for _ in range(PRINCIPALS)
            ]
            for _ in range(BURSTS)
        ]
        for _ in range(ROUNDS)
    ]
    write_script = []
    for round_index in range(ROUNDS):
        writes = []
        for writer in range(WRITERS):
            user = rng.choice(hot_users) if hot_users else rng.choice(plain_users)
            role = rng.choice(hot_roles) if hot_roles else rng.choice(plain_roles)
            make = grant_cmd if (round_index + writer) % 2 == 0 else revoke_cmd
            writes.append((make, user, role))
        write_script.append(writes)
    return pool, read_script, write_script


def _materialize(script):
    """Fresh entity and command objects for one server run.

    Every page probe is a *new* :class:`Command` naming the run's
    shared entity objects, as arriving requests are in a real server —
    the scalar path pays the per-command work (wanted-privilege
    construction) for each of them, while the PDP's value-keyed cache
    recognizes the repeat.  Principal ``i`` acts as administrator
    ``i % n_admins``."""
    pool, read_script, write_script = script
    admins = [User(f"admin{i}") for i in range(SHAPE.n_admins)]
    users = {name: User(name) for _, name, _ in pool}
    roles = {name: Role(name) for _, _, name in pool}

    def probe(principal, index):
        make, user, role = pool[index]
        return make(
            admins[principal % len(admins)],
            users.setdefault(user, User(user)),
            roles.setdefault(role, Role(role)),
        )

    reads = [
        [
            [
                (
                    admins[principal % len(admins)],
                    [probe(principal, index) for index in page],
                )
                for principal, page in enumerate(burst)
            ]
            for burst in round_bursts
        ]
        for round_bursts in read_script
    ]
    writes = [
        [
            make(
                admins[position % len(admins)],
                users.setdefault(user, User(user)),
                roles.setdefault(role, Role(role)),
            )
            for position, (make, user, role) in enumerate(round_writes)
        ]
        for round_writes in write_script
    ]
    return reads, writes


async def _drive(server, reads, writes):
    """Replay the script; returns (per-page latencies, per-burst
    allowed pages, per-round write outcomes).  Page latency runs from
    burst arrival to page completion; the write phase is quiesced
    between rounds so both servers decide each burst against the same
    policy state."""
    latencies: list[float] = []
    allowed: list[list[list[bool]]] = []
    applied: list[list[bool]] = []

    async def page(subject, commands, arrival, verdicts, position):
        verdicts[position] = await server.check_many(subject, commands)
        latencies.append(time.perf_counter() - arrival)

    for round_bursts, round_writes in zip(reads, writes):
        for burst in round_bursts:
            verdicts: list = [None] * len(burst)
            arrival = time.perf_counter()
            await asyncio.gather(*[
                page(subject, commands, arrival, verdicts, position)
                for position, (subject, commands) in enumerate(burst)
            ])
            allowed.append(verdicts)
        records = await asyncio.gather(*[
            server.submit(command) for command in round_writes
        ])
        applied.append([record.executed for record in records])
    return latencies, allowed, applied


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _run_servers():
    """Best-of-N p50/p99 for both servers on value-identical scripts,
    with the allowed pages and write outcomes asserted equal every
    repetition."""
    base_policy = churn_policy(SEED, SHAPE)
    script = _value_script(base_policy)
    best: dict[str, dict[str, float]] = {}
    last_pdp = None
    for _ in range(REPETITIONS):
        results = {}
        for name in ("baseline", "pdp"):
            reads, writes = _materialize(script)
            policy = base_policy.copy()
            if name == "baseline":
                server = SerializedBaseline(policy)
                outcome = asyncio.run(_drive(server, reads, writes))
            else:
                server = ServedPdp(policy)

                async def scenario(server=server, reads=reads, writes=writes):
                    async with server.pdp:
                        return await _drive(server, reads, writes)

                outcome = asyncio.run(scenario())
                last_pdp = server.pdp
            results[name] = outcome
        assert results["pdp"][1] == results["baseline"][1], (
            "PDP allowed/denied pages diverged from the serialized "
            "baseline on a value-identical request script"
        )
        assert results["pdp"][2] == results["baseline"][2], (
            "PDP write outcomes diverged from the serialized baseline"
        )
        for name, (latencies, _, _) in results.items():
            candidate = {
                "p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
            }
            if name not in best or candidate["p50"] < best[name]["p50"]:
                best[name] = candidate
    return best, last_pdp


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    best, pdp = _run_servers()
    internal = pdp.metrics.decision_latency.snapshot()
    _metrics_cache.update({
        "principals": PRINCIPALS,
        "probes": PROBES,
        "bursts": BURSTS,
        "rounds": ROUNDS,
        "users": SHAPE.n_users,
        "pool": POOL,
        "baseline_p50_us": round(best["baseline"]["p50"] * 1e6, 1),
        "baseline_p99_us": round(best["baseline"]["p99"] * 1e6, 1),
        "pdp_p50_us": round(best["pdp"]["p50"] * 1e6, 1),
        "pdp_p99_us": round(best["pdp"]["p99"] * 1e6, 1),
        "pdp_internal_p50_us": round(internal["p50"] * 1e6, 1),
        "p50_speedup": round(
            best["baseline"]["p50"] / best["pdp"]["p50"], 2
        ),
        "p99_speedup": round(
            best["baseline"]["p99"] / best["pdp"]["p99"], 2
        ),
        "cache_hits": pdp.metrics.cache_hits,
        "read_batches": pdp.metrics.read_batches,
        "write_batches": pdp.metrics.batches,
        "max_batch_size": pdp.metrics.max_batch_size,
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_pdp_latency():
    metrics = collect_metrics()
    print_table(
        f"PDP vs one-lock-per-call baseline ({metrics['principals']} "
        f"principals x {metrics['probes']} probes/page, "
        f"{metrics['rounds']}x{metrics['bursts']} bursts, "
        f"{metrics['users']} users)",
        ["latency", "baseline", "pdp", "speedup"],
        [
            (
                "p50",
                f"{metrics['baseline_p50_us']:,}us",
                f"{metrics['pdp_p50_us']:,}us",
                f"{metrics['p50_speedup']:.1f}x",
            ),
            (
                "p99",
                f"{metrics['baseline_p99_us']:,}us",
                f"{metrics['pdp_p99_us']:,}us",
                f"{metrics['p99_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["principals"] >= 64, (
        "the serving claim is about concurrent load: keep "
        "PDP_BENCH_PRINCIPALS >= 64"
    )
    assert metrics["p50_speedup"] >= SPEEDUP_TARGET, (
        f"PDP p50 only {metrics['p50_speedup']:.1f}x better than the "
        f"serialized baseline (target >={SPEEDUP_TARGET}x at "
        f"{PRINCIPALS} principals)"
    )
    # The serving machinery must actually be engaged, or the latency
    # story is vacuous.
    assert metrics["cache_hits"] > 0
    assert metrics["read_batches"] >= 1
    assert metrics["write_batches"] >= 1


def test_report_pdp_conformance_under_fuzz():
    """Invariant 14 on a reduced campaign: interleaved PDP decisions
    and batches validate against the synchronous oracle on both
    kernels, across recycling churn."""
    from repro.workloads.fuzz import fuzz_pdp
    from repro.workloads.generators import PolicyShape

    shape = PolicyShape(n_users=4, n_roles=5, n_admin_privileges=4)
    for compiled in (True, False):
        report = fuzz_pdp(SEED, shape=shape, compiled=compiled)
        assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_pdp_conformance_under_fuzz()
    test_report_pdp_latency()
    metrics_out = os.environ.get("PDP_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
