"""Durability tax and recovery speed of the policy write-ahead log.

Two claims about the fault-tolerance layer, measured on the same
deterministic write workload:

1. **The WAL is affordable.**  Hash-chaining every accepted
   micro-batch to disk and fsync'ing it *before* the batch's futures
   resolve costs at most ``RECOVERY_OVERHEAD_TARGET`` percent (default
   25) of write-path wall time versus an identical PDP with no WAL
   attached.  One fsync covers a whole micro-batch, which is why the
   tax stays bounded while every acknowledged mutation survives a
   process kill.

2. **Recovery is fast deterministic replay.**
   :meth:`~repro.serve.PolicyDecisionPoint.recover` — chain
   verification plus one ``submit_queue(batched=True)`` transaction
   per logged batch — rebuilds the pre-crash policy at least as fast
   as the live run produced it (``replay_speedup >= 1``: no event
   loop, no fsync, no per-batch snapshot publication), and the
   recovered policy is asserted **byte-identical** (canonical JSON)
   to the live run's final state before any timing number is trusted.

Both PDPs replay value-identical command scripts and their per-batch
executed/noop outcomes are asserted equal, so the overhead comparison
never times diverging work.

Run under pytest (``pytest benchmarks/bench_recovery.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_recovery.py``).
``RECOVERY_BENCH_USERS`` / ``RECOVERY_BENCH_BATCHES`` /
``RECOVERY_BENCH_BATCH_SIZE`` / ``RECOVERY_OVERHEAD_TARGET`` shrink
the workload and the assertion bar for CI smoke runs;
``tools/bench_report.py`` sets ``RECOVERY_METRICS_OUT`` to collect the
numbers into the ``BENCH_kernel.json`` trajectory.
"""

import asyncio
import json
import os
import random
import tempfile
import time

from conftest import print_table

from repro.core.commands import grant_cmd, revoke_cmd
from repro.core.entities import Role, User
from repro.core.serialization import policy_to_json
from repro.serve import PolicyDecisionPoint
from repro.workloads.churn import ChurnShape, churn_policy

BENCH_USERS = int(os.environ.get("RECOVERY_BENCH_USERS", "1200"))
BATCHES = int(os.environ.get("RECOVERY_BENCH_BATCHES", "40"))
BATCH_SIZE = int(os.environ.get("RECOVERY_BENCH_BATCH_SIZE", "24"))
#: the durability-tax ceiling the issue pins: WAL-attached write-path
#: time may exceed the no-WAL run by at most this percentage.
OVERHEAD_TARGET = float(os.environ.get("RECOVERY_OVERHEAD_TARGET", "25"))
SHAPE = ChurnShape(
    n_users=BENCH_USERS, n_roles=32, layers=5, roles_per_user=3,
    privileges_per_role=6, delegations_per_top_role=24,
)
SEED = 31
REPETITIONS = 3

_metrics_cache: dict = {}


def _write_script():
    """Per-batch (make, admin, user_name, role_name) value tuples —
    grant/revoke toggles over a hot pair pool, deterministic in SEED.
    Rematerialized per run so neither server benefits from the other's
    object identity."""
    rng = random.Random(SEED + 1)
    users = [f"u{i}" for i in range(SHAPE.n_users)]
    roles = [f"r{i}" for i in range(SHAPE.n_roles)]
    pool = [
        (rng.choice(users), rng.choice(roles))
        for _ in range(max(16, BATCH_SIZE * 2))
    ]
    script = []
    for batch_index in range(BATCHES):
        batch = []
        for position in range(BATCH_SIZE):
            user, role = pool[rng.randrange(len(pool))]
            make = (
                grant_cmd if (batch_index + position) % 2 == 0
                else revoke_cmd
            )
            batch.append((make, position % SHAPE.n_admins, user, role))
        script.append(batch)
    return script


def _materialize(script):
    admins = [User(f"admin{i}") for i in range(SHAPE.n_admins)]
    users: dict[str, User] = {}
    roles: dict[str, Role] = {}
    return [
        [
            make(
                admins[admin],
                users.setdefault(user, User(user)),
                roles.setdefault(role, Role(role)),
            )
            for make, admin, user, role in batch
        ]
        for batch in script
    ]


async def _drive(policy, script, wal_path):
    """Push the script through one PDP, one submit_many per batch
    (``max_batch == BATCH_SIZE``, so batching — and therefore the WAL
    record layout — is deterministic).  Returns (write-path seconds,
    per-batch outcomes, final policy JSON)."""
    pdp = PolicyDecisionPoint(
        policy=policy, compiled=True, wal=wal_path,
        max_batch=BATCH_SIZE, max_delay=0.0005,
    )
    outcomes = []
    async with pdp:
        started = time.perf_counter()
        for batch in _materialize(script):
            records = await pdp.submit_many(batch)
            outcomes.append([(r.executed, r.noop) for r in records])
        elapsed = time.perf_counter() - started
    return elapsed, outcomes, policy_to_json(pdp.monitor.policy)


def _run_servers():
    """Best-of-N write-path time with and without the WAL (outcome
    equality asserted every repetition), plus a timed recovery of the
    final WAL."""
    script = _write_script()
    workdir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    best = {"plain": float("inf"), "wal": float("inf")}
    final_doc = None
    wal_path = None
    for repetition in range(REPETITIONS):
        outcomes = {}
        for name in ("plain", "wal"):
            path = (
                os.path.join(workdir, f"run{repetition}.wal")
                if name == "wal" else None
            )
            elapsed, run_outcomes, doc = asyncio.run(
                _drive(churn_policy(SEED, SHAPE), script, path)
            )
            outcomes[name] = run_outcomes
            best[name] = min(best[name], elapsed)
            if name == "wal":
                final_doc = doc
                wal_path = path
        assert outcomes["wal"] == outcomes["plain"], (
            "WAL-attached run diverged from the no-WAL run on a "
            "value-identical script"
        )
    started = time.perf_counter()
    recovered = PolicyDecisionPoint.recover(wal_path)
    recovery_seconds = time.perf_counter() - started
    assert policy_to_json(recovered.monitor.policy) == final_doc, (
        "recovered policy is not byte-identical to the live run"
    )
    return best, recovery_seconds


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    best, recovery_seconds = _run_servers()
    commands = BATCHES * BATCH_SIZE
    overhead_pct = 100.0 * (best["wal"] / best["plain"] - 1.0)
    _metrics_cache.update({
        "users": SHAPE.n_users,
        "batches": BATCHES,
        "batch_size": BATCH_SIZE,
        "commands": commands,
        "plain_write_ms": round(best["plain"] * 1e3, 2),
        "wal_write_ms": round(best["wal"] * 1e3, 2),
        "wal_overhead_pct": round(overhead_pct, 1),
        "overhead_target_pct": OVERHEAD_TARGET,
        "recovery_ms": round(recovery_seconds * 1e3, 2),
        "replay_commands_per_s": round(commands / recovery_seconds, 1),
        "replay_speedup": round(best["wal"] / recovery_seconds, 2),
    })
    return _metrics_cache


def test_report_recovery():
    metrics = collect_metrics()
    print_table(
        f"policy WAL durability tax and recovery "
        f"({metrics['batches']}x{metrics['batch_size']} commands, "
        f"{metrics['users']} users)",
        ["metric", "value"],
        [
            ("write path, no WAL", f"{metrics['plain_write_ms']:,}ms"),
            ("write path, WAL+fsync", f"{metrics['wal_write_ms']:,}ms"),
            ("durability overhead", f"{metrics['wal_overhead_pct']}%"),
            ("recovery (verify+replay)", f"{metrics['recovery_ms']:,}ms"),
            (
                "replay throughput",
                f"{metrics['replay_commands_per_s']:,} cmd/s",
            ),
            ("replay vs live run", f"{metrics['replay_speedup']:.1f}x"),
        ],
    )
    assert metrics["wal_overhead_pct"] <= OVERHEAD_TARGET, (
        f"WAL append overhead {metrics['wal_overhead_pct']}% exceeds "
        f"the {OVERHEAD_TARGET}% durability-tax ceiling"
    )
    assert metrics["replay_speedup"] >= 1.0, (
        f"recovery replay ({metrics['recovery_ms']}ms) slower than the "
        f"live run it reconstructs ({metrics['wal_write_ms']}ms)"
    )


def test_report_crash_recovery_invariant():
    """Invariant 15 on a reduced campaign: kill at every injection
    point, recover byte-identical, reject every single-record tamper."""
    from repro.workloads.fuzz import fuzz_crash_recovery
    from repro.workloads.generators import PolicyShape

    shape = PolicyShape(n_users=4, n_roles=5, n_admin_privileges=4)
    report = fuzz_crash_recovery(SEED, batches=4, batch_size=5, shape=shape)
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_crash_recovery_invariant()
    test_report_recovery()
    metrics_out = os.environ.get("RECOVERY_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
