"""EX3 — Example 3: non-administrative refinement checking (Def. 6).

Regenerates the three Example-3 verdicts and measures the Definition-6
checker's scaling over growing hospital policies.
"""

from conftest import print_table

from repro.core.refinement import (
    is_refinement,
    refinement_counterexample,
    with_replaced_edge,
    without_edge,
)
from repro.papercases import figures
from repro.workloads.hospital import HospitalShape, hospital_policy


def test_report_example3_verdicts():
    phi = figures.figure1()
    cases = [
        ("remove diana -> staff",
         without_edge(phi, figures.DIANA, figures.STAFF), True),
        ("move diana: staff -> nurse",
         with_replaced_edge(phi, (figures.DIANA, figures.STAFF),
                            (figures.DIANA, figures.NURSE)), True),
        ("move nurse: dbusr1 -> dbusr2",
         with_replaced_edge(phi, (figures.NURSE, figures.DBUSR1),
                            (figures.NURSE, figures.DBUSR2)), False),
    ]
    rows = []
    for label, psi, expected in cases:
        verdict = is_refinement(phi, psi)
        rows.append((
            label,
            "refines" if verdict else "does NOT refine",
            "yes" if verdict == expected else "MISMATCH",
        ))
    print_table(
        "Example 3: edge surgery on Figure 1 "
        "(paper: remove/move-down refine, move-sideways does not)",
        ["surgery", "verdict", "matches paper"],
        rows,
    )
    assert all(row[2] == "yes" for row in rows)


def test_bench_refinement_figure1(benchmark):
    phi = figures.figure1()
    psi = without_edge(phi, figures.DIANA, figures.STAFF)
    assert benchmark(lambda: is_refinement(phi, psi))


def test_bench_counterexample_search(benchmark):
    phi = figures.figure1()
    psi = with_replaced_edge(
        phi, (figures.NURSE, figures.DBUSR1), (figures.NURSE, figures.DBUSR2)
    )
    witness = benchmark(lambda: refinement_counterexample(phi, psi))
    assert witness is not None


def test_bench_refinement_scaling_small(benchmark):
    phi = hospital_policy(HospitalShape(wards=2, nurses_per_ward=4))
    psi = phi.copy()
    assert benchmark(lambda: is_refinement(phi, psi))


def test_bench_refinement_scaling_large(benchmark):
    phi = hospital_policy(HospitalShape(wards=8, nurses_per_ward=10))
    psi = phi.copy()
    assert benchmark(lambda: is_refinement(phi, psi))
