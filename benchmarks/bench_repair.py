"""Lint-to-repair convergence: compiled kernel vs frozenset oracle.

The claim under test: driving repair plans to the re-lint fixed point
on the compiled kernel (``repair_policy(compiled=True)``) beats the
frozenset oracle by >=2x at enterprise scale.  Repair is lint in a
loop — every applied plan pays a full re-lint plus a refinement check
— so the sweep speedup compounds across iterations and the gap is
the honest cost of running ``--fix`` without the bitset kernel.

Two runs over the same seeded-defect workload (enterprise policy plus
closure-implied shortcut edges and a cross-department SSD set, so
several rules have repairs to plan):

* **compiled** — ``repair_policy(compiled=True)``;
* **oracle** — ``repair_policy(compiled=False)``: plan sequences,
  outcomes and the repaired policy must be *identical* (fuzz
  invariant 13 pins this under churn; the bench pins it at scale).

Both runs must converge (``fixpoint=True``) with zero findings
remaining, and the repaired policy must be a Definition-6 refinement
of the workload.

Run under pytest (``pytest benchmarks/bench_repair.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_repair.py``).
``REPAIR_BENCH_DEPARTMENTS`` / ``REPAIR_BENCH_LEVELS`` /
``REPAIR_BENCH_EMPLOYEES`` shrink the workload for CI smoke runs;
``REPAIR_SPEEDUP_TARGET`` adjusts the assertion bar;
``tools/bench_report.py`` sets ``REPAIR_METRICS_OUT`` to collect the
numbers into the ``BENCH_kernel.json`` trajectory.
"""

import json
import os
import time

from conftest import print_table

from repro.analysis.constraints import SsdConstraint
from repro.analysis.repair import repair_policy
from repro.core.entities import Role
from repro.core.refinement import is_refinement
from repro.workloads.enterprise import EnterpriseShape, enterprise_policy

DEPARTMENTS = int(os.environ.get("REPAIR_BENCH_DEPARTMENTS", "5"))
LEVELS = int(os.environ.get("REPAIR_BENCH_LEVELS", "4"))
EMPLOYEES = int(os.environ.get("REPAIR_BENCH_EMPLOYEES", "1000"))
SPEEDUP_TARGET = float(os.environ.get("REPAIR_SPEEDUP_TARGET", "2"))
SHAPE = EnterpriseShape(
    departments=DEPARTMENTS,
    levels_per_department=LEVELS,
    roles_per_level=3,
    employees_per_department=EMPLOYEES,
    delegation_depth=2,
)
SEED = 0

_metrics_cache: dict = {}


def build_workload():
    """The enterprise policy, seeded with repairable defects beyond
    the ones it ships with: closure-implied shortcut edges feed the
    redundant-delegation planner, and a cross-department SSD set
    feeds the constraint planner."""
    policy = enterprise_policy(SHAPE, SEED)
    if SHAPE.levels_per_department >= 3:
        for dept in range(SHAPE.departments):
            for index in range(SHAPE.roles_per_level):
                upper = Role(f"dept{dept}_L0_r{index}")
                lower = Role(f"dept{dept}_L2_r{index}")
                if (
                    upper in policy.graph
                    and lower in policy.graph
                    and policy.reaches(upper, lower)
                    and not policy.has_edge(upper, lower)
                ):
                    policy.add_inheritance(upper, lower)
    constraints = ()
    if SHAPE.departments >= 2:
        constraints = (
            SsdConstraint(
                "cross_department",
                frozenset(
                    Role(f"dept{dept}_L0_r0")
                    for dept in range(SHAPE.departments)
                ),
            ),
        )
    return policy, constraints


def collect_metrics() -> dict:
    """The benchmark's headline numbers (memoized; consumed by the
    report tests below and by tools/bench_report.py)."""
    if _metrics_cache:
        return _metrics_cache
    policy, constraints = build_workload()

    started = time.perf_counter()
    compiled_report = repair_policy(
        policy, compiled=True, constraints=constraints
    )
    compiled_s = time.perf_counter() - started

    started = time.perf_counter()
    oracle_report = repair_policy(
        policy, compiled=False, constraints=constraints
    )
    oracle_s = time.perf_counter() - started

    assert [o.signature() for o in compiled_report.outcomes] == [
        o.signature() for o in oracle_report.outcomes
    ], "compiled and frozenset repair outcomes diverge on the bench"
    assert compiled_report.policy == oracle_report.policy, (
        "compiled and frozenset repaired policies diverge on the bench"
    )
    assert compiled_report.fixpoint and oracle_report.fixpoint, (
        "repair did not converge on the bench workload"
    )
    assert compiled_report.remaining == (), (
        "findings survived repair on the bench workload"
    )
    assert compiled_report.applied, (
        "bench workload produced no applied plans"
    )
    assert is_refinement(policy, compiled_report.policy), (
        "repaired policy is not a refinement of the workload"
    )

    _metrics_cache.update({
        "departments": SHAPE.departments,
        "users": len(list(policy.users())),
        "vertices": len(policy.vertex_set()),
        "initial_findings": len(compiled_report.initial.findings),
        "plans_applied": len(compiled_report.applied),
        "plans_rejected": len(compiled_report.rejected),
        "iterations": compiled_report.iterations,
        "oracle_s": round(oracle_s, 4),
        "compiled_s": round(compiled_s, 4),
        "compiled_speedup": round(oracle_s / compiled_s, 2),
        "speedup_target": SPEEDUP_TARGET,
    })
    return _metrics_cache


def test_report_repair_speedup():
    metrics = collect_metrics()
    print_table(
        f"Repair convergence, compiled vs frozenset "
        f"(enterprise, {metrics['users']} users, "
        f"{metrics['vertices']} vertices, "
        f"{metrics['initial_findings']} findings, "
        f"{metrics['plans_applied']} plans applied)",
        ["implementation", "time", "speedup"],
        [
            (
                "frozenset repair (oracle)",
                f"{metrics['oracle_s'] * 1000:.0f}ms",
                "1.0x",
            ),
            (
                "compiled repair",
                f"{metrics['compiled_s'] * 1000:.0f}ms",
                f"{metrics['compiled_speedup']:.1f}x",
            ),
        ],
    )
    assert metrics["compiled_speedup"] >= SPEEDUP_TARGET, (
        f"compiled repair only {metrics['compiled_speedup']:.1f}x faster "
        f"than the frozenset oracle (target >={SPEEDUP_TARGET}x)"
    )


def test_report_repair_identity():
    """Invariant 13 on a reduced campaign: plan sequences, outcomes
    and repaired policies identical across kernels under churn."""
    from repro.workloads.fuzz import fuzz_repair
    from repro.workloads.generators import PolicyShape

    report = fuzz_repair(
        SEED, steps=14,
        shape=PolicyShape(n_users=4, n_roles=5, n_admin_privileges=4),
    )
    assert report.ok, report.violations[:5]


if __name__ == "__main__":
    test_report_repair_identity()
    test_report_repair_speedup()
    metrics_out = os.environ.get("REPAIR_METRICS_OUT")
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(collect_metrics(), handle, indent=2)
