"""SAFE — footnote 5 and safety analysis.

Regenerates the HRU-vs-refinement distinction (HRU's unordered
collusion analysis equates the lowrole/highrole policies, Definition 7
separates them) and measures the safety checkers: bounded HRU safety,
RBAC admin-reachability, and the refined-mode safety certificate.

Explorations default to the compiled undo-log kernel; run with
``--frozenset`` (script mode) or ``BENCH_FROZENSET=1`` (pytest mode)
to measure the frozenset oracle — both produce identical verdicts, so
the two runs are directly comparable baselines.
"""

import os
import sys

from conftest import print_table

COMPILED = not (
    "--frozenset" in sys.argv or os.environ.get("BENCH_FROZENSET")
)

from repro.analysis.hru import check_safety, encode_rbac_grants
from repro.analysis.safety import can_obtain
from repro.core.admin_refinement import check_admin_refinement, check_mode_safety
from repro.core.entities import Role, User
from repro.core.policy import Policy
from repro.core.privileges import Grant, perm
from repro.papercases import figures

P = perm("read", "secret")
LOWUSER, HIGHUSER = User("lowuser"), User("highuser")
LOWROLE, HIGHROLE, GUARDED = Role("lowrole"), Role("highrole"), Role("g")


def footnote5_policy(holder: Role) -> Policy:
    policy = Policy(
        ua=[(LOWUSER, LOWROLE), (HIGHUSER, HIGHROLE)],
        rh=[(HIGHROLE, LOWROLE)],
        pa=[(holder, Grant(GUARDED, P))],
    )
    policy.add_role(GUARDED)
    return policy


def test_report_footnote5():
    low_policy = footnote5_policy(LOWROLE)
    high_policy = footnote5_policy(HIGHROLE)
    rows = []
    for label, policy in [("lowrole holds grant", low_policy),
                          ("highrole holds grant", high_policy)]:
        matrix, commands = encode_rbac_grants(policy)
        hru = check_safety(matrix, commands, "m", "g", str(P), max_steps=2,
                           compiled=COMPILED)
        rows.append((label, "leaks" if hru.leaks else "safe"))
    forward = check_admin_refinement(low_policy, high_policy, depth=1)
    backward = check_admin_refinement(high_policy, low_policy, depth=1)
    rows.append(("Def. 7: high refines low", "holds" if forward.holds else "no"))
    rows.append(("Def. 7: low refines high", "holds" if backward.holds else "no"))
    print_table(
        "Footnote 5: HRU equates the two policies; refinement orders "
        "them (high-role authority is the safer policy)",
        ["question", "verdict"],
        rows,
    )
    assert rows[0][1] == rows[1][1] == "leaks"
    assert rows[2][1] == "holds" and rows[3][1] == "no"


def test_report_safety_matrix_excerpt():
    policy = figures.figure2()
    questions = [
        (figures.BOB, perm("write", "t3")),
        (figures.BOB, perm("print", "black")),
        (figures.JOE, perm("read", "t1")),
        (figures.JANE, perm("read", "t1")),
    ]
    rows = []
    for user, privilege in questions:
        verdict = can_obtain(policy, user, privilege, depth=2,
                             compiled=COMPILED)
        witness = (
            " ; ".join(str(c) for c in verdict.witness)
            if verdict.witness else "-"
        )
        rows.append((str(user), str(privilege),
                     "reachable" if verdict.reachable else "safe", witness))
    print_table(
        "Safety questions on Figure 2 (2 admin steps, strict mode)",
        ["user", "privilege", "verdict", "witness queue"],
        rows,
    )


def test_report_revocation_candidates():
    """§6 future work: candidate revocation orderings under the
    falsification harness (bounded — supported, not proved)."""
    from repro.analysis.revocation import (
        cross_connective_unsafe,
        dual_grant_ordering,
        falsify_candidate,
        revoke_always_weaker,
    )
    from repro.core.privileges import Revoke
    from repro.workloads.generators import PolicyShape, random_policy

    pool = [
        random_policy(seed, PolicyShape(
            n_users=2, n_roles=3, n_admin_privileges=2, max_nesting=1))
        for seed in range(3)
    ]
    # Seed handcrafted policies: one gives the revocation candidates
    # substitutions to try, the other makes the unsound control
    # observable (its revoke-for-grant swap hands out real privileges).
    crafted = footnote5_policy(HIGHROLE)
    crafted.assign_privilege(LOWROLE, Revoke(LOWUSER, LOWROLE))
    pool.append(crafted)

    jane, bob = User("jane"), User("bob")
    hr = Role("HR2")
    high2, low2 = Role("high2"), Role("low2")
    observable = Policy(
        ua=[(jane, hr)],
        rh=[(high2, low2)],
        pa=[
            (low2, perm("read", "x")),
            (high2, perm("write", "y")),
            (hr, Revoke(bob, low2)),
        ],
    )
    observable.add_user(bob)
    pool.append(observable)

    rows = []
    for name, candidate in [
        ("revoke-always-weaker", revoke_always_weaker),
        ("dual of rule (2)", dual_grant_ordering),
        ("grant-for-revoke (control)", cross_connective_unsafe),
    ]:
        outcome = falsify_candidate(
            candidate, pool, depth=1, name=name,
            max_substitutions_per_policy=6,
        )
        rows.append((
            name,
            outcome.substitutions_tried,
            "survives" if outcome.survived
            else f"refuted ({len(outcome.counterexamples)} cex)",
        ))
    print_table(
        "Candidate revocation orderings vs the bounded Def-7 falsifier "
        "(paper: future work)",
        ["candidate", "substitutions tried", "verdict"],
        rows,
    )
    assert rows[0][2] == "survives"
    assert rows[2][2].startswith("refuted")


def test_bench_hru_safety(benchmark):
    matrix, commands = encode_rbac_grants(footnote5_policy(LOWROLE))
    result = benchmark(
        lambda: check_safety(matrix, commands, "m", "g", str(P), max_steps=2,
                             compiled=COMPILED)
    )
    assert result.leaks


def test_bench_rbac_safety_query(benchmark):
    policy = figures.figure2()
    verdict = benchmark(
        lambda: can_obtain(policy, figures.BOB, perm("write", "t3"), depth=1,
                           compiled=COMPILED)
    )
    assert verdict.reachable


def test_bench_mode_safety_certificate(benchmark):
    policy = footnote5_policy(HIGHROLE)
    result = benchmark(lambda: check_mode_safety(policy, depth=1))
    assert result.holds


if __name__ == "__main__":
    kernel = "compiled" if COMPILED else "frozenset"
    print(f"SAFE reports ({kernel} explorer)")
    test_report_footnote5()
    test_report_safety_matrix_excerpt()
    test_report_revocation_candidates()
