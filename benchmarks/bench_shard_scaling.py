"""Repair and query scaling of the sharded authorization index.

The claim under test: with subjects partitioned across N shards, each
with its own journal cursor, *localized* policy churn (mutations whose
dirty region touches one shard's users) repairs only that shard —
repair work tracks the dirty region, not the population — and the
shared rectangle pool keeps rectangle contents deduplicated across all
subjects holding the same grant.

Three reports:

* ``test_report_localized_churn_scaling`` — a churn trace whose UA
  mutations are confined to users of shard 0 (under every benched
  shard count — the localized users are chosen with
  ``crc32 % 8 == 0``, so they land in shard 0 for N ∈ {2, 4, 8}),
  replayed at N ∈ {1, 2, 8}.  Asserts that only one shard rebuilds
  users and that total repair work is bounded by the dirty users, not
  the population.
* ``test_report_wide_churn_lazy_shards`` — one hierarchy mutation that
  dirties most of the population, followed by queries confined to a
  few subjects: the unsharded index must repair everyone before its
  first answer; shards repair only where queries land.
* ``test_report_rectangle_sharing`` — pool statistics at 5k users:
  rectangles referenced per subject vs. distinct rectangles interned.

Run under pytest (``pytest benchmarks/bench_shard_scaling.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_shard_scaling.py``).
``SHARD_BENCH_USERS`` / ``SHARD_BENCH_MUTATIONS`` shrink the workload
for CI smoke runs.
"""

import os
import time

from conftest import print_table

from repro.core.authz_index import AuthorizationIndex
from repro.core.authz_shard import ShardedAuthorizationIndex, shard_of
from repro.core.entities import Role, User
from repro.workloads.churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    run_churn,
)

USERS = int(os.environ.get("SHARD_BENCH_USERS", "5000"))
MUTATIONS = int(os.environ.get("SHARD_BENCH_MUTATIONS", "60"))
SHAPE = ChurnShape(
    n_users=USERS, n_roles=32, mutations=MUTATIONS, queries_per_mutation=4
)
SEED = 11
SHARD_COUNTS = (1, 2, 8)
#: localized churn targets users hashing to shard 0 under N=8 — which
#: is shard 0 under every divisor of 8 as well.
LOCAL_BUCKETS = 8


def _localized_users() -> list[User]:
    return [
        user
        for user in (User(f"u{i}") for i in range(SHAPE.n_users))
        if shard_of(user, LOCAL_BUCKETS) == 0
    ]


def _build_index(policy, shards: int):
    if shards == 1:
        return AuthorizationIndex(policy)
    return ShardedAuthorizationIndex(policy, shards=shards)


def _shards_repaired(index, baseline: dict) -> int:
    """How many shards rebuilt at least one user since ``baseline``."""
    if isinstance(index, AuthorizationIndex):
        return int(index.users_refreshed > baseline[0])
    return sum(
        shard.users_refreshed > baseline[number]
        for number, shard in enumerate(index.shards)
    )


def _refresh_baseline(index) -> dict:
    if isinstance(index, AuthorizationIndex):
        return {0: index.users_refreshed}
    return {
        number: shard.users_refreshed
        for number, shard in enumerate(index.shards)
    }


def test_report_localized_churn_scaling():
    local = _localized_users()
    # Churn below the top layer: a UA edge to a non-senior role leaves
    # the administrators' rectangle regions untouched, so the dirty
    # region is exactly the churned users — all owned by shard 0.
    per_layer = max(1, SHAPE.n_roles // SHAPE.layers)
    lower_roles = [Role(f"r{i}") for i in range(per_layer, SHAPE.n_roles)]
    trace = churn_trace(
        SEED, SHAPE, mutation_users=local, mutation_roles=lower_roles
    )
    rows = []
    outcomes = {}
    for shards in SHARD_COUNTS:
        policy = churn_policy(SEED, SHAPE)
        index = _build_index(policy, shards)
        baseline = _refresh_baseline(index)
        refreshed_before = (
            index.users_refreshed if shards > 1 else baseline[0]
        )
        started = time.perf_counter()
        stats = run_churn(policy, index, trace)
        elapsed = time.perf_counter() - started
        repaired = _shards_repaired(index, baseline)
        refreshed = index.users_refreshed - refreshed_before
        outcomes[shards] = (stats.decisions, repaired, refreshed)
        rows.append((
            shards,
            f"{elapsed * 1000:.1f}ms",
            refreshed,
            repaired,
            f"{stats.queries / elapsed:,.0f}",
        ))
    print_table(
        f"Localized churn ({SHAPE.n_users} users, {len(local)} churned, "
        f"{SHAPE.mutations} mutations)",
        ["shards", "time", "users refreshed", "shards repaired", "queries/s"],
        rows,
    )
    decisions_1 = outcomes[SHARD_COUNTS[0]][0]
    for shards in SHARD_COUNTS[1:]:
        decisions, repaired, refreshed = outcomes[shards]
        assert decisions == decisions_1, (
            f"sharded ({shards}) decisions diverged from unsharded"
        )
        # Only the shard owning the churned users repaired anything.
        assert repaired == 1, (
            f"{repaired} shards repaired under churn localized to one "
            f"shard (N={shards})"
        )
        # Repair work follows the dirty region, not the population: at
        # most one rebuilt user entry per mutation (plus none for the
        # quiet shards), where a full-rebuild index would have paid
        # ~population per mutation.
        assert refreshed <= SHAPE.mutations, (
            f"repair touched {refreshed} user entries for "
            f"{SHAPE.mutations} localized mutations (N={shards})"
        )


def test_report_wide_churn_lazy_shards():
    """An RH mutation dirties most of the population; queries confined
    to a few subjects should repair only the shards they land on."""
    queried = [User("u1"), User("u3")]
    rows = []
    refreshed_by_count = {}
    for shards in SHARD_COUNTS:
        policy = churn_policy(SEED, SHAPE)
        index = _build_index(policy, shards)
        refreshed_before = index.users_refreshed
        # Re-wire the top of the hierarchy: ancestors of r31 (most of
        # the population's membership paths) are all dirtied.
        policy.add_inheritance(Role("r31"), Role("r0"))
        started = time.perf_counter()
        from repro.core.commands import grant_cmd

        for user in queried:
            index.authorizes(user, grant_cmd(user, User("u2"), Role("r5")))
        elapsed = time.perf_counter() - started
        refreshed = index.users_refreshed - refreshed_before
        refreshed_by_count[shards] = refreshed
        rows.append((shards, f"{elapsed * 1000:.1f}ms", refreshed))
    print_table(
        f"Wide churn, narrow queries ({SHAPE.n_users} users)",
        ["shards", "time to first answers", "users refreshed"],
        rows,
    )
    # The unsharded index repairs every dirty user before answering;
    # shards repair only where the queries landed.
    assert refreshed_by_count[8] * 2 < refreshed_by_count[1], (
        "sharded index repaired almost as much as the unsharded one "
        f"({refreshed_by_count[8]} vs {refreshed_by_count[1]}) despite "
        "queries touching few shards"
    )


def test_report_rectangle_sharing():
    policy = churn_policy(SEED, SHAPE)
    index = ShardedAuthorizationIndex(policy, shards=8)
    stats = index.statistics()
    referenced = stats["rectangles"]
    interned = stats["pool_rectangles"]
    print_table(
        f"Rectangle sharing ({SHAPE.n_users} users, 8 shards)",
        ["rectangles referenced", "distinct interned", "sharing factor"],
        [(
            referenced,
            interned,
            f"{referenced / max(1, interned):.1f}x",
        )],
    )
    # Rectangle contents are per-privilege: the pool must intern far
    # fewer rectangles than subjects reference.
    assert interned < referenced, "rectangle pool deduplicated nothing"
    assert stats["pool_builds"] == interned
    assert stats["pool_hits"] == referenced - interned


def test_report_parallel_refresh():
    """Thread-pool repair across shards after a wide invalidation."""
    rows = []
    for parallel in (False, True):
        policy = churn_policy(SEED, SHAPE)
        index = ShardedAuthorizationIndex(policy, shards=8)
        policy.add_inheritance(Role("r31"), Role("r0"))  # dirty everyone
        started = time.perf_counter()
        index.refresh(parallel=parallel)
        elapsed = time.perf_counter() - started
        rows.append((
            "parallel" if parallel else "serial",
            f"{elapsed * 1000:.1f}ms",
            index.users_refreshed,
        ))
    print_table(
        "Full repair after wide churn (8 shards)",
        ["strategy", "time", "users refreshed"],
        rows,
    )


if __name__ == "__main__":
    test_report_localized_churn_scaling()
    test_report_wide_churn_lazy_shards()
    test_report_rectangle_sharing()
    test_report_parallel_refresh()
