"""EX6 — Example 6: the infinite weaker-privilege set.

Regenerates the paper's divergence demonstration: the forward "naive"
enumeration grows without bound on the Example-6 policy (§4.2 warns a
naive forward search does not necessarily terminate), while the
backward Lemma-1 decision stays cheap at every depth.
"""

from itertools import islice

from conftest import print_table

from repro.core.ordering import OrderingOracle
from repro.core.privileges import Grant
from repro.core.entities import Role
from repro.core.weaker import enumerate_weaker, frontier_sizes, weaker_set
from repro.papercases.examples import example6_policy


def test_report_example6_frontier_growth():
    policy, seed = example6_policy()
    sizes = frontier_sizes(policy, seed, 6)
    strict_sizes = frontier_sizes(policy, seed, 6, strict_rules=True)
    rows = [
        (depth, size, strict)
        for depth, (size, strict) in enumerate(zip(sizes, strict_sizes))
    ]
    print_table(
        "Example 6: |weaker set| by derivation depth "
        "(paper: infinitely many weaker privileges; closed semantics "
        "grows forever, literal rules saturate)",
        ["depth", "closed semantics", "literal Def. 8 rules"],
        rows,
    )
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert strict_sizes[0] == strict_sizes[-1]


def test_report_backward_decision_stays_cheap():
    policy, seed = example6_policy()
    r1 = Role("r1")
    rows = []
    term = seed
    for depth in range(1, 7):
        term = Grant(r1, term)
        oracle = OrderingOracle(policy)
        verdict = oracle.is_weaker(seed, term)
        rows.append((depth, verdict, oracle.stats.reach_checks))
    print_table(
        "Lemma 1 backward decision on the Example-6 chain "
        "(reach checks grow linearly with term depth; never diverges)",
        ["term depth", "weaker?", "reach checks"],
        rows,
    )
    assert all(row[1] for row in rows)


def test_bench_forward_enumeration_100_terms(benchmark):
    policy, seed = example6_policy()

    def run():
        return list(islice(enumerate_weaker(policy, seed), 100))

    terms = benchmark(run)
    assert len(terms) == 100


def test_bench_weaker_set_depth3(benchmark):
    policy, seed = example6_policy()
    result = benchmark(lambda: weaker_set(policy, seed, 3))
    assert len(result) > 1


def test_bench_backward_decision_deep_term(benchmark):
    policy, seed = example6_policy()
    r1 = Role("r1")
    term = seed
    for _ in range(8):
        term = Grant(r1, term)

    def run():
        return OrderingOracle(policy).is_weaker(seed, term)

    assert benchmark(run)
