"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index.  Two kinds of artifacts are produced:

* pytest-benchmark timings (``pytest benchmarks/ --benchmark-only``);
* qualitative result tables printed by the ``test_report_*`` items —
  these are the "rows/series" the paper's examples and claims
  correspond to, and they are what EXPERIMENTS.md records.
"""

import pytest


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render a small fixed-width table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n--- {title} ---")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
