#!/usr/bin/env python3
"""Enterprise-scale delegation: nested administrative privileges over
a multi-department organization, with the flexibility/safety numbers
of the baseline comparison.

Run:  python examples/enterprise_delegation.py
"""

import time

from repro import Grant, Mode, OrderingOracle, Role, User, grant_cmd, run_queue
from repro.analysis.compare import flexibility_report
from repro.workloads.enterprise import (
    EnterpriseShape,
    delegation_targets,
    enterprise_policy,
)


def main() -> None:
    shape = EnterpriseShape(
        departments=4, levels_per_department=4, roles_per_level=3,
        employees_per_department=12, delegation_depth=2,
    )
    policy = enterprise_policy(shape, seed=7)
    print(f"enterprise policy: {policy}")
    print(f"longest role chain: {policy.longest_role_chain()}")

    # ------------------------------------------------------------------
    # 1. Delegation chains: the CISO unrolls a nested privilege.
    # ------------------------------------------------------------------
    ciso = User("ciso_admin")
    targets = delegation_targets(policy)
    print(f"\nnested delegation privileges held by the CISO: {len(targets)}")
    holder, nested = targets[0]
    print(f"example: {nested}")

    # Unroll it one level: give the department head the inner privilege.
    inner = nested.target
    queue = [grant_cmd(ciso, nested.source, inner)]
    final, records = run_queue(policy, queue, Mode.STRICT)
    print(f"CISO delegates inner privilege to {nested.source}: "
          f"{'OK' if records[0].executed else 'denied'}")

    # ------------------------------------------------------------------
    # 2. The ordering at scale: decision latency on nested terms.
    # ------------------------------------------------------------------
    oracle = OrderingOracle(policy)
    dept_head = Role("dept0_head")
    newcomer = User("dept0_newcomer")
    deep_target = Role(f"dept0_L{shape.levels_per_department - 1}_r0")
    top_target = Role("dept0_L0_r0")

    queries = [
        (Grant(newcomer, top_target), Grant(newcomer, deep_target)),
        (nested, Grant(dept_head, Grant(newcomer, deep_target))),
    ]
    start = time.perf_counter()
    repeats = 200
    for _ in range(repeats):
        for stronger, weaker in queries:
            oracle.is_weaker(stronger, weaker)
    elapsed = (time.perf_counter() - start) / (repeats * len(queries))
    print(f"\nordering decision latency (policy with "
          f"{sum(1 for _ in policy.roles())} roles): {elapsed * 1e6:.1f} us/query")
    print(f"reachability checks performed: {oracle.stats.reach_checks}, "
          f"memo hits: {oracle.stats.memo_hits}")

    # ------------------------------------------------------------------
    # 3. Flexibility vs the baselines.
    # ------------------------------------------------------------------
    small = enterprise_policy(
        EnterpriseShape(departments=2, employees_per_department=4), seed=7
    )
    print("\nflexibility report (2-department slice):")
    for label, value in flexibility_report(small).as_rows():
        print(f"  {label:36} {value}")


if __name__ == "__main__":
    main()
