#!/usr/bin/env python3
"""Regenerate the paper's figures as artifacts: Graphviz DOT, the
policy document format, and JSON — into ./artifacts/.

Run:  python examples/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro.core.grammar import format_policy_source
from repro.core.serialization import policy_to_json
from repro.graph import policy_to_dot
from repro.papercases import figures


def main() -> None:
    output = Path(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
    output.mkdir(parents=True, exist_ok=True)

    artifacts = {
        "figure1": figures.figure1(),
        "figure2": figures.figure2(),
        "figure3_strict": figures.figure3_after_strict_assignment(),
        "figure3_refined": figures.figure3_after_refined_assignment(),
    }
    for name, policy in artifacts.items():
        (output / f"{name}.dot").write_text(policy_to_dot(policy, name=name))
        (output / f"{name}.policy").write_text(format_policy_source(policy))
        (output / f"{name}.json").write_text(policy_to_json(policy) + "\n")
        print(f"wrote {output / name}.{{dot,policy,json}}  ({policy})")

    print("\nrender with e.g.:  dot -Tpdf artifacts/figure2.dot -o figure2.pdf")


if __name__ == "__main__":
    main()
