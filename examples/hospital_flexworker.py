#!/usr/bin/env python3
"""The paper's running example (Examples 1, 2, 4, 5): the hospital,
the flexworker Bob, and the privilege ordering in action — on a live
RBAC-guarded database.

Run:  python examples/hospital_flexworker.py
"""

from repro import AccessDenied, Grant, Mode, explain_weaker, grant_cmd
from repro.dbms import hospital_database
from repro.papercases import figures


def separator(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    separator("Example 1: basic RBAC (Figure 1)")
    db = hospital_database(mode=Mode.STRICT)
    diana = db.login(figures.DIANA, figures.NURSE)
    rows = db.select(diana, "t1")
    print(f"diana (nurse) reads t1: {len(rows)} rows")
    try:
        db.insert(diana, "t3", {"patient": "p", "note": "n", "author": "d"})
    except AccessDenied as denied:
        print(f"diana (nurse) writing t3: DENIED ({denied.detail})")

    separator("Example 2: delegated administration (Figure 2)")
    record = db.administer(grant_cmd(figures.JANE, figures.BOB, figures.STAFF))
    print(f"jane appoints bob to staff: {'OK' if record.executed else 'denied'}")
    record = db.administer(grant_cmd(figures.DIANA, figures.JOE, figures.NURSE))
    print(f"diana appoints joe to nurse: {'OK' if record.executed else 'denied (not HR)'}")

    separator("Example 4: the flexworker problem")
    print("Bob only needs dbusr2 privileges (DB maintenance).")
    strict_db = hospital_database(mode=Mode.STRICT)
    record = strict_db.administer(
        grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)
    )
    print(f"STRICT monitor: jane assigns bob directly to dbusr2 -> "
          f"{'OK' if record.executed else 'DENIED (privilege is grant(bob, staff))'}")
    print("So under prior models Jane must over-grant (bob -> staff) and")
    print("*hope* Bob activates only dbusr2.")

    refined_db = hospital_database(mode=Mode.REFINED)
    record = refined_db.administer(
        grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)
    )
    print(f"REFINED monitor: the same command -> "
          f"{'OK' if record.executed else 'denied'}"
          f" (implicitly authorized by {record.authorized_by})")

    bob = refined_db.login(figures.BOB, figures.DBUSR2)
    print(f"bob reads t2: {len(refined_db.select(bob, 't2'))} rows")
    try:
        refined_db.print_document(bob, "black", "prescription")
    except AccessDenied:
        print("bob printing prescriptions: DENIED (no medical privileges!)")

    separator("Example 5: the decision procedure, step by step")
    policy = figures.figure2()
    print("Can Jane assign Bob to dbusr2?  Check "
          "grant(bob, staff) ~> grant(bob, dbusr2):")
    print(explain_weaker(
        policy,
        Grant(figures.BOB, figures.STAFF),
        Grant(figures.BOB, figures.DBUSR2),
    ).format())

    print("\nNested case: grant(staff, grant(bob, staff)) ~> "
          "grant(staff, grant(bob, dbusr2)):")
    print(explain_weaker(
        policy,
        Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF)),
        Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2)),
    ).format())

    print("\nNegative case (edge staff->dbusr2 removed):")
    broken = policy.copy()
    broken.remove_edge(figures.STAFF, figures.DBUSR2)
    derivation = explain_weaker(
        broken,
        Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF)),
        Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2)),
    )
    print(f"derivation: {derivation}  (the relation does not hold)")

    separator("Audit trail (refined monitor)")
    for entry in refined_db.audit.entries[-6:]:
        print(f"  {entry}")


if __name__ == "__main__":
    main()
