#!/usr/bin/env python3
"""Policy evolution under review: diffs, separation-of-duty
constraints, and SQL queries against the guarded hospital database.

A security officer's workflow: propose a change, diff it against the
running policy, classify the direction (refinement / coarsening),
enforce SSD during administration, and watch the effect at the SQL
layer.

Run:  python examples/policy_evolution.py
"""

from repro import Grant, Mode, grant_cmd
from repro.analysis.constraints import ConstrainedMonitor, SsdConstraint
from repro.core.diff import diff_policies
from repro.core.refinement import weaken_assignment
from repro.dbms.engine import hospital_database
from repro.dbms.sql import execute_sql
from repro.papercases import figures


def separator(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    running = figures.figure2()

    separator("Change 1: weaken HR's privilege (Theorem 1)")
    proposal = weaken_assignment(
        running, figures.HR,
        Grant(figures.BOB, figures.STAFF),
        Grant(figures.BOB, figures.DBUSR2),
    )
    diff = diff_policies(running, proposal)
    print(diff.summary())
    print("-> safe to deploy: the change is a refinement "
          "(Theorem 1 guarantees it, the diff confirms it)")

    separator("Change 2: a coarsening is flagged")
    risky = running.copy()
    risky.assign_user(figures.BOB, figures.STAFF)
    diff = diff_policies(running, risky)
    print(diff.summary())
    print("-> requires sign-off: bob gains privileges")

    separator("Separation of duty during administration")
    # Extension beyond the paper: nurses must not also be DB users
    # for ward integrity (a made-up SSD pair on the figure's roles).
    ssd = SsdConstraint(
        "nurse-vs-dbadmin", frozenset({figures.NURSE, figures.DBUSR3})
    )
    monitor = ConstrainedMonitor(
        figures.figure2(), mode=Mode.REFINED, ssd=[ssd]
    )
    first = monitor.submit(grant_cmd(figures.JANE, figures.JOE, figures.NURSE))
    print(f"jane -> joe to nurse: "
          f"{'executed' if first.executed else 'blocked'}")
    # Now a (hypothetical) attempt to also give joe dbusr3 membership
    # would violate SSD; grant the privilege to HR first so the only
    # obstacle is the constraint.
    monitor.policy.assign_privilege(
        figures.HR, Grant(figures.JOE, figures.DBUSR3)
    )
    second = monitor.submit(grant_cmd(figures.JANE, figures.JOE, figures.DBUSR3))
    print(f"jane -> joe to dbusr3: "
          f"{'executed' if second.executed else 'blocked by SSD'}")

    separator("The change at the SQL layer")
    db = hospital_database(mode=Mode.REFINED)
    db.administer(grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2))
    bob = db.login(figures.BOB, figures.DBUSR2)
    result = execute_sql(
        db, bob, "SELECT patient, status FROM t1 WHERE status = 'critical'"
    )
    print("bob> SELECT patient, status FROM t1 WHERE status = 'critical'")
    for row in result.rows:
        print(f"     {row}")
    result = execute_sql(
        db, bob,
        "INSERT INTO t3 (patient, note, author) "
        "VALUES ('p-002', 'records migrated', 'bob')",
    )
    print(f"bob> INSERT INTO t3 ... -> {result.affected} row")
    try:
        execute_sql(db, bob, "SELECT * FROM t3")
    except Exception as denied:
        print(f"bob> SELECT * FROM t3 -> DENIED ({denied})")

    separator("Audit trail excerpt")
    for entry in db.audit.entries[-5:]:
        print(f"  {entry}")


if __name__ == "__main__":
    main()
