#!/usr/bin/env python3
"""Quickstart: build a policy, check accesses, delegate, and use the
privilege ordering.

Run:  python examples/quickstart.py
"""

import asyncio

from repro import (
    Mode,
    Policy,
    ReferenceMonitor,
    Role,
    User,
    explain_weaker,
    grant,
    grant_cmd,
    perm,
)
from repro.serve import PolicyDecisionPoint


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a policy: a small clinic.
    # ------------------------------------------------------------------
    dana, sam = User("dana"), User("sam")
    doctor, nurse, clerk, it_admin = (
        Role("doctor"), Role("nurse"), Role("clerk"), Role("it_admin")
    )
    policy = Policy(
        ua=[(dana, doctor), (sam, it_admin)],
        rh=[(doctor, nurse), (nurse, clerk)],
        pa=[
            (clerk, perm("read", "schedule")),
            (nurse, perm("read", "charts")),
            (doctor, perm("write", "prescriptions")),
            # sam (IT) may appoint dana... to the doctor role:
            (it_admin, grant(dana, doctor)),
        ],
    )
    print("policy:", policy)

    # ------------------------------------------------------------------
    # 2. Sessions and access checks (least privilege).
    # ------------------------------------------------------------------
    monitor = ReferenceMonitor(policy, mode=Mode.REFINED)
    session = monitor.create_session(dana)
    monitor.add_active_role(session, nurse)  # dana activates ONLY nurse
    print("dana (as nurse) reads charts:",
          monitor.check_access(session, "read", "charts"))
    print("dana (as nurse) writes prescriptions:",
          monitor.check_access(session, "write", "prescriptions"))

    # ------------------------------------------------------------------
    # 3. Administration with the privilege ordering (the paper's §4.1).
    # ------------------------------------------------------------------
    # sam holds grant(dana, doctor).  The ordering implies he may also
    # perform the *safer* operation of assigning dana to clerk only:
    record = monitor.submit(grant_cmd(sam, dana, clerk))
    print("sam assigns dana to clerk:", "executed" if record.executed else "denied",
          "(implicit)" if record.implicit else "(exact)")

    # Why was that allowed?  Ask for the derivation:
    derivation = explain_weaker(
        monitor.policy, grant(dana, doctor), grant(dana, clerk)
    )
    print("derivation:")
    print(derivation.format())

    # ------------------------------------------------------------------
    # 4. The audit trail shows every decision.
    # ------------------------------------------------------------------
    print("audit trail:")
    for entry in monitor.audit_trail:
        verdict = "ALLOW" if entry.allowed else "DENY"
        print(f"  [{verdict}] {entry.subject}: {entry.detail}")

    # ------------------------------------------------------------------
    # 5. Serve decisions asynchronously: micro-batched writes,
    #    lock-free cached reads against a published snapshot.
    # ------------------------------------------------------------------
    async def serve() -> None:
        async with PolicyDecisionPoint(policy=policy) as pdp:
            first = await pdp.check(sam, grant(dana, doctor))
            again = await pdp.check(sam, grant(dana, doctor))
            assert first.allowed and again.cached
            record = await pdp.submit(grant_cmd(sam, dana, nurse))
            assert record.executed and pdp.version > first.version
            stats = pdp.statistics()
            print(f"pdp served {stats['decisions']} decisions, "
                  f"{stats['cache']['hits']} from cache")

    asyncio.run(serve())


if __name__ == "__main__":
    main()
