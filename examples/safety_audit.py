#!/usr/bin/env python3
"""Safety auditing: refinement checks, bounded Definition-7 model
checking, admin-reachability, and the HRU comparison of footnote 5.

Run:  python examples/safety_audit.py
"""

from repro import (
    Grant,
    Mode,
    check_admin_refinement,
    grant,
    is_refinement,
    perm,
    weaken_assignment,
)
from repro.analysis.hru import check_safety, encode_rbac_grants
from repro.analysis.reachability import newly_obtainable_pairs
from repro.analysis.safety import can_obtain
from repro.core.admin_refinement import check_mode_safety
from repro.core.entities import Role, User
from repro.core.policy import Policy
from repro.papercases import figures


def main() -> None:
    phi = figures.figure2()

    # ------------------------------------------------------------------
    # 1. What can administration make obtainable?
    # ------------------------------------------------------------------
    surface = newly_obtainable_pairs(phi, depth=2)
    print(f"administrative surface of Figure 2 (2 steps): "
          f"{len(surface)} new (subject, privilege) pairs")
    bob_pairs = sorted(str(p) for s, p in surface if s == figures.BOB)
    print(f"  obtainable by bob: {bob_pairs}")

    # ------------------------------------------------------------------
    # 2. A pointed safety question, with a witness.
    # ------------------------------------------------------------------
    verdict = can_obtain(phi, figures.BOB, perm("print", "black"), depth=2)
    print(f"\ncan bob ever print prescriptions? {verdict.reachable}")
    if verdict.witness:
        for command in verdict.witness:
            print(f"  witness: {command}")

    # ------------------------------------------------------------------
    # 3. Theorem 1 verified on this policy.
    # ------------------------------------------------------------------
    psi = weaken_assignment(
        phi, figures.HR,
        Grant(figures.BOB, figures.STAFF),
        Grant(figures.BOB, figures.DBUSR2),
    )
    result = check_admin_refinement(phi, psi, depth=2)
    print(f"\nTheorem 1 weakening checked to depth {result.depth}: "
          f"holds={result.holds} "
          f"({result.obligations_checked} obligations)")

    # A strengthening is caught:
    low_admin = Policy(
        ua=[(User("j"), Role("HR2"))],
        rh=[(Role("big"), Role("small"))],
        pa=[(Role("small"), perm("read", "x")),
            (Role("big"), perm("write", "y")),
            (Role("HR2"), grant(User("b"), Role("small")))],
    )
    strengthened = low_admin.copy()
    strengthened.remove_edge(Role("HR2"), grant(User("b"), Role("small")))
    strengthened.assign_privilege(Role("HR2"), grant(User("b"), Role("big")))
    refuted = check_admin_refinement(low_admin, strengthened, depth=1)
    print(f"strengthening refuted: holds={refuted.holds}, counterexample:")
    for command in refuted.counterexample or ():
        print(f"  {command}")

    # ------------------------------------------------------------------
    # 4. Refined mode is safe relative to strict mode.
    # ------------------------------------------------------------------
    mode_safety = check_mode_safety(phi, depth=1)
    print(f"\nrefined-monitor safety (depth {mode_safety.depth}): "
          f"holds={mode_safety.holds}")

    # ------------------------------------------------------------------
    # 5. Footnote 5: HRU cannot tell low-role from high-role authority.
    # ------------------------------------------------------------------
    print("\nfootnote 5: HRU vs Definition 7")
    P = perm("read", "secret")
    low_user, high_user = User("lowuser"), User("highuser")
    low_role, high_role, guarded = Role("lowrole"), Role("highrole"), Role("g")

    def build(holder):
        policy = Policy(
            ua=[(low_user, low_role), (high_user, high_role)],
            rh=[(high_role, low_role)],
            pa=[(holder, grant(guarded, P))],
        )
        policy.add_role(guarded)
        return policy

    for name, holder in [("low-role", low_role), ("high-role", high_role)]:
        matrix, commands = encode_rbac_grants(build(holder))
        leak = check_safety(matrix, commands, "m", "g", str(P), max_steps=2)
        print(f"  HRU leak verdict ({name} policy): {leak.leaks}")
    fwd = check_admin_refinement(build(low_role), build(high_role), depth=1)
    rev = check_admin_refinement(build(high_role), build(low_role), depth=1)
    print(f"  Definition 7: high-role refines low-role: {fwd.holds}; "
          f"converse: {rev.holds}")
    print("  -> HRU sees no difference; refinement does.")


if __name__ == "__main__":
    main()
