"""repro — a reproduction of "Refinement for Administrative Policies"
(Dekker & Etalle, 2007).

The library implements:

* the General Hierarchical RBAC model with administrative privileges
  (the paper's Definitions 1–5) and an ANSI-style reference monitor;
* the privilege ordering Ã and its tractable decision procedure
  (Definition 8, Lemma 1) with derivation traces;
* non-administrative and administrative refinement (Definitions 6–7),
  the Theorem-1 weakening transformation, and a bounded Definition-7
  model checker;
* baselines from the paper's related-work section (ARBAC97,
  administrative scope, administrative domains, HRU) and analysis
  tooling (safety/reachability, the Remark-2 conjecture, experimental
  revocation orderings);
* a small RBAC-guarded in-memory DBMS matching the paper's hospital
  scenario, workload generators, and the paper's figures/examples as
  executable artifacts.

Quickstart::

    from repro import Mode, ReferenceMonitor, grant_cmd
    from repro.papercases import figures

    policy = figures.figure2()
    monitor = ReferenceMonitor(policy, mode=Mode.REFINED)
    record = monitor.submit(grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2))
    assert record.executed and record.implicit   # Example 4's punchline
"""

from .core import (
    AccessDecision,
    Action,
    AdminPrivilege,
    AdminRefinementResult,
    Command,
    CommandAction,
    Derivation,
    ExecutionRecord,
    Grant,
    Mode,
    Obj,
    OrderingOracle,
    Policy,
    Privilege,
    ReferenceMonitor,
    RefinementWitness,
    Revoke,
    Role,
    Session,
    Subject,
    User,
    UserPrivilege,
    Vocabulary,
    candidate_commands,
    check_admin_refinement,
    effective_commands,
    enumerate_weaker,
    enumerate_weakenings,
    explain_weaker,
    format_policy_source,
    format_privilege,
    grant,
    grant_cmd,
    granted_pairs,
    implicitly_authorized,
    is_privilege,
    is_refinement,
    is_weaker,
    parse_policy_source,
    parse_privilege,
    perm,
    privilege_depth,
    refinement_counterexample,
    refines_strictly,
    remark2_bound,
    revoke,
    revoke_cmd,
    role,
    roles,
    run_queue,
    step,
    theorem1_step_obligation,
    user,
    users,
    weaken_assignment,
    weaker_set,
    without_edge,
    with_replaced_edge,
)
from .errors import (
    AccessDenied,
    AnalysisError,
    CommandError,
    EntityError,
    GrammarError,
    PolicyError,
    PrivilegeError,
    ReproError,
    SerializationError,
    SessionError,
    TableError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Action", "Obj", "Role", "Subject", "User",
    "role", "roles", "user", "users",
    "AdminPrivilege", "Grant", "Privilege", "Revoke", "UserPrivilege",
    "grant", "is_privilege", "perm", "privilege_depth", "revoke",
    "Policy", "Vocabulary",
    "format_policy_source", "format_privilege",
    "parse_policy_source", "parse_privilege",
    # ordering & refinement
    "OrderingOracle", "Derivation",
    "explain_weaker", "implicitly_authorized", "is_weaker",
    "enumerate_weaker", "remark2_bound", "weaker_set",
    "RefinementWitness", "enumerate_weakenings", "granted_pairs",
    "is_refinement", "refinement_counterexample", "refines_strictly",
    "weaken_assignment", "without_edge", "with_replaced_edge",
    "AdminRefinementResult", "check_admin_refinement",
    "theorem1_step_obligation",
    # transition system & monitor
    "Command", "CommandAction", "ExecutionRecord", "Mode",
    "candidate_commands", "effective_commands",
    "grant_cmd", "revoke_cmd", "run_queue", "step",
    "AccessDecision", "ReferenceMonitor", "Session",
    # errors
    "AccessDenied", "AnalysisError", "CommandError", "EntityError",
    "GrammarError", "PolicyError", "PrivilegeError", "ReproError",
    "SerializationError", "SessionError", "TableError",
]
