"""Analyses and related-work baselines.

Implements the models the paper compares against (§5 and footnote 5)
— ARBAC97, administrative scope, administrative domains, HRU — plus
safety/reachability analysis, the cross-model comparison harness, the
Remark-2 conjecture tester, and the experimental revocation orderings
of the paper's future-work section.
"""

from .arbac import (
    ArbacSystem,
    CanAssign,
    CanRevoke,
    Condition,
    Literal,
    RoleRange,
)
from .scope import (
    administrative_scope,
    is_within_scope,
    juniors,
    may_assign_under_scope,
    scope_administrators,
    seniors,
    strict_administrative_scope,
)
from .domains import Domain, DomainPartition
from .hru import (
    AccessMatrix,
    HruCommand,
    HruOp,
    SafetyResult,
    check_safety,
    encode_rbac_grants,
    enter_self_markers,
)
from .reachability import (
    ReachableState,
    newly_obtainable_pairs,
    obtainable_pairs,
    reachable_policies,
)
from .audit import AuditReport, audit_matrix
from .safety import SafetyVerdict, can_obtain, safety_matrix
from .compare import (
    FlexibilityReport,
    SafetyComparison,
    arbac_from_grants,
    count_arbac_operations,
    count_grant_commands,
    count_model_operations,
    count_scope_operations,
    flexibility_report,
    safety_comparison,
)
from .conjecture import ConjectureReport, check_conjecture_instance
from .constraints import (
    ConstrainedMonitor,
    DsdConstraint,
    SsdConstraint,
    weakening_preserves_ssd,
)
from .lint import (
    Finding,
    LintReport,
    LintRule,
    RULES,
    Severity,
    lint_policy,
)
from .repair import (
    PLANNERS,
    RepairAction,
    RepairOutcome,
    RepairPlan,
    RepairReport,
    apply_plan,
    plan_repair,
    repair_policy,
)
from .minimization import (
    LoweringOpportunity,
    canonicalize,
    lowering_opportunities,
    redundant_edges,
)
from .expressiveness import (
    CascadedDelegation,
    EncodingCost,
    encode_as_nested_grant,
    encode_as_pbdm_roles,
    encoding_cost,
    encodings_equi_obtainable,
    run_nested_cascade,
    run_pbdm_cascade,
)
from .revocation import (
    CandidateOrdering,
    FalsificationOutcome,
    candidate_substitutions,
    cross_connective_unsafe,
    dual_grant_ordering,
    falsify_candidate,
    revoke_always_weaker,
)

__all__ = [
    # arbac
    "ArbacSystem", "CanAssign", "CanRevoke", "Condition", "Literal", "RoleRange",
    # scope
    "administrative_scope", "is_within_scope", "juniors",
    "may_assign_under_scope", "scope_administrators", "seniors",
    "strict_administrative_scope",
    # domains
    "Domain", "DomainPartition",
    # hru
    "AccessMatrix", "HruCommand", "HruOp", "SafetyResult",
    "check_safety", "encode_rbac_grants", "enter_self_markers",
    # reachability & safety
    "ReachableState", "newly_obtainable_pairs", "obtainable_pairs",
    "reachable_policies", "SafetyVerdict", "can_obtain", "safety_matrix",
    # audit
    "AuditReport", "audit_matrix",
    # compare
    "FlexibilityReport", "SafetyComparison", "arbac_from_grants",
    "count_arbac_operations", "count_grant_commands",
    "count_model_operations", "count_scope_operations",
    "flexibility_report", "safety_comparison",
    # constraints extension
    "ConstrainedMonitor", "DsdConstraint", "SsdConstraint",
    "weakening_preserves_ssd",
    # lint
    "Finding", "LintReport", "LintRule", "RULES", "Severity", "lint_policy",
    # repair
    "PLANNERS", "RepairAction", "RepairOutcome", "RepairPlan",
    "RepairReport", "apply_plan", "plan_repair", "repair_policy",
    # minimization & expressiveness
    "LoweringOpportunity", "canonicalize", "lowering_opportunities",
    "redundant_edges",
    "CascadedDelegation", "EncodingCost", "encode_as_nested_grant",
    "encode_as_pbdm_roles", "encoding_cost", "encodings_equi_obtainable",
    "run_nested_cascade", "run_pbdm_cascade",
    # conjecture & revocation
    "ConjectureReport", "check_conjecture_instance",
    "CandidateOrdering", "FalsificationOutcome", "candidate_substitutions",
    "cross_connective_unsafe", "dual_grant_ordering", "falsify_candidate",
    "revoke_always_weaker",
]
