"""ARBAC97-style baseline (Sandhu, Bhamidipati & Munawer [9]).

The paper positions its model against ARBAC97, where administrative
privileges are expressed as ``can_assign``/``can_revoke`` rules over
*role ranges* instead of being first-class privileges in the policy
graph.  This module implements the URA97 component (user-role
administration, the part the paper's examples exercise):

* a **role range** ``[lower, upper]`` denotes the roles between two
  endpoints of the hierarchy (inclusive or exclusive at either end);
* a **prerequisite condition** is a conjunction of positive/negative
  role-membership literals over the target user;
* ``can_assign(admin_role, condition, range)`` permits members of
  ``admin_role`` to assign users satisfying ``condition`` to roles in
  ``range``; ``can_revoke(admin_role, range)`` permits revocation.

The baseline is deliberately faithful to its source rather than to the
paper's model: ranges are *static role intervals*, there is no nesting
(no privileges about privileges), and no ordering between rules —
which is exactly the comparison §5 draws.  The
:mod:`repro.analysis.compare` harness translates the paper's hospital
policy into ARBAC rules and counts permitted operations under both
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.entities import Role, User
from ..core.policy import Policy


@dataclass(frozen=True)
class RoleRange:
    """A range ``[lower, upper]`` in the role hierarchy.

    ``upper`` must be senior to (reach) ``lower``; a role ``r`` is in
    the range iff ``upper →φ r`` and ``r →φ lower``, with the usual
    open/closed endpoint variants written ``(lower, upper)`` etc. in
    ARBAC97 notation.
    """

    lower: Role
    upper: Role
    lower_inclusive: bool = True
    upper_inclusive: bool = True

    def contains(self, role: Role, policy: Policy) -> bool:
        if not (policy.reaches(self.upper, role) and policy.reaches(role, self.lower)):
            return False
        if role == self.lower and not self.lower_inclusive:
            return False
        if role == self.upper and not self.upper_inclusive:
            return False
        return True

    def roles(self, policy: Policy) -> frozenset[Role]:
        return frozenset(
            role for role in policy.roles() if self.contains(role, policy)
        )

    def __str__(self) -> str:
        left = "[" if self.lower_inclusive else "("
        right = "]" if self.upper_inclusive else ")"
        return f"{left}{self.lower}, {self.upper}{right}"


@dataclass(frozen=True)
class Literal:
    """One conjunct of a prerequisite condition: ``role`` or ``¬role``."""

    role: Role
    positive: bool = True

    def satisfied_by(self, user: User, policy: Policy) -> bool:
        member = policy.reaches(user, self.role)
        return member if self.positive else not member

    def __str__(self) -> str:
        return str(self.role) if self.positive else f"not {self.role}"


@dataclass(frozen=True)
class Condition:
    """A conjunction of literals; the empty conjunction is ``true``."""

    literals: tuple[Literal, ...] = ()

    @classmethod
    def true(cls) -> "Condition":
        return cls(())

    @classmethod
    def member_of(cls, *roles: Role) -> "Condition":
        return cls(tuple(Literal(role) for role in roles))

    def satisfied_by(self, user: User, policy: Policy) -> bool:
        return all(lit.satisfied_by(user, policy) for lit in self.literals)

    def __str__(self) -> str:
        if not self.literals:
            return "true"
        return " and ".join(str(lit) for lit in self.literals)


@dataclass(frozen=True)
class CanAssign:
    """``can_assign(admin_role, condition, range)`` of URA97."""

    admin_role: Role
    condition: Condition
    role_range: RoleRange


@dataclass(frozen=True)
class CanRevoke:
    """``can_revoke(admin_role, range)`` of URA97."""

    admin_role: Role
    role_range: RoleRange


@dataclass
class ArbacSystem:
    """A URA97 administration layer over an RBAC policy.

    The policy supplies the role hierarchy and user memberships; the
    rules supply the administrative authority.  Mutations go through
    :meth:`assign` / :meth:`revoke`, which enforce the rules.
    """

    policy: Policy
    can_assign_rules: list[CanAssign] = field(default_factory=list)
    can_revoke_rules: list[CanRevoke] = field(default_factory=list)

    def may_assign(self, admin: User, target: User, role: Role) -> bool:
        return any(
            self.policy.reaches(admin, rule.admin_role)
            and rule.condition.satisfied_by(target, self.policy)
            and rule.role_range.contains(role, self.policy)
            for rule in self.can_assign_rules
        )

    def may_revoke(self, admin: User, target: User, role: Role) -> bool:
        return any(
            self.policy.reaches(admin, rule.admin_role)
            and rule.role_range.contains(role, self.policy)
            for rule in self.can_revoke_rules
        )

    def assign(self, admin: User, target: User, role: Role) -> bool:
        """Perform the assignment if permitted; returns success."""
        if not self.may_assign(admin, target, role):
            return False
        self.policy.assign_user(target, role)
        return True

    def revoke(self, admin: User, target: User, role: Role) -> bool:
        if not self.may_revoke(admin, target, role):
            return False
        self.policy.remove_edge(target, role)
        return True

    def permitted_assignments(
        self, admins: Iterable[User] | None = None
    ) -> Iterator[tuple[User, User, Role]]:
        """Every (admin, target, role) assignment currently permitted —
        the flexibility metric used by the baseline comparison."""
        if admins is None:
            admins = sorted(self.policy.users(), key=str)
        targets = sorted(self.policy.users(), key=str)
        roles = sorted(self.policy.roles(), key=str)
        for admin in admins:
            for target in targets:
                for role in roles:
                    if self.may_assign(admin, target, role):
                        yield (admin, target, role)
