"""Whole-population authority audits on the batch kernel.

``safety_matrix`` answers the *dynamic* question (what could a user
obtain if administrators act); the audit matrix answers the *static*
companion auditors actually run first: which users hold which
privileges **right now**, for the whole population at once.  Naively
that is ``U × P`` reachability probes; on the batch kernel it is one
:meth:`~repro.core.authz_index.AuthorizationIndex.held_privileges_bulk`
sweep — each distinct authority profile (held-mask) is decoded once,
so populations with heavy role sharing audit in close to ``O(U)``.

``audit_matrix`` is the library entry point (the ``repro audit-matrix``
CLI subcommand renders it); ``compiled=False`` runs the same audit on
the frozenset oracle and is pinned identical by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.authz_index import AuthorizationIndex
from ..core.authz_shard import ShardedAuthorizationIndex
from ..core.entities import User
from ..core.policy import Policy
from ..core.privileges import Grant, Privilege, Revoke


@dataclass(frozen=True)
class AuditReport:
    """The population-wide authority table at one policy version.

    ``held`` maps every audited user to their full held privilege set;
    ``rows`` restricts it to the audited ``privileges`` columns (the
    matrix the CLI renders).  ``version`` is the policy version the
    audit saw — the whole table is consistent at that version because
    the bulk sweep validates the index exactly once.
    """

    version: int
    users: tuple[User, ...]
    privileges: tuple[Privilege, ...]
    held: dict[User, frozenset[Privilege]]
    rows: dict[User, frozenset[Privilege]]

    def holds(self, user: User, privilege: Privilege) -> bool:
        return privilege in self.held.get(user, frozenset())

    def holders(self, privilege: Privilege) -> tuple[User, ...]:
        """The audited users holding ``privilege``, in audit order."""
        return tuple(
            user for user in self.users if privilege in self.held[user]
        )

    def admin_counts(self, user: User) -> tuple[int, int]:
        """(grant, revoke) administrative privilege counts held by
        ``user`` — the audit's quick who-is-an-administrator view."""
        held = self.held.get(user, frozenset())
        grants = sum(1 for p in held if isinstance(p, Grant))
        revokes = sum(1 for p in held if isinstance(p, Revoke))
        return grants, revokes

    def as_dict(self) -> dict:
        """JSON-ready rendering (entities and privileges as strings)."""
        return {
            "version": self.version,
            "users": [user.name for user in self.users],
            "privileges": [str(p) for p in self.privileges],
            "matrix": {
                user.name: sorted(str(p) for p in self.rows[user])
                for user in self.users
            },
            "admin_counts": {
                user.name: self.admin_counts(user) for user in self.users
            },
        }


def audit_matrix(
    policy: Policy,
    privileges=None,
    users=None,
    compiled: bool = True,
    shards: int = 1,
    index=None,
) -> AuditReport:
    """Audit the whole population's held privileges in one bulk sweep.

    ``privileges`` defaults to the policy's user privileges (the
    permission columns an access audit cares about); pass any privilege
    collection — including administrative :class:`Grant`/:class:`Revoke`
    terms — to audit those columns instead.  ``users`` defaults to
    every user.  ``shards > 1`` runs the sweep on a
    :class:`ShardedAuthorizationIndex`; pass an existing ``index`` to
    reuse a serving index (its kernel wins over ``compiled``).
    """
    if index is None:
        if shards > 1:
            index = ShardedAuthorizationIndex(
                policy, shards=shards, compiled=compiled
            )
        else:
            index = AuthorizationIndex(policy, compiled=compiled)
    audited_users = tuple(
        sorted(policy.users(), key=str) if users is None else users
    )
    audited_privileges = tuple(
        sorted(policy.user_privileges(), key=str)
        if privileges is None else privileges
    )
    held = index.held_privileges_bulk(audited_users)
    columns = frozenset(audited_privileges)
    rows = {
        user: held[user] & columns for user in audited_users
    }
    return AuditReport(
        version=policy.version,
        users=audited_users,
        privileges=audited_privileges,
        held=held,
        rows=rows,
    )
