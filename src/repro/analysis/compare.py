"""Cross-model comparison harness (§5 of the paper, quantified).

The paper argues its ordering-based model is *more flexible and at the
same time safe*.  This module turns that claim into numbers:

* **Flexibility** — how many administrative operations are permitted
  right now?  Counted for the paper's model in strict and refined
  modes, and for the ARBAC97 / administrative-scope / domain baselines
  over the same policy.
* **Safety** — does the extra flexibility change what is ultimately
  obtainable?  Compared via the admin-reachability analysis and the
  bounded mode-safety check.

The harness is policy-generic; the BASE benchmark runs it over the
hospital policy and synthetic enterprises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.commands import CommandAction, Mode, effective_commands
from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant
from .arbac import ArbacSystem, CanAssign, CanRevoke, Condition, RoleRange
from .reachability import obtainable_pairs
from .scope import may_assign_under_scope


@dataclass(frozen=True)
class FlexibilityReport:
    """Permitted-operation counts for one policy under each model."""

    strict_operations: int
    refined_operations: int
    implicit_operations: int          # refined-only (authorized via Ã)
    arbac_operations: int | None      # None when no translation exists
    scope_operations: int
    refined_over_strict: float

    def as_rows(self) -> list[tuple[str, int | float | None]]:
        return [
            ("strict (Def. 5, exact match)", self.strict_operations),
            ("refined (§4.1, ordering)", self.refined_operations),
            ("  of which implicit", self.implicit_operations),
            ("ARBAC97 baseline", self.arbac_operations),
            ("admin-scope baseline", self.scope_operations),
            ("refined / strict", round(self.refined_over_strict, 3)),
        ]


def count_model_operations(policy: Policy, mode: Mode) -> tuple[int, int]:
    """(total effective commands, implicitly authorized commands)."""
    total = 0
    implicit = 0
    for _command, _privilege, was_implicit in effective_commands(policy, mode):
        total += 1
        if was_implicit:
            implicit += 1
    return total, implicit


def count_scope_operations(policy: Policy) -> int:
    """User-role assignments permitted by the strict-scope model."""
    count = 0
    for admin in policy.users():
        for target in policy.users():
            for role in policy.roles():
                if may_assign_under_scope(policy, admin, target, role):
                    count += 1
    return count


def arbac_from_grants(policy: Policy) -> ArbacSystem:
    """Translate a policy's top-level user-assignment grants into
    URA97 rules.

    Each assigned ``¤(u, r)`` held by role ``h`` becomes
    ``can_assign(h, true, [r, r])``; each ``♦(u, r)`` becomes
    ``can_revoke(h, [r, r])``.  The translation is lossy on purpose:
    ARBAC ranges cannot mention the target user, so the user component
    is dropped — this widens ARBAC's permissions relative to the
    source policy (any user becomes assignable to ``r``), which is the
    expressiveness gap the comparison reports.
    """
    system = ArbacSystem(policy.copy())
    for holder, privilege in policy.admin_privileges_assigned():
        target = privilege.target
        if not (isinstance(target, Role) and isinstance(privilege.source, User)):
            continue
        role_range = RoleRange(target, target)
        if isinstance(privilege, Grant):
            system.can_assign_rules.append(
                CanAssign(holder, Condition.true(), role_range)
            )
        else:
            system.can_revoke_rules.append(CanRevoke(holder, role_range))
    return system


def count_arbac_operations(policy: Policy) -> int | None:
    """Assignments permitted by the URA97 translation (None if the
    policy has no translatable rules)."""
    system = arbac_from_grants(policy)
    if not system.can_assign_rules and not system.can_revoke_rules:
        return None
    return sum(1 for _ in system.permitted_assignments())


def flexibility_report(policy: Policy) -> FlexibilityReport:
    strict_total, _ = count_model_operations(policy, Mode.STRICT)
    refined_total, implicit = count_model_operations(policy, Mode.REFINED)
    return FlexibilityReport(
        strict_operations=strict_total,
        refined_operations=refined_total,
        implicit_operations=implicit,
        arbac_operations=count_arbac_operations(policy),
        scope_operations=count_scope_operations(policy),
        refined_over_strict=(
            refined_total / strict_total if strict_total else float("inf")
        ),
    )


@dataclass(frozen=True)
class SafetyComparison:
    """Obtainable-pair sets under strict vs refined administration."""

    strict_pairs: int
    refined_pairs: int
    refined_only_pairs: frozenset

    @property
    def refined_is_safe(self) -> bool:
        """True iff refined administration makes nothing obtainable
        that strict administration could not already produce."""
        return not self.refined_only_pairs


def safety_comparison(
    policy: Policy, depth: int = 2, compiled: bool = True
) -> SafetyComparison:
    strict = obtainable_pairs(policy, depth, Mode.STRICT, compiled=compiled)
    refined = obtainable_pairs(policy, depth, Mode.REFINED, compiled=compiled)
    return SafetyComparison(
        strict_pairs=len(strict),
        refined_pairs=len(refined),
        refined_only_pairs=frozenset(refined - strict),
    )


def count_grant_commands(policy: Policy, mode: Mode) -> int:
    """Grant-only effective-command count (assignment flexibility)."""
    return sum(
        1
        for command, _priv, _implicit in effective_commands(policy, mode)
        if command.action is CommandAction.GRANT
    )
