"""Empirical testing of the Remark-2 conjecture.

Remark 2: deeper nestings of a weaker privilege are "in a sense
redundant" — instead of assigning ``¤(r1, r2)`` to ``r1``, the deeper
term assigns to ``r1`` the privilege to do so, which only costs the
members of ``r1`` an extra administrative step.  The paper conjectures
that enumeration may stop after ``n`` applications of rule (3), where
``n`` is the length of the longest chain in RH, and leaves the claim
informal.

We operationalize "redundant" via admin-reachability: assigning a
weaker term ``q`` to a role ``r`` is *useful* only insofar as it
changes what is ultimately obtainable (the set of
(subject, user-privilege) pairs granted in some reachable policy,
given enough administrative steps).  The conjecture then reads:

    for every weaker term q of nesting depth beyond the Remark-2
    bound, the policy extended with (r, q) makes nothing obtainable
    that the policy extended with the bound-depth weaker terms does
    not already make obtainable.

:func:`check_conjecture_instance` checks one (policy, role, seed
privilege) instance and reports any violating deep terms; the tests
and the RMK2 benchmark sweep random policies.  Caveat recorded in
EXPERIMENTS.md: reachability itself must be explored deep enough to
"unroll" the extra administrative steps, so the reachability depth
grows with the term depth examined.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.commands import Mode
from ..core.entities import Role
from ..core.policy import Policy
from ..core.privileges import Privilege, privilege_depth
from ..core.weaker import remark2_bound, weaker_set
from .reachability import obtainable_pairs


@dataclass(frozen=True)
class ConjectureReport:
    """Outcome of one Remark-2 conjecture instance."""

    bound: int
    terms_within_bound: int
    terms_beyond_bound: int
    violations: tuple[Privilege, ...]

    @property
    def holds(self) -> bool:
        return not self.violations


def check_conjecture_instance(
    policy: Policy,
    role: Role,
    seed: Privilege,
    extra_depth: int = 2,
    mode: Mode = Mode.STRICT,
    compiled: bool = True,
) -> ConjectureReport:
    """Check the Remark-2 conjecture for one seed privilege.

    ``extra_depth`` controls how far beyond the bound the enumeration
    probes.  For each deep term ``q``, the obtainable pairs of
    ``policy + (role, q)`` (explored deep enough to execute the extra
    indirection steps) are compared against the obtainable pairs of
    the policy extended with *all* bound-depth weaker terms.

    ``compiled`` selects the admin-reachability explorer kernel (the
    dominant cost of an instance — one exploration per deep term).
    """
    bound = remark2_bound(policy)
    shallow_terms = weaker_set(policy, seed, bound)
    deep_terms = weaker_set(policy, seed, bound + extra_depth) - shallow_terms

    # Baseline capability: the policy with every shallow weakening
    # assigned, explored to the bound's worth of steps.
    baseline = policy.copy()
    for term in shallow_terms:
        baseline.assign_privilege(role, term)
    baseline_pairs = obtainable_pairs(
        baseline, depth=bound + 1, mode=mode, compiled=compiled
    )

    violations: list[Privilege] = []
    for term in sorted(deep_terms, key=str):
        probe = policy.copy()
        probe.assign_privilege(role, term)
        # Deep terms need extra steps to unroll their indirections.
        steps = privilege_depth(term) + 1
        probe_pairs = obtainable_pairs(
            probe, depth=steps, mode=mode, compiled=compiled
        )
        if not probe_pairs <= baseline_pairs:
            violations.append(term)
    return ConjectureReport(
        bound=bound,
        terms_within_bound=len(shallow_terms),
        terms_beyond_bound=len(deep_terms),
        violations=tuple(violations),
    )
