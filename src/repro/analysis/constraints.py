"""Separation-of-duty constraints — an *extension* beyond the paper.

The paper deliberately stays within General Hierarchical RBAC ("we do
not assume any features that go beyond [it], such as constraints") but
argues its results "are also applicable to a range of more advanced
RBAC models" (§1).  This module puts that claim to work for the ANSI
standard's constrained-RBAC features:

* **SSD** (static separation of duty): of a given role set, no user
  may be *authorized* for ``cardinality`` or more roles;
* **DSD** (dynamic separation of duty): no *session* may have
  ``cardinality`` or more of the set active simultaneously.

Two integration points:

* :class:`ConstrainedMonitor` — a reference monitor that additionally
  rejects role activations violating DSD and administrative commands
  whose result would violate SSD (the ANSI enforcement points);
* :func:`weakening_preserves_ssd` — an empirical check of the
  extension claim: executing a Ã-weaker command never introduces an
  SSD violation that the stronger command would not also have
  introduced (the weaker grant authorizes a subset of the roles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.commands import Command, ExecutionRecord, Mode, run_queue, step
from ..core.entities import Role, User
from ..core.monitor import ReferenceMonitor
from ..core.ordering import OrderingOracle
from ..core.policy import Policy
from ..core.privileges import Grant
from ..core.sessions import Session
from ..errors import AccessDenied, AnalysisError


@dataclass(frozen=True)
class SsdConstraint:
    """No user may be authorized for ``cardinality``+ of ``roles``."""

    name: str
    roles: frozenset[Role]
    cardinality: int = 2

    def __post_init__(self):
        if self.cardinality < 2:
            raise AnalysisError("SSD cardinality must be at least 2")
        if len(self.roles) < self.cardinality:
            raise AnalysisError(
                f"SSD role set smaller than its cardinality: {self.name}"
            )

    def violations(self, policy: Policy) -> list[tuple[User, frozenset[Role]]]:
        found = []
        for user in sorted(policy.users(), key=str):
            authorized = policy.authorized_roles(user) & self.roles
            if len(authorized) >= self.cardinality:
                found.append((user, frozenset(authorized)))
        return found

    def satisfied(self, policy: Policy) -> bool:
        return not self.violations(policy)


@dataclass(frozen=True)
class DsdConstraint:
    """No session may have ``cardinality``+ of ``roles`` active."""

    name: str
    roles: frozenset[Role]
    cardinality: int = 2

    def __post_init__(self):
        if self.cardinality < 2:
            raise AnalysisError("DSD cardinality must be at least 2")

    def allows_activation(self, session: Session, role: Role) -> bool:
        if role not in self.roles:
            return True
        active = (session.active_roles | {role}) & self.roles
        return len(active) < self.cardinality


class ConstrainedMonitor(ReferenceMonitor):
    """A reference monitor enforcing SSD on administration and DSD on
    role activation (ANSI constrained RBAC, grafted onto the paper's
    administrative model)."""

    def __init__(
        self,
        policy: Policy,
        mode: Mode = Mode.STRICT,
        ssd: Iterable[SsdConstraint] = (),
        dsd: Iterable[DsdConstraint] = (),
    ):
        super().__init__(policy, mode)
        self.ssd = tuple(ssd)
        self.dsd = tuple(dsd)
        for constraint in self.ssd:
            if not constraint.satisfied(policy):
                raise AnalysisError(
                    f"initial policy violates SSD constraint {constraint.name}"
                )

    def add_active_role(self, session: Session, role: Role) -> None:
        for constraint in self.dsd:
            if not constraint.allows_activation(session, role):
                self._audit(
                    "session", session.user,
                    f"activate {role} (DSD {constraint.name})", False,
                )
                raise AccessDenied(
                    session.user.name,
                    f"activating {role.name} violates DSD {constraint.name}",
                )
        super().add_active_role(session, role)

    def submit(self, command: Command) -> ExecutionRecord:
        """Execute unless the *result* would violate an SSD constraint
        (checked on a scratch copy first)."""
        probe = self.policy.copy()
        record = step(probe, command, self.mode, OrderingOracle(probe))
        if record.executed:
            for constraint in self.ssd:
                if not constraint.satisfied(probe):
                    self._audit(
                        "admin", command.user,
                        f"{command} (would violate SSD {constraint.name})",
                        False,
                    )
                    return ExecutionRecord(command, False)
        return super().submit(command)


def weakening_preserves_ssd(
    policy: Policy,
    stronger: Grant,
    weaker: Grant,
    constraints: Iterable[SsdConstraint],
    actor: User,
) -> bool:
    """The extension claim, instantiated: if executing the *stronger*
    grant leaves every constraint satisfied, so does executing the
    weaker one.  Returns True when the implication holds."""
    from ..core.commands import grant_cmd

    constraints = tuple(constraints)
    after_strong, strong_records = run_queue(
        policy, [grant_cmd(actor, *stronger.edge)], Mode.STRICT
    )
    after_weak, weak_records = run_queue(
        policy, [grant_cmd(actor, *weaker.edge)], Mode.REFINED
    )
    if not (strong_records[0].executed and weak_records[0].executed):
        return True  # vacuous: one side could not act
    strong_ok = all(c.satisfied(after_strong) for c in constraints)
    weak_ok = all(c.satisfied(after_weak) for c in constraints)
    return weak_ok or not strong_ok
