"""Administrative domains (Wang & Osborn [12]), simplified.

The third baseline of §5: the role graph is partitioned into disjoint
*administrative domains*, each with a single administrator role;
changes to a role are permitted only to (members of) the administrator
of its domain.

The original model is defined over role graphs with additional
structure; this reproduction keeps the part the comparison needs — the
partition, its validation, and the resulting assignment-permission
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..core.entities import Role, User
from ..core.policy import Policy


@dataclass(frozen=True)
class Domain:
    """One administrative domain: a set of roles and its administrator."""

    name: str
    roles: frozenset[Role]
    administrator: Role

    def __post_init__(self):
        if not self.roles:
            raise AnalysisError(f"domain {self.name!r} has no roles")


@dataclass
class DomainPartition:
    """A validated partition of (a subset of) a policy's roles."""

    policy: Policy
    domains: list[Domain]

    def __post_init__(self):
        seen: set[Role] = set()
        policy_roles = set(self.policy.roles())
        for domain in self.domains:
            overlap = seen & domain.roles
            if overlap:
                raise AnalysisError(
                    f"domains overlap on {sorted(str(r) for r in overlap)}"
                )
            missing = domain.roles - policy_roles
            if missing:
                raise AnalysisError(
                    f"domain {domain.name!r} references unknown roles "
                    f"{sorted(str(r) for r in missing)}"
                )
            seen |= domain.roles

    def domain_of(self, role: Role) -> Domain | None:
        for domain in self.domains:
            if role in domain.roles:
                return domain
        return None

    def may_administer(self, admin: User, target_role: Role) -> bool:
        """True iff ``admin`` is a member of the administrator role of
        ``target_role``'s domain."""
        domain = self.domain_of(target_role)
        if domain is None:
            return False
        return self.policy.reaches(admin, domain.administrator)

    def may_assign(self, admin: User, target_user: User, target_role: Role) -> bool:
        """Domain-model assignment check (user argument kept for
        signature parity with the other baselines; the model does not
        constrain the target user)."""
        return self.may_administer(admin, target_role)

    def administrators(self) -> frozenset[Role]:
        return frozenset(domain.administrator for domain in self.domains)
