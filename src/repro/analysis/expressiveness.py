"""Expressibility of related-work delegation idioms (§5).

The paper's related-work section makes two concrete expressibility
claims:

* **PBDM** (Zhang, Oh & Sandhu): "The PDBM model defines a cascaded
  delegation.  This form of delegation is also expressible in our
  grammar (by nesting the ¤ connective).  In the PDBM model, however,
  each delegation requires the addition of a separate role" — whereas
  in the paper's model no extra roles are needed.
* **Barka & Sandhu**: "each level of delegation requires the
  definition of tens of sets and functions, whereas in our model
  administrative privileges, of an arbitrary complexity, are simply
  assigned to roles".

This module operationalizes the first claim: a *cascaded delegation
spec* (delegate membership of role R to u1, who may re-delegate to u2,
… up to depth n) is translated both ways —

* :func:`encode_as_nested_grant` — one nested ¤ term, zero new roles;
* :func:`encode_as_pbdm_roles` — the PBDM-style encoding: one fresh
  *delegation role* per step, wired into the hierarchy.

Both encodings are executable against the Definition-5 semantics and
the tests verify they authorize the same end-to-end delegation chain;
:func:`encoding_cost` counts the artifacts each needs (the quantified
§5 comparison reported by the BASE benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.commands import Mode, grant_cmd, run_queue
from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant


@dataclass(frozen=True)
class CascadedDelegation:
    """Delegate membership of ``target_role``: ``delegators[0]`` may
    grant it to ``delegators[1]``, who may pass it on, …, ending with
    ``final_recipient``."""

    target_role: Role
    delegators: tuple[User, ...]
    final_recipient: User

    def __post_init__(self):
        if not self.delegators:
            raise ValueError("a cascade needs at least one delegator")

    @property
    def depth(self) -> int:
        return len(self.delegators)


def encode_as_nested_grant(
    policy: Policy, cascade: CascadedDelegation, anchor_role: Role
) -> Policy:
    """The paper's encoding: one nested ¤ term assigned to
    ``anchor_role`` (the role of the first delegator); no new roles.

    The term reads, inside-out: the last delegator may grant the final
    recipient membership; the one before may grant the last delegator
    the privilege to do so; and so on.
    """
    encoded = policy.copy()
    # Innermost: the final assignment privilege.
    term = Grant(cascade.final_recipient, cascade.target_role)
    # Each delegator (from the last backwards, excluding the first)
    # receives the previous term via a personal holder role — the
    # grammar assigns privileges to roles, so delegation *to a user*
    # goes through the role(s) that user activates; here we use the
    # target-role-free formulation: ¤(role_of(u_i), term).  For the
    # comparison we model "user u may ..." as a grant to a singleton
    # role the user already has; policies built by `cascade_policy`
    # provide one home role per delegator.
    for delegator in reversed(cascade.delegators[1:]):
        home = _home_role(delegator)
        term = Grant(home, term)
    encoded.assign_privilege(anchor_role, term)
    return encoded


def encode_as_pbdm_roles(
    policy: Policy, cascade: CascadedDelegation
) -> tuple[Policy, list[Role]]:
    """The PBDM-style encoding: one fresh delegation role per step.

    Step i assigns party_i (the next delegator, or finally the
    recipient) to the fresh role ``DLGT_i``.  The privilege to perform
    step 0 sits on the first delegator's home role; the privilege to
    perform step i+1 sits on ``DLGT_i`` itself — membership acquired
    in one step is what enables the next, which is the cascading.  The
    last delegation role inherits the target role.
    """
    encoded = policy.copy()
    new_roles: list[Role] = []
    parties = list(cascade.delegators[1:]) + [cascade.final_recipient]
    previous_holder: Role = _home_role(cascade.delegators[0])
    for index, party in enumerate(parties):
        delegation_role = Role(f"DLGT_{cascade.target_role.name}_{index}")
        new_roles.append(delegation_role)
        encoded.add_role(delegation_role)
        if index == len(parties) - 1:
            encoded.add_inheritance(delegation_role, cascade.target_role)
        encoded.assign_privilege(
            previous_holder, Grant(party, delegation_role)
        )
        previous_holder = delegation_role
    return encoded, new_roles


def run_pbdm_cascade(
    cascade: CascadedDelegation,
) -> tuple[bool, Policy]:
    """Execute the PBDM-role encoding end to end under strict
    Definition-5 semantics; returns (recipient reached target?, final
    policy)."""
    base = cascade_policy(cascade)
    policy, new_roles = encode_as_pbdm_roles(base, cascade)
    parties = list(cascade.delegators[1:]) + [cascade.final_recipient]
    queue = [
        grant_cmd(cascade.delegators[index], party, new_roles[index])
        for index, party in enumerate(parties)
    ]
    final, records = run_queue(policy, queue, Mode.STRICT)
    executed = all(record.executed for record in records)
    reached = final.reaches(cascade.final_recipient, cascade.target_role)
    return (executed and reached, final)


def _home_role(user: User) -> Role:
    """The singleton 'home' role convention used by cascade policies."""
    return Role(f"home_{user.name}")


def cascade_policy(cascade: CascadedDelegation) -> Policy:
    """A base policy with one home role per delegator and the target
    role present (privileges attached by the caller/tests)."""
    policy = Policy()
    policy.add_role(cascade.target_role)
    for delegator in cascade.delegators:
        policy.assign_user(delegator, _home_role(delegator))
    policy.add_user(cascade.final_recipient)
    return policy


@dataclass(frozen=True)
class EncodingCost:
    """Artifacts each encoding needs for a depth-n cascade."""

    depth: int
    nested_new_roles: int
    nested_new_privileges: int
    pbdm_new_roles: int
    pbdm_new_privileges: int


def encoding_cost(depth: int) -> EncodingCost:
    """The §5 comparison, quantified for a depth-``depth`` cascade."""
    delegators = tuple(User(f"d{i}") for i in range(depth))
    cascade = CascadedDelegation(Role("target"), delegators, User("final"))
    base = cascade_policy(cascade)
    anchor = _home_role(delegators[0])

    nested = encode_as_nested_grant(base, cascade, anchor)
    pbdm, new_roles = encode_as_pbdm_roles(base, cascade)

    def role_count(policy: Policy) -> int:
        return sum(1 for _ in policy.roles())

    def admin_count(policy: Policy) -> int:
        return sum(1 for _ in policy.admin_privileges_assigned())

    return EncodingCost(
        depth=depth,
        nested_new_roles=role_count(nested) - role_count(base),
        nested_new_privileges=admin_count(nested) - admin_count(base),
        pbdm_new_roles=role_count(pbdm) - role_count(base),
        pbdm_new_privileges=admin_count(pbdm) - admin_count(base),
    )


def encodings_equi_obtainable(
    cascade: CascadedDelegation, compiled: bool = True
) -> bool:
    """§5's expressibility claim, checked through the admin-reachability
    explorer: the nested-¤ encoding and the PBDM-role encoding of the
    same cascade agree on whether the delegation chain can be driven
    end to end, explored deep enough to unroll the whole chain.

    The cascade manipulates memberships, so the base policy is given
    one marker user privilege on the target role — the pair
    ``(final_recipient, marker)`` becomes obtainable under an encoding
    exactly when its chain can be executed; this function compares that
    single marker pair's obtainability (not the full obtainable sets,
    which legitimately differ in the PBDM delegation-role plumbing).
    ``compiled`` selects the explorer kernel.
    """
    from ..core.privileges import perm

    marker = perm("use", cascade.target_role.name)
    base = cascade_policy(cascade)
    base.assign_privilege(cascade.target_role, marker)
    anchor = _home_role(cascade.delegators[0])
    nested = encode_as_nested_grant(base, cascade, anchor)
    pbdm, _roles = encode_as_pbdm_roles(base, cascade)
    depth = cascade.depth + 1
    from .reachability import obtainable_pairs

    nested_pairs = obtainable_pairs(
        nested, depth, Mode.STRICT, compiled=compiled
    )
    pbdm_pairs = obtainable_pairs(pbdm, depth, Mode.STRICT, compiled=compiled)
    target_pair = (cascade.final_recipient, marker)
    return (target_pair in nested_pairs) == (target_pair in pbdm_pairs)


def run_nested_cascade(
    cascade: CascadedDelegation,
) -> tuple[bool, Policy]:
    """Execute the nested-grant encoding end to end under strict
    Definition-5 semantics; returns (recipient reached target?, final
    policy)."""
    base = cascade_policy(cascade)
    anchor = _home_role(cascade.delegators[0])
    policy = encode_as_nested_grant(base, cascade, anchor)

    queue = []
    # Unroll the nesting: delegator i grants the next level's term.
    term = next(
        privilege
        for role, privilege in policy.admin_privileges_assigned()
        if role == anchor
    )
    for delegator in cascade.delegators:
        queue.append(grant_cmd(delegator, *term.edge))
        if isinstance(term.target, Grant):
            term = term.target
        else:
            break
    final, records = run_queue(policy, queue, Mode.STRICT)
    executed = all(record.executed for record in records)
    reached = final.reaches(cascade.final_recipient, cascade.target_role)
    return (executed and reached, final)
