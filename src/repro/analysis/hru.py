"""The HRU protection model (Harrison, Ruzzo & Ullman [7]).

Footnote 5 of the paper contrasts Definition 7 with the HRU model:
HRU's safety analysis assumes a set of untrusted subjects who may
collude *in any order*, which cannot distinguish the policy
``lowrole → ¤(r, p)`` from ``highrole → ¤(r, p)`` — the paper's
order- and subject-sensitive refinement can.  This module implements:

* the access matrix with generic rights;
* HRU commands (condition part + primitive operations);
* a bounded safety checker ("can right x leak into cell (s, o)?")
  by breadth-first exploration of matrix states; and
* :func:`encode_rbac_grants`, a translation of an RBAC policy's
  top-level grant privileges into HRU commands, used by the
  footnote-5 demonstration in the tests and the SAFE benchmark.

HRU safety is undecidable in general; the checker is explicitly
bounded (``max_steps``) and does not model subject/object creation —
the fragment needed for the comparison.

The checker follows the same two-kernel convention as the RBAC
explorers: ``compiled=True`` (default) mutates one matrix per frontier
state in place with an apply/undo log and deduplicates states by a
:class:`~repro.graph.fingerprint.StateFingerprint` bitmask over
``(subject, object, right)`` cell atoms — one XOR per primitive
operation, an int hash per ``seen`` test, and a matrix copy only per
*distinct* state.  ``compiled=False`` keeps the copy-per-successor
frozenset-signature oracle; both produce identical results
(``leaks``/``steps``/``states_explored``), pinned by fuzz invariant 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import AnalysisError
from ..graph.fingerprint import StateFingerprint


class AccessMatrix:
    """A finite access matrix: (subject, object) cells holding rights.

    For simplicity every name is both a row and a column; the ``self``
    marker right on the diagonal lets commands pin parameters to
    constants while staying inside the plain HRU command form.
    """

    __slots__ = ("names", "_rights")

    def __init__(
        self,
        names: Iterable[str],
        rights: Iterable[tuple[str, str, str]] = (),
    ):
        self.names = frozenset(names)
        self._rights: dict[tuple[str, str], frozenset[str]] = {}
        for subject, obj, right in rights:
            self.enter(subject, obj, right)

    def enter(self, subject: str, obj: str, right: str) -> None:
        if subject not in self.names or obj not in self.names:
            raise AnalysisError(f"unknown matrix cell ({subject!r}, {obj!r})")
        key = (subject, obj)
        self._rights[key] = self._rights.get(key, frozenset()) | {right}

    def delete(self, subject: str, obj: str, right: str) -> None:
        key = (subject, obj)
        existing = self._rights.get(key, frozenset())
        self._rights[key] = existing - {right}

    def has(self, subject: str, obj: str, right: str) -> bool:
        return right in self._rights.get((subject, obj), frozenset())

    def signature(self) -> frozenset[tuple[str, str, str]]:
        """Canonical immutable snapshot of the matrix contents."""
        return frozenset(
            (subject, obj, right)
            for (subject, obj), rights in self._rights.items()
            for right in rights
        )

    def copy(self) -> "AccessMatrix":
        clone = AccessMatrix(self.names)
        clone._rights = dict(self._rights)
        return clone


@dataclass(frozen=True)
class HruOp:
    """A primitive operation: ``enter`` or ``delete`` a right."""

    kind: str  # "enter" | "delete"
    right: str
    subject_param: str
    object_param: str

    def __post_init__(self):
        if self.kind not in ("enter", "delete"):
            raise AnalysisError(f"unknown primitive op {self.kind!r}")


@dataclass(frozen=True)
class HruCommand:
    """``command name(params) if conditions then ops end``.

    ``conditions`` are triples ``(right, subject_param, object_name)``
    where the object position may name either a parameter or a
    constant (constants are cell names; parameters are looked up in
    the binding first).
    """

    name: str
    params: tuple[str, ...]
    conditions: tuple[tuple[str, str, str], ...]
    ops: tuple[HruOp, ...]

    def _resolve(self, token: str, binding: dict[str, str]) -> str:
        return binding.get(token, token)

    def applicable(self, matrix: AccessMatrix, binding: dict[str, str]) -> bool:
        return all(
            matrix.has(
                self._resolve(subject, binding),
                self._resolve(obj, binding),
                right,
            )
            for right, subject, obj in self.conditions
        )

    def apply(self, matrix: AccessMatrix, binding: dict[str, str]) -> AccessMatrix:
        result = matrix.copy()
        for op in self.ops:
            subject = self._resolve(op.subject_param, binding)
            obj = self._resolve(op.object_param, binding)
            if op.kind == "enter":
                result.enter(subject, obj, op.right)
            else:
                result.delete(subject, obj, op.right)
        return result

    def bindings(self, matrix: AccessMatrix) -> Iterator[dict[str, str]]:
        """Applicable parameter bindings, in deterministic order.

        Yields one shared dict, mutated between yields — consume each
        binding before advancing the iterator (both exploration paths
        do).  Applicability is evaluated lazily against ``matrix`` at
        yield time, so a caller that mutates the matrix mid-iteration
        must restore it before resuming (the undo-log explorer's
        discipline).
        """
        universe = sorted(matrix.names)

        def extend(index: int, binding: dict[str, str]):
            if index == len(self.params):
                if self.applicable(matrix, binding):
                    yield binding
                return
            for value in universe:
                binding[self.params[index]] = value
                yield from extend(index + 1, binding)
            binding.pop(self.params[index], None)

        yield from extend(0, {})

    def successors(self, matrix: AccessMatrix):
        for binding in self.bindings(matrix):
            yield self.apply(matrix, binding)


@dataclass(frozen=True)
class SafetyResult:
    leaks: bool
    steps: int | None
    states_explored: int


def check_safety(
    matrix: AccessMatrix,
    commands: Iterable[HruCommand],
    right: str,
    subject: str,
    obj: str,
    max_steps: int = 6,
    compiled: bool = True,
) -> SafetyResult:
    """Bounded HRU safety: can ``right`` appear in cell (subject, obj)
    within ``max_steps`` command executions (any subjects, any order)?
    """
    command_list = list(commands)
    if matrix.has(subject, obj, right):
        return SafetyResult(True, 0, 1)
    if compiled:
        return _check_safety_compiled(
            matrix, command_list, right, subject, obj, max_steps
        )
    seen = {matrix.signature()}
    frontier: deque[tuple[AccessMatrix, int]] = deque([(matrix, 0)])
    explored = 1
    while frontier:
        state, depth = frontier.popleft()
        if depth == max_steps:
            continue
        for command in command_list:
            for successor in command.successors(state):
                signature = successor.signature()
                if signature in seen:
                    continue
                seen.add(signature)
                explored += 1
                if successor.has(subject, obj, right):
                    return SafetyResult(True, depth + 1, explored)
                frontier.append((successor, depth + 1))
    return SafetyResult(False, None, explored)


def _apply_in_place(
    matrix: AccessMatrix,
    command: HruCommand,
    binding: dict[str, str],
    slots: StateFingerprint,
) -> tuple[list[tuple[str, str, str, str]], int]:
    """Run ``command``'s primitive operations on ``matrix`` itself.

    Returns ``(undo, delta)``: the inverse operations in application
    order (replay them reversed to restore the matrix) and the XOR
    delta the net cell changes contribute to the state fingerprint.
    Name validation matches :meth:`HruCommand.apply` — ``enter`` is
    called for every enter op, present or not.
    """
    undo: list[tuple[str, str, str, str]] = []
    delta = 0
    for op in command.ops:
        cell_subject = command._resolve(op.subject_param, binding)
        cell_object = command._resolve(op.object_param, binding)
        present = matrix.has(cell_subject, cell_object, op.right)
        if op.kind == "enter":
            matrix.enter(cell_subject, cell_object, op.right)
            if not present:
                undo.append(("delete", cell_subject, cell_object, op.right))
                delta ^= slots.bit((cell_subject, cell_object, op.right))
        else:
            matrix.delete(cell_subject, cell_object, op.right)
            if present:
                undo.append(("enter", cell_subject, cell_object, op.right))
                delta ^= slots.bit((cell_subject, cell_object, op.right))
    return undo, delta


def _undo_in_place(
    matrix: AccessMatrix, undo: list[tuple[str, str, str, str]]
) -> None:
    for kind, cell_subject, cell_object, cell_right in reversed(undo):
        if kind == "enter":
            matrix.enter(cell_subject, cell_object, cell_right)
        else:
            matrix.delete(cell_subject, cell_object, cell_right)


def _check_safety_compiled(
    matrix: AccessMatrix,
    command_list: list[HruCommand],
    right: str,
    subject: str,
    obj: str,
    max_steps: int,
) -> SafetyResult:
    """Undo-log BFS over matrix states.

    Each frontier state is expanded by mutating it in place per
    applicable binding and undoing before the next binding; the matrix
    is copied only when a genuinely new state joins the frontier.  The
    caller's matrix is never mutated (the root is copied up front).
    """
    slots = StateFingerprint()
    root = matrix.copy()
    fingerprint = 0
    for atom in root.signature():
        fingerprint ^= slots.bit(atom)
    seen = {fingerprint}
    frontier: deque[tuple[AccessMatrix, int, int]] = deque(
        [(root, 0, fingerprint)]
    )
    explored = 1
    while frontier:
        state, depth, value = frontier.popleft()
        if depth == max_steps:
            continue
        for command in command_list:
            for binding in command.bindings(state):
                undo, delta = _apply_in_place(state, command, binding, slots)
                successor = value ^ delta
                if successor in seen:
                    _undo_in_place(state, undo)
                    continue
                seen.add(successor)
                explored += 1
                if state.has(subject, obj, right):
                    return SafetyResult(True, depth + 1, explored)
                frontier.append((state.copy(), depth + 1, successor))
                _undo_in_place(state, undo)
    return SafetyResult(False, None, explored)


def encode_rbac_grants(policy) -> tuple[AccessMatrix, list[HruCommand]]:
    """Translate an RBAC policy's membership structure and *top-level*
    grant privileges into an HRU system.

    Every policy vertex becomes a matrix name.  The right ``m`` in cell
    (x, y) encodes "x reaches y" (reachability is flattened at encoding
    time — the standard HRU weakening); the diagonal carries the
    ``self`` marker used to pin command parameters to constants.  Each
    assigned grant privilege ``¤(v, v')`` held by role ``h`` becomes a
    command firable by *any* subject with ``m`` over ``h``.

    The translation deliberately loses the who-acts-when structure —
    footnote 5's point: the encodings of ``lowrole → ¤(r, p)`` and
    ``highrole → ¤(r, p)`` yield identical leak verdicts, while
    Definition 7 distinguishes the policies (see the tests).
    """
    from ..core.entities import Role, User
    from ..core.privileges import Grant, UserPrivilege

    names = {str(vertex) for vertex in policy.vertex_set()}
    # Grant targets/sources may mention entities or user privileges
    # that are not policy vertices yet; they need matrix cells too.
    for term in policy.subterm_closure():
        if isinstance(term, Grant):
            names.add(str(term.source))
            names.add(str(term.target))
    matrix = AccessMatrix(names)
    enter_self_markers(matrix)

    # Flattened reachability as the membership right `m`.
    for vertex in policy.vertex_set():
        if not isinstance(vertex, (User, Role)):
            continue
        for reachable in policy.descendants(vertex):
            if reachable != vertex:
                matrix.enter(str(vertex), str(reachable), "m")

    commands: list[HruCommand] = []
    for index, (holder, privilege) in enumerate(
        sorted(policy.admin_privileges_assigned(), key=lambda pair: str(pair))
    ):
        if not isinstance(privilege, Grant):
            continue
        target = privilege.target
        if not isinstance(target, (User, Role, UserPrivilege)):
            continue  # nested admin targets exceed the plain-cell encoding
        commands.append(
            HruCommand(
                name=f"grant_{index}",
                params=("actor",),
                conditions=(("m", "actor", str(holder)),),
                ops=(HruOp("enter", "m", str(privilege.source), str(target)),),
            )
        )
    return matrix, commands


def enter_self_markers(matrix: AccessMatrix) -> None:
    """Enter the ``self`` marker right into every diagonal cell."""
    for name in matrix.names:
        matrix.enter(name, name, "self")
