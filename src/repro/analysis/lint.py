"""Static policy lint: graph-shape hazards without state exploration.

Dekker–Etalle's point is catching dangerous administrative authority
*before* it is exercised.  The exploration engine answers that with
bounded command-sequence search; this module answers it statically —
every rule here is decidable from the policy graph itself, in one
kernel sweep over :class:`~repro.core.policy.PolicyBits` masks and
memoized ``descendants_bits`` masks (``compiled=True``), with the
frozenset representation kept as the differential oracle for every
rule (``compiled=False``), mirroring the dual-kernel discipline of
the authorization index.

Rules (see the registry below):

* ``dead-role`` — a role no user reaches;
* ``dormant-privilege`` — an assigned privilege no user reaches and
  no single currently-authorized grant can bring into reach;
* ``redundant-delegation`` — an edge implied by the transitive
  closure: removing it provably preserves every authorization
  (verified against the live :class:`AuthorizationIndex`, not just
  claimed from reachability);
* ``irrevocable-authority`` — a reachable grant privilege covering
  pairs for which no reachable revocation privilege exists;
* ``self-escalation`` — a subject that can grant *itself* a privilege
  it does not hold (the depth-0/1 safety witness; the differential
  suite cross-checks these against :func:`safety.can_obtain`);
* ``constraint-conflict`` — violations and latent role conflicts of
  declared SSD separation sets (:mod:`repro.analysis.constraints`);
* ``unreachable-under-ssd`` — a granted privilege that no
  SSD-compliant session can ever activate (every role reaching it
  collides with a separation set on its own);
* ``depth-k-escalation`` — multi-step self-escalation witnessed by
  bounded grant-only exploration on the shared
  :class:`~repro.core.explore.ExplorationEngine`, beyond the one-step
  ``self-escalation`` witness.

Findings are structured (rule id, severity, subject, witness tuple,
suggested repair command) and deterministically ordered; fuzz
invariants 11 and 13 pin the compiled and frozenset findings identical
under churn and vertex-ID recycling.  Each finding's repair is not
just a string: :mod:`repro.analysis.repair` registers an executable
repair planner per rule and applies the resulting plans under a
refinement gate with a monotone-shrink proof.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..core.authz_index import AuthorizationIndex
from ..core.commands import Command, CommandAction, Mode
from ..core.entities import Role, User
from ..core.explore import ExplorationEngine
from ..core.policy import Policy
from ..core.privileges import Grant, Revoke, is_privilege
from ..errors import AnalysisError
from ..graph import ancestors as graph_ancestors
from ..graph import ancestors_bits, iter_bits
from .constraints import SsdConstraint


class Severity(enum.IntEnum):
    """Finding severity; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise AnalysisError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.label for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    ``subject`` is the policy element the finding is about (a user,
    role, privilege, or edge source); ``witness`` is a tuple of policy
    elements substantiating it (edges, escalation routes, conflicting
    roles); ``repair`` — when one exists — is the administrative
    privilege whose exercise repairs the finding, in the paper's term
    notation (``grant(v, v')`` / ``revoke(v, v')``).
    """

    rule: str
    severity: Severity
    subject: object
    witness: tuple
    message: str
    repair: str | None = None

    @property
    def sort_key(self) -> tuple:
        return (
            self.rule,
            str(self.subject),
            tuple(str(item) for item in self.witness),
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "subject": str(self.subject),
            "witness": [str(item) for item in self.witness],
            "message": self.message,
            "repair": self.repair,
        }

    def render(self) -> str:
        text = f"{self.severity.label:7} {self.rule}: {self.message}"
        if self.repair:
            text += f"  [repair: {self.repair}]"
        return text


@dataclass(frozen=True)
class LintRule:
    """A registered rule: a pure function from context to findings.

    ``differential`` names the repo-relative test module that pins the
    rule's compiled kernel against its frozenset twin; ``no_repair``
    — mutually exclusive with a registered planner in
    :mod:`repro.analysis.repair` — documents why the rule ships
    without one.  ``tools/check_invariants.py`` enforces that every
    registry entry is fully wired: the differential module must exist
    on disk and exactly one of planner / ``no_repair`` must be set.
    """

    name: str
    severity: Severity
    summary: str
    check: Callable[["LintContext"], Iterator[Finding]]
    differential: str = ""
    no_repair: str | None = None


#: registry in execution order — the mutation-probing rule runs last
#: so the cheap mask sweeps work over an untouched cache.
RULES: dict[str, LintRule] = {}


def _rule(
    name: str,
    severity: Severity,
    summary: str,
    differential: str = "tests/workloads/test_compiled_lint.py",
    no_repair: str | None = None,
):
    def register(check):
        RULES[name] = LintRule(
            name, severity, summary, check, differential, no_repair
        )
        return check
    return register


class LintContext:
    """Shared per-run state: the linted policy, the kernel choice, and
    lazily built reachability aggregates.

    Lint works on the caller's policy directly — deliberately not on a
    copy, so the compiled sweeps run over the caller's real interner
    layout (holes, recycled IDs and all; a copy would re-intern
    densely and launder exactly the layouts fuzz invariant 11 must
    exercise).  The redundancy rule's probes restore the policy
    exactly (edges whose removal would garbage-collect a vertex are
    never probed); the only observable side effect of a lint run is
    version advancement from those probes.
    """

    def __init__(
        self,
        policy: Policy,
        compiled: bool,
        constraints: tuple[SsdConstraint, ...],
        escalation_depth: int = 2,
    ):
        self.policy = policy
        self.compiled = compiled
        self.constraints = constraints
        #: exploration bound for the ``depth-k-escalation`` rule.
        self.escalation_depth = escalation_depth
        self.users = sorted(self.policy.users(), key=str)
        self.stats: dict[str, dict[str, int]] = {}
        self._reach_union = None
        self._index: AuthorizationIndex | None = None
        self._rect_memo: dict = {}
        self._priv_reach_memo: dict = {}

    # -- shared aggregates ---------------------------------------------
    @property
    def reach_union(self):
        """Everything reachable from *some* user: a bitmask when
        compiled, a frozenset otherwise."""
        if self._reach_union is None:
            if self.compiled:
                mask = 0
                for user in self.users:
                    mask |= self.policy.descendants_bits(user)
                self._reach_union = mask
            else:
                reached: set = set()
                for user in self.users:
                    reached |= self.policy.descendants(user)
                self._reach_union = frozenset(reached)
        return self._reach_union

    @property
    def index(self) -> AuthorizationIndex:
        """The authorization index over the work policy, in the same
        kernel — the redundancy rule's verification oracle."""
        if self._index is None:
            self._index = AuthorizationIndex(
                self.policy, compiled=self.compiled
            )
        return self._index

    def decode(self, mask: int) -> list:
        """Mask -> vertices, deterministically ordered by ``str``."""
        vertex_of = self.policy.graph._vertex_of
        return sorted(
            (vertex_of[index] for index in iter_bits(mask)), key=str
        )

    def rectangle(self, privilege: Grant) -> tuple:
        """The grant's weaker-pair region, as ``(sources, targets)``
        lists sorted by ``str`` — entity ancestors of the source and
        role descendants of the target, plus the off-graph reflexive
        endpoints (mirroring the index's rectangle compilation)."""
        cached = self._rect_memo.get(privilege)
        if cached is not None:
            return cached
        policy, graph = self.policy, self.policy.graph
        if self.compiled:
            bits = policy.bits
            if privilege.source in graph:
                sources = self.decode(
                    ancestors_bits(graph, privilege.source)
                    & bits.entities_mask
                )
            else:
                sources = [privilege.source]
            if privilege.target in graph:
                targets = self.decode(
                    policy.descendants_bits(privilege.target)
                    & bits.roles_mask
                )
            else:
                targets = (
                    [privilege.target]
                    if isinstance(privilege.target, Role) else []
                )
        else:
            if privilege.source in graph:
                sources = sorted(
                    (
                        vertex
                        for vertex in _frozen_ancestors(graph, privilege.source)
                        if isinstance(vertex, (User, Role))
                    ),
                    key=str,
                )
            else:
                sources = [privilege.source]
            if privilege.target in graph:
                targets = sorted(
                    (
                        vertex
                        for vertex in policy.descendants(privilege.target)
                        if isinstance(vertex, Role)
                    ),
                    key=str,
                )
            else:
                targets = (
                    [privilege.target]
                    if isinstance(privilege.target, Role) else []
                )
        cached = (sources, targets)
        self._rect_memo[privilege] = cached
        return cached

    def reachable_privileges_from(self, vertex):
        """Privileges reachable from ``vertex`` — mask or frozenset."""
        cached = self._priv_reach_memo.get(vertex)
        if cached is None:
            if self.compiled:
                cached = (
                    self.policy.descendants_bits(vertex)
                    & self.policy.bits.privileges_mask
                )
            else:
                cached = frozenset(
                    item
                    for item in self.policy.descendants(vertex)
                    if is_privilege(item)
                )
            self._priv_reach_memo[vertex] = cached
        return cached

    def count(self, rule: str, key: str, value: int = 1) -> None:
        self.stats.setdefault(rule, {})[key] = (
            self.stats.get(rule, {}).get(key, 0) + value
        )


def _frozen_ancestors(graph, vertex):
    return graph_ancestors(graph, vertex)


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run: deterministically ordered findings
    plus per-rule counters (candidates probed, findings verified or
    refuted by the index oracle)."""

    findings: tuple[Finding, ...]
    stats: dict = field(default_factory=dict)
    compiled: bool = True

    def by_rule(self) -> dict[str, tuple[Finding, ...]]:
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule, []).append(finding)
        return {name: tuple(items) for name, items in grouped.items()}

    def max_severity(self) -> Severity | None:
        return max(
            (finding.severity for finding in self.findings), default=None
        )

    def at_or_above(self, severity: Severity) -> tuple[Finding, ...]:
        return tuple(
            finding for finding in self.findings
            if finding.severity >= severity
        )

    def as_dict(self) -> dict:
        return {
            "compiled": self.compiled,
            "findings": [finding.as_dict() for finding in self.findings],
            "stats": self.stats,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def lint_policy(
    policy: Policy,
    rules: Iterable[str] | None = None,
    compiled: bool = True,
    constraints: Iterable[SsdConstraint] = (),
    escalation_depth: int = 2,
) -> LintReport:
    """Run the registered lint rules over ``policy``.

    ``rules`` selects a subset by name (default: all, in registry
    order); ``compiled`` picks the bitset kernel or the frozenset
    oracle — the findings are identical by construction (fuzz
    invariants 11 and 13); ``constraints`` supplies the SSD separation
    sets the ``constraint-conflict`` and ``unreachable-under-ssd``
    rules check; ``escalation_depth`` bounds the
    ``depth-k-escalation`` rule's exploration.
    """
    if rules is None:
        selected = list(RULES.values())
    else:
        names = list(rules)
        unknown = [name for name in names if name not in RULES]
        if unknown:
            raise AnalysisError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(RULES)}"
            )
        selected = [RULES[name] for name in RULES if name in names]
    context = LintContext(
        policy, compiled, tuple(constraints), escalation_depth
    )
    findings: list[Finding] = []
    for rule in selected:
        findings.extend(rule.check(context))
    findings.sort(key=lambda finding: finding.sort_key)
    return LintReport(
        findings=tuple(findings), stats=context.stats, compiled=compiled
    )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@_rule(
    "dead-role", Severity.INFO,
    "role reachable from no user",
)
def _dead_role(ctx: LintContext) -> Iterator[Finding]:
    policy = ctx.policy
    if ctx.compiled:
        dead = ctx.decode(policy.bits.roles_mask & ~ctx.reach_union)
    else:
        dead = sorted(
            (role for role in policy.roles() if role not in ctx.reach_union),
            key=str,
        )
    for role in dead:
        successors = sorted(policy.graph.successors(role), key=str)
        repair = (
            f"revoke({role}, {successors[0]})" if successors else None
        )
        yield Finding(
            "dead-role", Severity.INFO, role, (),
            f"role {role} is not reachable from any user",
            repair,
        )


@_rule(
    "dormant-privilege", Severity.INFO,
    "assigned privilege with no user reach and no one-step grant path",
)
def _dormant_privilege(ctx: LintContext) -> Iterator[Finding]:
    """A privilege vertex no user reaches *and* no single
    currently-authorized grant can bring into any user's reach.

    The one-step frontier considers every reachable grant privilege:
    entity-target grants contribute the role descendants of any
    rectangle target whose matching source is itself user-reachable
    (or an off-graph user, which the grant would introduce);
    privilege-target grants contribute their target when the granting
    role is user-reachable.  Deeper chains are exploration's job
    (:func:`repro.analysis.safety.can_obtain`), not lint's.
    """
    policy = ctx.policy
    graph = policy.graph
    if ctx.compiled:
        bits = policy.bits
        unreachable = bits.privileges_mask & ~ctx.reach_union
        if not unreachable:
            return
        potential = 0
        held_grants = ctx.decode(ctx.reach_union & bits.privileges_mask)
        vid = graph._vid
        for privilege in held_grants:
            if not isinstance(privilege, Grant):
                continue
            if isinstance(privilege.target, (User, Role)):
                sources, targets = ctx.rectangle(privilege)
                activatable = any(
                    source in graph
                    and ctx.reach_union >> vid[source] & 1
                    or source not in graph and isinstance(source, User)
                    for source in sources
                )
                if not activatable:
                    continue
                for target in targets:
                    if target in graph:
                        potential |= policy.descendants_bits(target)
            else:
                source_id = vid.get(privilege.source)
                target_id = vid.get(privilege.target)
                if (
                    source_id is not None
                    and ctx.reach_union >> source_id & 1
                    and target_id is not None
                ):
                    potential |= 1 << target_id
        dormant = ctx.decode(unreachable & ~potential)
    else:
        unreachable_set = {
            privilege
            for privilege in policy.privileges()
            if privilege not in ctx.reach_union
        }
        if not unreachable_set:
            return
        potential_set: set = set()
        for privilege in sorted(
            (item for item in ctx.reach_union if isinstance(item, Grant)),
            key=str,
        ):
            if isinstance(privilege.target, (User, Role)):
                sources, targets = ctx.rectangle(privilege)
                activatable = any(
                    source in ctx.reach_union
                    or source not in graph and isinstance(source, User)
                    for source in sources
                )
                if not activatable:
                    continue
                for target in targets:
                    if target in graph:
                        potential_set |= policy.descendants(target)
            else:
                if (
                    privilege.source in ctx.reach_union
                    and privilege.target in graph
                ):
                    potential_set.add(privilege.target)
        dormant = sorted(unreachable_set - potential_set, key=str)
    for privilege in dormant:
        assigners = sorted(graph.predecessors(privilege), key=str)
        repair = (
            f"revoke({assigners[0]}, {privilege})" if assigners else None
        )
        yield Finding(
            "dormant-privilege", Severity.INFO, privilege, tuple(assigners),
            f"privilege {privilege} is assigned but no user reaches it "
            "and no single authorized grant creates a path",
            repair,
        )


@_rule(
    "constraint-conflict", Severity.ERROR,
    "SSD separation-set violation or latent role conflict",
)
def _constraint_conflict(ctx: LintContext) -> Iterator[Finding]:
    policy = ctx.policy
    graph = policy.graph
    for constraint in sorted(ctx.constraints, key=lambda c: c.name):
        if ctx.compiled:
            vid = graph._vid
            set_mask = 0
            for role in constraint.roles:
                index = vid.get(role)
                if index is not None:
                    set_mask |= 1 << index
            for user in ctx.users:
                hit = policy.descendants_bits(user) & set_mask
                if hit.bit_count() >= constraint.cardinality:
                    yield _conflict_finding(
                        ctx, constraint, user, ctx.decode(hit),
                        Severity.ERROR, "is authorized for",
                    )
            for role in sorted(policy.roles(), key=str):
                hit = policy.descendants_bits(role) & set_mask
                if hit.bit_count() >= constraint.cardinality:
                    yield _conflict_finding(
                        ctx, constraint, role, ctx.decode(hit),
                        Severity.WARNING, "reaches",
                    )
        else:
            for user, roles in constraint.violations(policy):
                yield _conflict_finding(
                    ctx, constraint, user, sorted(roles, key=str),
                    Severity.ERROR, "is authorized for",
                )
            for role in sorted(policy.roles(), key=str):
                hit = {
                    item
                    for item in policy.descendants(role)
                    if isinstance(item, Role)
                } & constraint.roles
                if len(hit) >= constraint.cardinality:
                    yield _conflict_finding(
                        ctx, constraint, role, sorted(hit, key=str),
                        Severity.WARNING, "reaches",
                    )


def _conflict_finding(ctx, constraint, subject, roles, severity, verb):
    repair = None
    for successor in sorted(ctx.policy.graph.successors(subject), key=str):
        reached = ctx.policy.descendants(successor)
        if any(role in reached for role in roles):
            repair = f"revoke({subject}, {successor})"
            break
    names = ", ".join(str(role) for role in roles)
    return Finding(
        "constraint-conflict", severity, subject, tuple(roles),
        f"{type(subject).__name__.lower()} {subject} {verb} "
        f"{len(roles)} roles of separation set {constraint.name}: {names}",
        repair,
    )


@_rule(
    "irrevocable-authority", Severity.WARNING,
    "grantable pairs with no reachable revocation privilege",
)
def _irrevocable_authority(ctx: LintContext) -> Iterator[Finding]:
    policy = ctx.policy
    graph = policy.graph
    if ctx.compiled:
        bits = policy.bits
        grants = ctx.decode(ctx.reach_union & bits.grant_entity_mask)
        revocable = frozenset(
            privilege.edge
            for privilege in ctx.decode(
                ctx.reach_union & bits.revoke_entity_mask
            )
        )
    else:
        grants = sorted(
            (
                item for item in ctx.reach_union
                if isinstance(item, Grant)
                and isinstance(item.target, (User, Role))
            ),
            key=str,
        )
        revocable = frozenset(
            item.edge
            for item in ctx.reach_union
            if isinstance(item, Revoke)
            and isinstance(item.target, (User, Role))
        )
    for privilege in grants:
        sources, targets = ctx.rectangle(privilege)
        total = len(sources) * len(targets)
        if total == 0:
            continue
        source_set, target_set = set(sources), set(targets)
        covered = sum(
            1 for source, target in revocable
            if source in source_set and target in target_set
        )
        exposed = total - covered
        ctx.count("irrevocable-authority", "pairs_checked", total)
        if exposed <= 0:
            continue
        witness = None
        for source in sources:
            for target in targets:
                if (source, target) not in revocable:
                    witness = (source, target)
                    break
            if witness:
                break
        holders = sorted(graph.predecessors(privilege), key=str)
        repair = (
            f"grant({holders[0]}, revoke({witness[0]}, {witness[1]}))"
            if holders and witness else None
        )
        yield Finding(
            "irrevocable-authority", Severity.WARNING, privilege,
            witness or (),
            f"{privilege} makes {exposed} of {total} pair(s) grantable "
            "with no reachable revocation privilege",
            repair,
        )


@_rule(
    "self-escalation", Severity.ERROR,
    "subject can grant itself an unheld privilege in one step",
)
def _self_escalation(ctx: LintContext) -> Iterator[Finding]:
    """For each user ``u`` and each grant privilege ``u`` holds: a
    single authorized grant of an edge ``(v, v')`` with ``u ->φ v``
    (the new authority flows back to ``u``) and some privilege below
    ``v'`` that ``u`` does not already reach is a one-step
    self-escalation — the depth-1 safety witness ``can_obtain`` would
    find, read directly off the rectangle masks."""
    priv_target_grants = _priv_target_grants(ctx.policy)
    for user in ctx.users:
        for privilege, witness in _user_escalations(
            ctx, user, priv_target_grants
        ):
            yield _escalation_finding(ctx, user, privilege, witness)


def _priv_target_grants(policy: Policy) -> list[Grant]:
    """Assigned grants whose target is itself a privilege term."""
    return sorted(
        (
            privilege
            for privilege in policy.admin_privileges()
            if isinstance(privilege, Grant)
            and is_privilege(privilege.target)
        ),
        key=str,
    )


def _user_escalations(
    ctx: LintContext,
    user: User,
    priv_target_grants: list[Grant] | None = None,
) -> Iterator[tuple[Grant, tuple]]:
    """One-step self-escalations for ``user``: ``(privilege,
    witness)`` pairs in the order the ``self-escalation`` rule reports
    them.  Shared with the repair planner, which must re-derive
    exactly the escalation a finding reported to sever its route."""
    policy = ctx.policy
    graph = policy.graph
    vid = graph._vid
    if priv_target_grants is None:
        priv_target_grants = _priv_target_grants(policy)

    if ctx.compiled:
        bits = policy.bits
        reach = policy.descendants_bits(user)
        held_grants = ctx.decode(reach & bits.grant_entity_mask)
    else:
        reach = policy.descendants(user)
        held_grants = sorted(
            (
                item for item in reach
                if isinstance(item, Grant)
                and isinstance(item.target, (User, Role))
            ),
            key=str,
        )
    for privilege in held_grants:
        sources, targets = ctx.rectangle(privilege)
        if ctx.compiled:
            routable = [
                source for source in sources
                if source in graph and reach >> vid[source] & 1
            ]
        else:
            routable = [
                source for source in sources if source in reach
            ]
        if not routable:
            continue
        route = routable[0]
        witness = None
        for target in targets:
            if target not in graph:
                continue
            if ctx.compiled:
                if reach >> vid[target] & 1:
                    continue
                gained = (
                    ctx.reachable_privileges_from(target) & ~reach
                )
                if gained:
                    witness = (route, target, ctx.decode(gained)[0])
                    break
            else:
                if target in reach:
                    continue
                gained = ctx.reachable_privileges_from(target) - reach
                if gained:
                    witness = (
                        route, target, min(gained, key=str)
                    )
                    break
        if witness:
            yield privilege, witness
    for privilege in priv_target_grants:
        if ctx.compiled:
            priv_id = vid.get(privilege)
            if priv_id is None or not reach >> priv_id & 1:
                continue
            source_id = vid.get(privilege.source)
            if source_id is None or not reach >> source_id & 1:
                continue
            target_id = vid.get(privilege.target)
            if target_id is not None and reach >> target_id & 1:
                continue
        else:
            if privilege not in reach:
                continue
            if privilege.source not in reach:
                continue
            if privilege.target in reach:
                continue
        yield privilege, (
            privilege.source, privilege.target, privilege.target
        )


def _escalation_finding(ctx, user, privilege, witness) -> Finding:
    route, target, gained = witness
    holders = sorted(ctx.policy.graph.predecessors(privilege), key=str)
    return Finding(
        "self-escalation", Severity.ERROR, user, witness,
        f"user {user} holds {privilege} and can grant "
        f"({route} -> {target}) to obtain {gained} it does not hold",
        f"revoke({holders[0]}, {privilege})" if holders else None,
    )


@_rule(
    "unreachable-under-ssd", Severity.WARNING,
    "granted privilege no SSD-compliant session can activate",
)
def _unreachable_under_ssd(ctx: LintContext) -> Iterator[Finding]:
    """A privilege some user reaches on paper, but which no compliant
    session can ever activate: every role that reaches it collides
    with a declared SSD separation set when activated on its own.

    Single-role sessions suffice as the compliance probe: privilege
    reach is monotone in the activated role set, so a privilege is
    activatable by *some* compliant session iff it is activatable by a
    compliant session of one role — and adding roles to a session only
    ever adds separation-set hits, never removes them.
    """
    if not ctx.constraints:
        return
    policy = ctx.policy
    graph = policy.graph
    constraints = sorted(ctx.constraints, key=lambda c: c.name)
    if ctx.compiled:
        bits = policy.bits
        vid = graph._vid
        set_masks = []
        for constraint in constraints:
            mask = 0
            for role in constraint.roles:
                index = vid.get(role)
                if index is not None:
                    mask |= 1 << index
            set_masks.append((mask, constraint.cardinality))
        granted = ctx.reach_union & bits.privileges_mask
        if not granted:
            return
        activatable = 0
        for role in ctx.decode(ctx.reach_union & bits.roles_mask):
            descendants = policy.descendants_bits(role)
            if any(
                (descendants & mask).bit_count() >= cardinality
                for mask, cardinality in set_masks
            ):
                ctx.count("unreachable-under-ssd", "conflicted_roles")
                continue
            activatable |= descendants & bits.privileges_mask
        flagged = ctx.decode(granted & ~activatable)
    else:
        granted_set = {
            item for item in ctx.reach_union if is_privilege(item)
        }
        if not granted_set:
            return
        activatable_set: set = set()
        reachable_roles = sorted(
            (item for item in ctx.reach_union if isinstance(item, Role)),
            key=str,
        )
        for role in reachable_roles:
            descendants = policy.descendants(role)
            role_descendants = {
                item for item in descendants if isinstance(item, Role)
            }
            if any(
                len(role_descendants & constraint.roles)
                >= constraint.cardinality
                for constraint in constraints
            ):
                ctx.count("unreachable-under-ssd", "conflicted_roles")
                continue
            activatable_set |= {
                item for item in descendants if is_privilege(item)
            }
        flagged = sorted(granted_set - activatable_set, key=str)
    for privilege in flagged:
        assigners = sorted(graph.predecessors(privilege), key=str)
        repair = (
            f"revoke({assigners[0]}, {privilege})" if assigners else None
        )
        yield Finding(
            "unreachable-under-ssd", Severity.WARNING, privilege,
            tuple(assigners),
            f"privilege {privilege} is granted but every role reaching "
            "it violates a separation set when activated alone",
            repair,
        )


@_rule(
    "depth-k-escalation", Severity.ERROR,
    "multi-step self-escalation within the exploration depth bound",
)
def _depth_k_escalation(ctx: LintContext) -> Iterator[Finding]:
    """A user who can obtain an unheld privilege by chaining *several*
    grants — the witness ``self-escalation`` cannot see, found by
    bounded exploration of the grant-only transition system on the
    shared :class:`~repro.core.explore.ExplorationEngine` (push/pop,
    not per-state copies).  Users whose shallowest escalation is one
    step are reported by ``self-escalation`` and skipped here; the
    depth bound is ``LintContext.escalation_depth`` (default 2).
    """
    policy = ctx.policy
    graph = policy.graph
    depth = ctx.escalation_depth
    if depth < 2:
        return
    universe_edges = _grant_closure_edges(policy)
    if not universe_edges:
        return
    assigned_grants = sorted(
        (
            privilege
            for privilege in policy.admin_privileges()
            if isinstance(privilege, Grant)
        ),
        key=str,
    )
    if not assigned_grants:
        return
    if ctx.compiled:
        vid = graph._vid
        grant_mask = 0
        for privilege in assigned_grants:
            index = vid.get(privilege)
            if index is not None:
                grant_mask |= 1 << index
    for user in ctx.users:
        # A first step needs an initially reachable grant privilege —
        # prune users who hold none before paying for an engine.
        if ctx.compiled:
            if not policy.descendants_bits(user) & grant_mask:
                continue
        else:
            reach = policy.descendants(user)
            if not any(
                privilege in reach for privilege in assigned_grants
            ):
                continue
        ctx.count("depth-k-escalation", "users_probed")
        found = _min_grant_escalation(
            policy, user, depth, ctx.compiled, universe_edges
        )
        if found is None:
            continue
        commands, gained = found
        if len(commands) < 2:
            # One-step escalations are the self-escalation rule's
            # domain; reporting them twice would double-count.
            continue
        steps = tuple(
            command.requested_privilege() for command in commands
        )
        first = steps[0]
        holders = (
            sorted(graph.predecessors(first), key=str)
            if first in graph else []
        )
        chain = ", ".join(str(term) for term in steps)
        yield Finding(
            "depth-k-escalation", Severity.ERROR, user,
            steps + (gained,),
            f"user {user} obtains {gained} it does not hold via "
            f"{len(steps)} chained grants ({chain})",
            f"revoke({holders[0]}, {first})" if holders else None,
        )


def _grant_closure_edges(policy: Policy) -> list[tuple]:
    """Edges of every Grant subterm in the policy's closure — the
    state-independent grant-command universe for depth-k exploration
    (grant commands can only introduce privileges from this set, see
    :meth:`~repro.core.policy.Policy.subterm_closure`)."""
    return sorted(
        {
            privilege.edge
            for privilege in policy.subterm_closure()
            if isinstance(privilege, Grant)
        },
        key=lambda edge: (str(edge[0]), str(edge[1])),
    )


def _min_grant_escalation(
    policy: Policy,
    user: User,
    depth: int,
    compiled: bool,
    universe_edges: list[tuple] | None = None,
) -> tuple[tuple, object] | None:
    """Breadth-first search of the grant-only transition system for
    the shallowest state where ``user`` reaches a privilege it cannot
    reach initially; returns ``(commands, gained)`` — the witnessing
    command path and the least gained privilege by ``str`` — or None
    when no state within ``depth`` steps escalates.

    Grant-only exploration is sound for minimality: privilege reach is
    monotone in the edge set, so a revoke can never *create* an
    escalation that a grant-only prefix would miss.  The compiled path
    explores one mutable engine via push/pop; the frozenset path
    re-derives the same frontier with per-state copies.  Candidate
    order, authorization semantics, and value-keyed state dedup are
    identical, so both return the same witness (fuzz invariant 13).
    """
    if universe_edges is None:
        universe_edges = _grant_closure_edges(policy)
    commands = [
        Command(user, CommandAction.GRANT, source, target)
        for source, target in universe_edges
    ]
    if compiled:
        engine = ExplorationEngine(policy, Mode.STRICT, universe=commands)
        state = engine.policy
        initial = state.descendants_bits(user) & engine.privileges_mask
        seen = {engine.fingerprint}
        queue: deque = deque([()])
        while queue:
            path = queue.popleft()
            engine.goto(path)
            for command in engine.effective_commands():
                engine.push(command)
                fingerprint = engine.fingerprint
                if fingerprint in seen:
                    engine.pop()
                    continue
                seen.add(fingerprint)
                gained = (
                    state.descendants_bits(user)
                    & engine.privileges_mask & ~initial
                )
                if gained:
                    vertex_of = state.graph._vertex_of
                    least = sorted(
                        (vertex_of[index] for index in iter_bits(gained)),
                        key=str,
                    )[0]
                    return engine.path, least
                if len(path) + 1 < depth:
                    queue.append(path + (command,))
                engine.pop()
        return None
    initial_set = frozenset(
        item for item in policy.descendants(user) if is_privilege(item)
    )
    start = policy.copy()
    seen_states = {(start.edge_set(), start.vertex_set())}
    frontier: deque = deque([(start, ())])
    while frontier:
        state, path = frontier.popleft()
        for command in commands:
            if state.graph.has_edge(command.source, command.target):
                continue
            wanted = command.requested_privilege()
            if wanted is None:
                continue
            if wanted not in state.descendants(user):
                continue
            child = state.copy()
            child.add_edge(command.source, command.target)
            signature = (child.edge_set(), child.vertex_set())
            if signature in seen_states:
                continue
            seen_states.add(signature)
            gained_set = frozenset(
                item for item in child.descendants(user)
                if is_privilege(item)
            ) - initial_set
            if gained_set:
                return path + (command,), min(gained_set, key=str)
            if len(path) + 1 < depth:
                frontier.append((child, path + (command,)))
    return None


@_rule(
    "redundant-delegation", Severity.INFO,
    "edge implied by the transitive closure; removal preserves authorizes",
)
def _redundant_delegation(ctx: LintContext) -> Iterator[Finding]:
    """An edge ``(a, b)`` with ``b`` still reachable from ``a`` after
    the edge's removal is implied by the rest of the policy: every
    path through it reroutes, so the *entire* reachability relation —
    and with it every authorization — is preserved.  Each candidate is
    probed exactly (remove, test, re-add — the policy is restored
    verbatim) and then verified against the authorization index:
    the held-privilege sets of every user upstream of ``a``, and the
    effective authority of a bounded sample of them, must be
    unchanged by the removal.  Findings that fail verification are
    dropped and counted as refuted (none should ever be)."""
    policy = ctx.policy
    graph = policy.graph
    index = ctx.index
    edges = sorted(policy.edge_set(), key=lambda e: (str(e[0]), str(e[1])))
    for source, target in edges:
        if is_privilege(target) and graph.in_degree(target) == 1:
            # Sole assignment: removal would garbage-collect the
            # privilege vertex; never redundant.
            continue
        # Cheap necessary condition: some other out-edge of ``source``
        # already reaches ``target`` (possibly via a cycle through the
        # candidate edge, hence the exact probe below).
        if ctx.compiled:
            target_id = graph._vid[target]
            likely = any(
                policy.descendants_bits(successor) >> target_id & 1
                for successor in graph.successors(source)
                if successor != target
            )
        else:
            likely = any(
                target in policy.descendants(successor)
                for successor in graph.successors(source)
                if successor != target
            )
        if not likely:
            continue
        ctx.count("redundant-delegation", "candidates")
        if ctx.compiled:
            upstream = ctx.decode(
                ancestors_bits(graph, source) & policy.bits.users_mask
            )
        else:
            upstream = sorted(
                (
                    vertex
                    for vertex in _frozen_ancestors(graph, source)
                    if isinstance(vertex, User)
                ),
                key=str,
            )
        before_held = {
            user: index.held_privileges(user) for user in upstream
        }
        before_authority = {
            user: index.effective_authority(user)
            for user in upstream[:8]
        }
        policy.remove_edge(source, target)
        try:
            if ctx.compiled:
                still = bool(
                    policy.descendants_bits(source)
                    >> graph._vid[target] & 1
                )
            else:
                still = target in policy.descendants(source)
            if not still:
                continue
            verified = all(
                index.held_privileges(user) == before_held[user]
                for user in upstream
            ) and all(
                index.effective_authority(user) == before_authority[user]
                for user in before_authority
            )
            if not verified:
                ctx.count("redundant-delegation", "refuted")
                continue
            ctx.count("redundant-delegation", "verified")
            reroute = next(
                successor
                for successor in sorted(graph.successors(source), key=str)
                if policy.reaches(successor, target)
            )
        finally:
            policy.add_edge(source, target)
        yield Finding(
            "redundant-delegation", Severity.INFO, source,
            (source, target, reroute),
            f"edge ({source} -> {target}) is implied by the rest of the "
            f"policy (reroutes via {reroute}); removing it preserves "
            "every authorization",
            f"revoke({source}, {target})",
        )


__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "Severity",
    "lint_policy",
]
