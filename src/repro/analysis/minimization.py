"""Policy minimization: least-privilege hygiene tooling.

Example 3 and Theorem 1 are about making policies *smaller without
breaking anyone's work*.  This module turns that into maintenance
tooling:

* :func:`redundant_edges` — edges whose removal changes no granted
  (subject, user-privilege) pair: dead wood (duplicate paths,
  unreachable privilege assignments, vacuous hierarchy links);
* :func:`canonicalize` — greedily strip redundant edges until none
  remain; the result is mutually-refining with the input
  (Definition-6 equivalent) and edge-minimal w.r.t. single removals;
* :func:`lowering_opportunities` — UA edges that can be pushed *down*
  the hierarchy without changing the user's privileges (the Example-3
  "move Diana from staff to nurse" rearrangement, automated).  Each
  opportunity is justified: it is exactly a refinement-preserving
  replacement.

All three preserve administrative privileges untouched unless they are
themselves unreachable — weakening admin privileges is Theorem 1's
job (:func:`repro.core.refinement.enumerate_weakenings`), not a
hygiene pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.refinement import granted_pairs


def redundant_edges(policy: Policy) -> list[tuple[object, object]]:
    """Edges whose individual removal leaves granted_pairs unchanged.

    Note: redundancy is not closed under combination (two parallel
    paths are each individually redundant but not jointly);
    :func:`canonicalize` handles the iteration.
    """
    baseline = granted_pairs(policy)
    redundant = []
    for edge in sorted(policy.edge_set(), key=str):
        probe = policy.copy()
        probe.remove_edge(*edge)
        if granted_pairs(probe) == baseline:
            redundant.append(edge)
    return redundant


def canonicalize(
    policy: Policy,
    preserve_user_assignments: bool = False,
) -> tuple[Policy, list[tuple[object, object]]]:
    """Strip redundant edges until a fixpoint.

    Returns the minimized policy and the list of removed edges, in
    removal order.  The result grants exactly the same pairs as the
    input (asserted by the tests as mutual refinement) and no single
    further removal is redundant.

    Two deliberate conservatisms:

    * Administrative privilege assignments are always preserved —
      administrative authority is not "granted pairs", so stripping it
      would change behaviour.
    * With ``preserve_user_assignments=True``, UA edges are kept even
      when authority-redundant: a junior membership that duplicates a
      senior one (e.g. Figure 1's ``diana -> nurse`` next to
      ``diana -> staff``) grants nothing new, but it is what lets the
      user run a least-privilege *session* with only the junior role
      active.  The default reports such edges as removable because
      they genuinely are, authority-wise — the caller decides.
    """
    from ..core.privileges import AdminPrivilege

    current = policy.copy()
    removed: list[tuple[object, object]] = []
    baseline = granted_pairs(policy)
    changed = True
    while changed:
        changed = False
        for edge in sorted(current.edge_set(), key=str):
            source, target = edge
            if isinstance(target, AdminPrivilege):
                continue  # keep administrative authority intact
            if preserve_user_assignments and isinstance(source, User):
                continue
            probe = current.copy()
            probe.remove_edge(source, target)
            if granted_pairs(probe) != baseline:
                continue
            # Removing a UA/RH edge may also sever *administrative*
            # reachability; keep the edge if any admin privilege would
            # become unreachable from a user that reaches it now.
            if _severs_admin_authority(current, probe):
                continue
            current = probe
            removed.append(edge)
            changed = True
    return current, removed


def _severs_admin_authority(before: Policy, after: Policy) -> bool:
    for user in before.users():
        held_before = before.reachable_admin_privileges(user)
        if held_before and before.reachable_admin_privileges(user) != \
                after.reachable_admin_privileges(user):
            return True
    return False


@dataclass(frozen=True)
class LoweringOpportunity:
    """A UA edge that can move down the hierarchy without changing the
    user's privileges."""

    user: User
    current_role: Role
    lower_role: Role

    def __str__(self) -> str:
        return (
            f"{self.user} can be moved from {self.current_role} down to "
            f"{self.lower_role} without losing any privilege"
        )


def lowering_opportunities(policy: Policy) -> list[LoweringOpportunity]:
    """Example-3 rearrangements, automated.

    For each UA edge ``(u, r)``: find the *junior-most* roles ``r'``
    below ``r`` such that replacing the edge with ``(u, r')`` leaves
    u's privileges (and held admin privileges) unchanged.  Only
    strictly lower roles are reported.
    """
    opportunities: list[LoweringOpportunity] = []
    for user, role in sorted(policy.ua_edges(), key=str):
        user_privs = policy.authorized_privileges(user)
        user_admin = policy.reachable_admin_privileges(user)
        best: Role | None = None
        for candidate in sorted(policy.descendants(role), key=str):
            if not isinstance(candidate, Role) or candidate == role:
                continue
            probe = policy.copy()
            probe.remove_edge(user, role)
            probe.assign_user(user, candidate)
            if (
                probe.authorized_privileges(user) == user_privs
                and probe.reachable_admin_privileges(user) == user_admin
            ):
                if best is None or policy.reaches(best, candidate):
                    best = candidate
        if best is not None:
            opportunities.append(LoweringOpportunity(user, role, best))
    return opportunities
