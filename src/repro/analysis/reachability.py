"""Administrative reachability: what can a policy evolve into?

Explores the policy-state space induced by Definition 5's transition
function over the finite candidate command universe, up to a depth
bound.  On top of the raw exploration two questions are answered:

* :func:`reachable_policies` — every distinct policy state reachable
  within the bound (with a shortest witness queue each);
* :func:`obtainable_pairs` — the union, over reachable states, of the
  (subject, user-privilege) pairs granted — i.e. everything anyone
  could *ever* be allowed to do if administrators act within the bound.

These are the primitives behind the safety checker
(:mod:`repro.analysis.safety`), the Remark-2 conjecture tests, and the
strict-vs-refined flexibility benchmarks.

``compiled=True`` (default) explores on the
:class:`~repro.core.explore.ExplorationEngine` — apply/undo log,
bitmask candidate pruning, canonical fingerprint deduplication — and
copies a policy only per *distinct* reachable state (the returned
:class:`ReachableState` needs one), never per candidate probe.
``compiled=False`` keeps the frozenset oracle.  State identity covers
the vertex set as well as the edge set in both representations,
matching ``Policy.__eq__`` (two states that differ only in an isolated
vertex — a user deprovisioned and re-added with no memberships — are
distinct policies).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.commands import Command, Mode, candidate_commands, step
from ..core.entities import User
from ..core.explore import ExplorationEngine
from ..core.ordering import OrderingOracle
from ..core.policy import Policy
from ..core.privileges import UserPrivilege
from ..core.refinement import granted_pairs


@dataclass(frozen=True)
class ReachableState:
    """One reachable policy state with a shortest witness queue."""

    policy: Policy
    witness: tuple[Command, ...]

    @property
    def depth(self) -> int:
        return len(self.witness)


def reachable_policies(
    policy: Policy,
    depth: int,
    mode: Mode = Mode.STRICT,
    users: list[User] | None = None,
    max_states: int = 100_000,
    compiled: bool = True,
) -> list[ReachableState]:
    """BFS over policy states via effective commands, up to ``depth``.

    States are deduplicated by (vertex set, edge set) identity; each is
    returned with a shortest queue reaching it.  ``max_states`` is a
    hard cap guarding against exponential blow-ups on large inputs.
    """
    if compiled:
        return _reachable_policies_compiled(
            policy, depth, mode, users, max_states
        )
    universe = candidate_commands(policy, mode, users)
    start = policy.copy()
    seen: set[tuple[frozenset, frozenset]] = {
        (start.edge_set(), start.vertex_set())
    }
    states: list[ReachableState] = [ReachableState(start, ())]
    frontier: deque[ReachableState] = deque(states)
    while frontier:
        current = frontier.popleft()
        if current.depth == depth:
            continue
        for command in universe:
            probe = current.policy.copy()
            record = step(probe, command, mode, OrderingOracle(probe))
            if not record.executed:
                continue
            signature = (probe.edge_set(), probe.vertex_set())
            if signature in seen:
                continue
            seen.add(signature)
            state = ReachableState(probe, current.witness + (command,))
            states.append(state)
            if len(states) >= max_states:
                return states
            frontier.append(state)
    return states


def _reachable_policies_compiled(
    policy: Policy,
    depth: int,
    mode: Mode,
    users: list[User] | None,
    max_states: int,
) -> list[ReachableState]:
    """Undo-log BFS: frontier nodes are witness paths, snapshots are
    taken only for the distinct states actually returned."""
    engine = ExplorationEngine(policy, mode, users)
    seen = {engine.fingerprint}
    states: list[ReachableState] = [ReachableState(engine.snapshot(), ())]
    frontier: deque[tuple[Command, ...]] = deque([()])
    while frontier:
        path = frontier.popleft()
        if len(path) == depth:
            continue
        engine.goto(path)
        for command in engine.effective_commands():
            engine.push(command)
            signature = engine.fingerprint
            if signature in seen:
                engine.pop()
                continue
            seen.add(signature)
            witness = path + (command,)
            states.append(ReachableState(engine.snapshot(), witness))
            if len(states) >= max_states:
                return states
            frontier.append(witness)
            engine.pop()
    return states


def obtainable_pairs(
    policy: Policy,
    depth: int,
    mode: Mode = Mode.STRICT,
    users: list[User] | None = None,
    compiled: bool = True,
) -> frozenset[tuple[object, UserPrivilege]]:
    """All (subject, user-privilege) pairs granted in *some* policy
    state reachable within ``depth`` administrative steps."""
    pairs: set[tuple[object, UserPrivilege]] = set()
    for state in reachable_policies(policy, depth, mode, users,
                                    compiled=compiled):
        pairs |= granted_pairs(state.policy)
    return frozenset(pairs)


def newly_obtainable_pairs(
    policy: Policy,
    depth: int,
    mode: Mode = Mode.STRICT,
    compiled: bool = True,
) -> frozenset[tuple[object, UserPrivilege]]:
    """Pairs obtainable through administration but not granted by the
    initial policy — the "administrative surface" of the policy."""
    return obtainable_pairs(
        policy, depth, mode, compiled=compiled
    ) - granted_pairs(policy)
