"""Lint-to-repair: executable, refinement-gated repair plans.

PR 6's lint pass reports findings whose ``repair`` field is a string
in the paper's term notation — advisory, not executable.  This module
closes the loop: every registered lint rule has a **repair planner**
that turns a finding into a typed :class:`RepairPlan` (a concrete
mutation sequence over the policy graph), and :func:`repair_policy`
applies plans one at a time under two verification gates, through an
exact apply/undo log in the style of the exploration engine:

* **refinement gate** — the repaired policy must *refine* the
  pre-plan policy (Definition 6: no subject reaches a privilege it
  could not reach before).  :func:`repro.core.refinement.
  refinement_counterexample` is the oracle; a violating plan is rolled
  back and rejected with the counterexample attached.  Shipped
  planners only ever remove edges and vertices, which refines by
  construction (the paper's Example 3), so the gate is a safety net —
  but it runs on the real checker every time, so a future planner
  that *adds* authority cannot slip through.
* **monotone-shrink gate** — after applying a plan the policy is
  re-linted; the finding set must strictly shrink and must not
  contain any finding absent before the plan.  A plan that resolves
  its finding but surfaces a new one gets a bounded chance to extend
  itself (planning the fresh findings too — e.g. deprovisioning a
  dead role may expose a now-dormant privilege); if fresh findings
  survive the extension budget, everything is rolled back and the
  plan is rejected.

Iterating apply-and-re-lint to a fixed point yields
``repro lint --fix``: on every shipped fixture the loop converges
with zero findings remaining, every applied plan refining the
original policy.  Fuzz invariant 13 (:func:`repro.workloads.fuzz.
fuzz_repair`) pins the compiled and frozenset repair runs — plan
sequences, outcomes, and the final repaired policy — identical under
churn and vertex-ID recycling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import is_privilege
from ..core.refinement import refinement_counterexample
from ..errors import AnalysisError
from .constraints import SsdConstraint
from .lint import (
    Finding,
    LintContext,
    LintReport,
    Severity,
    _escalation_finding,
    _min_grant_escalation,
    _user_escalations,
    lint_policy,
)

__all__ = [
    "PLANNERS",
    "RepairAction",
    "RepairOutcome",
    "RepairPlan",
    "RepairReport",
    "apply_plan",
    "plan_repair",
    "repair_policy",
]


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairAction:
    """One graph mutation of a repair plan.

    ``kind`` is ``remove-edge`` (revoke an assignment / membership /
    inheritance edge), ``remove-role`` (deprovision a role with all
    its edges), or ``add-edge`` (grant an edge — representable so the
    refinement gate has something real to reject; no shipped planner
    emits one).
    """

    kind: str
    source: object
    target: object | None = None

    def render(self) -> str:
        if self.kind == "remove-edge":
            return f"revoke({self.source}, {self.target})"
        if self.kind == "add-edge":
            return f"grant({self.source}, {self.target})"
        return f"deprovision({self.source})"


@dataclass(frozen=True)
class RepairPlan:
    """An executable repair for one finding: the rule that planned it,
    the finding it resolves, and the mutation sequence to apply."""

    rule: str
    finding: Finding
    actions: tuple[RepairAction, ...]
    note: str = ""

    def render(self) -> str:
        steps = "; ".join(action.render() for action in self.actions)
        return f"{self.rule}: {steps}"

    def signature(self) -> tuple:
        """Value identity across kernels (fuzz invariant 13)."""
        return (
            self.rule,
            self.finding.sort_key,
            tuple(
                (action.kind, str(action.source), str(action.target))
                for action in self.actions
            ),
        )


# ----------------------------------------------------------------------
# Planner registry — one per lint rule (check_invariants.py enforces
# every RULES entry has a planner here or an explicit no_repair marker)
# ----------------------------------------------------------------------
Planner = Callable[[LintContext, Finding], RepairPlan | None]

PLANNERS: dict[str, Planner] = {}


def _planner(rule_name: str):
    def register(plan: Planner) -> Planner:
        PLANNERS[rule_name] = plan
        return plan
    return register


def plan_repair(
    policy: Policy,
    finding: Finding,
    compiled: bool = True,
    constraints: Iterable[SsdConstraint] = (),
    escalation_depth: int = 2,
) -> RepairPlan | None:
    """Plan a repair for ``finding`` against the *current* ``policy``.

    Returns None when the rule has no planner, or when the finding is
    stale (an earlier plan already removed its subject) or not
    repairable by edge removal (e.g. a conflict the subject's own
    memberships cannot break).  Planners never mutate the policy
    except via exactly-restored probes.
    """
    planner = PLANNERS.get(finding.rule)
    if planner is None:
        return None
    context = LintContext(
        policy, compiled, tuple(constraints), escalation_depth
    )
    return planner(context, finding)


def _remove_edge(source, target) -> RepairAction:
    return RepairAction("remove-edge", source, target)


def _reaches(ctx: LintContext, source, target) -> bool:
    if ctx.compiled:
        index = ctx.policy.graph._vid.get(target)
        if index is None:
            return source == target
        return bool(ctx.policy.descendants_bits(source) >> index & 1)
    return ctx.policy.reaches(source, target)


@_planner("dead-role")
def _plan_dead_role(ctx: LintContext, finding: Finding):
    """Deprovision the unreachable role outright — its assignments are
    authority nobody can exercise, and privileges it solely assigned
    are garbage-collected with it."""
    role = finding.subject
    if not isinstance(role, Role) or role not in ctx.policy.graph:
        return None
    return RepairPlan(
        "dead-role", finding, (RepairAction("remove-role", role),),
        note=f"deprovision dead role {role}",
    )


@_planner("dormant-privilege")
def _plan_dormant_privilege(ctx: LintContext, finding: Finding):
    """Drop every assignment of the dormant privilege; the last
    removal garbage-collects the vertex."""
    privilege = finding.subject
    graph = ctx.policy.graph
    if privilege not in graph:
        return None
    assigners = sorted(graph.predecessors(privilege), key=str)
    if not assigners:
        return None
    return RepairPlan(
        "dormant-privilege", finding,
        tuple(_remove_edge(assigner, privilege) for assigner in assigners),
        note=f"unassign dormant privilege {privilege}",
    )


@_planner("constraint-conflict")
def _plan_constraint_conflict(ctx: LintContext, finding: Finding):
    """Break the separation-set conflict at the cheapest edges: probe
    each of the subject's out-edges (remove, recount, re-add — the
    policy is restored exactly) and greedily drop the one whose
    removal sheds the most conflicting roles, until the subject's hit
    count is below the constraint's cardinality."""
    policy = ctx.policy
    graph = policy.graph
    subject = finding.subject
    if subject not in graph:
        return None
    witness_roles = set(finding.witness)
    constraint = next(
        (
            candidate
            for candidate in sorted(ctx.constraints, key=lambda c: c.name)
            if witness_roles <= candidate.roles
            and len(witness_roles) >= candidate.cardinality
        ),
        None,
    )
    if constraint is None:
        return None

    def hits() -> int:
        if ctx.compiled:
            vid = graph._vid
            mask = 0
            for role in constraint.roles:
                index = vid.get(role)
                if index is not None:
                    mask |= 1 << index
            return (policy.descendants_bits(subject) & mask).bit_count()
        reached = {
            item for item in policy.descendants(subject)
            if isinstance(item, Role)
        }
        return len(reached & constraint.roles)

    removed: list = []
    try:
        while hits() >= constraint.cardinality:
            before = hits()
            best = None
            for successor in sorted(graph.successors(subject), key=str):
                if is_privilege(successor):
                    continue
                policy.remove_edge(subject, successor)
                reduction = before - hits()
                policy.add_edge(subject, successor)
                if reduction > 0 and (
                    best is None or (-reduction, str(successor)) < best[:2]
                ):
                    best = (-reduction, str(successor), successor)
            if best is None:
                # The subject's own memberships cannot break the
                # conflict (e.g. the subject is itself most of the
                # set); leave the finding for a human.
                return None
            policy.remove_edge(subject, best[2])
            removed.append(best[2])
    finally:
        for successor in reversed(removed):
            policy.add_edge(subject, successor)
    if not removed:
        return None
    return RepairPlan(
        "constraint-conflict", finding,
        tuple(_remove_edge(subject, successor) for successor in removed),
        note=f"break separation set {constraint.name} at the cheapest "
             f"edge(s) of {subject}",
    )


@_planner("irrevocable-authority")
def _plan_irrevocable_authority(ctx: LintContext, finding: Finding):
    """Revoke the shadow grant: drop every assignment of the grant
    privilege whose rectangle has no reachable revocation cover."""
    privilege = finding.subject
    graph = ctx.policy.graph
    if privilege not in graph:
        return None
    holders = sorted(graph.predecessors(privilege), key=str)
    if not holders:
        return None
    return RepairPlan(
        "irrevocable-authority", finding,
        tuple(_remove_edge(holder, privilege) for holder in holders),
        note=f"revoke the shadow grant {privilege}",
    )


@_planner("self-escalation")
def _plan_self_escalation(ctx: LintContext, finding: Finding):
    """Sever the one-step escalation route: re-derive the escalation
    the rule reported (same order, same witnesses) and drop the
    assignments of its grant privilege that flow to the subject."""
    user = finding.subject
    if not isinstance(user, User) or user not in ctx.policy.graph:
        return None
    graph = ctx.policy.graph
    for privilege, witness in _user_escalations(ctx, user):
        if _escalation_finding(ctx, user, privilege, witness) != finding:
            continue
        holders = [
            holder
            for holder in sorted(graph.predecessors(privilege), key=str)
            if _reaches(ctx, user, holder)
        ]
        if not holders:
            return None
        return RepairPlan(
            "self-escalation", finding,
            tuple(
                _remove_edge(holder, privilege) for holder in holders
            ),
            note=f"sever {user}'s route to {privilege}",
        )
    return None


@_planner("redundant-delegation")
def _plan_redundant_delegation(ctx: LintContext, finding: Finding):
    """Drop the implied edge — the rule already verified against the
    authorization index that removal preserves every authorization."""
    source, target, _reroute = finding.witness
    if not ctx.policy.has_edge(source, target):
        return None
    return RepairPlan(
        "redundant-delegation", finding,
        (_remove_edge(source, target),),
        note=f"drop implied edge ({source} -> {target})",
    )


@_planner("unreachable-under-ssd")
def _plan_unreachable_under_ssd(ctx: LintContext, finding: Finding):
    """The privilege is dead weight under the declared separation
    sets: drop every assignment (garbage-collecting the vertex)."""
    privilege = finding.subject
    graph = ctx.policy.graph
    if privilege not in graph:
        return None
    assigners = sorted(graph.predecessors(privilege), key=str)
    if not assigners:
        return None
    return RepairPlan(
        "unreachable-under-ssd", finding,
        tuple(_remove_edge(assigner, privilege) for assigner in assigners),
        note=f"unassign {privilege}: no compliant session activates it",
    )


@_planner("depth-k-escalation")
def _plan_depth_k_escalation(ctx: LintContext, finding: Finding):
    """Sever the multi-step escalation at its first link, then re-run
    the bounded exploration and keep severing until no escalation
    within the depth bound remains — a route-by-route simulation on
    the live policy (rolled back exactly before returning), so the
    emitted plan is complete and the driver's re-lint cannot bounce it
    for merely diverting the escalation onto a sibling route."""
    policy = ctx.policy
    graph = policy.graph
    user = finding.subject
    if not isinstance(user, User) or user not in graph:
        return None
    actions: list[RepairAction] = []
    log = _UndoLog(policy)
    try:
        for _ in range(16):
            found = _min_grant_escalation(
                policy, user, ctx.escalation_depth, ctx.compiled
            )
            if found is None:
                break
            commands, _gained = found
            first = commands[0].requested_privilege()
            holders = [
                holder
                for holder in sorted(graph.predecessors(first), key=str)
                if _reaches(ctx, user, holder)
            ]
            if not holders:
                return None
            for holder in holders:
                action = _remove_edge(holder, first)
                log.apply(action)
                actions.append(action)
        else:
            return None
    finally:
        log.rollback()
    if not actions:
        return None
    return RepairPlan(
        "depth-k-escalation", finding, tuple(actions),
        note=f"sever every depth-{ctx.escalation_depth} escalation "
             f"route of {user}",
    )


# ----------------------------------------------------------------------
# Apply / undo
# ----------------------------------------------------------------------
class _UndoLog:
    """Exact inverse replay for repair actions, the same discipline as
    the exploration engine's apply/undo log: every mutation records
    what it destroyed (including privilege vertices garbage-collected
    by ``Policy.remove_edge`` and the full edge fan of a deprovisioned
    role), and :meth:`rollback` replays the inverses in reverse order,
    restoring the policy to value equality."""

    def __init__(self, policy: Policy):
        self.policy = policy
        self._log: list[tuple] = []

    def apply(self, action: RepairAction) -> None:
        policy = self.policy
        graph = policy.graph
        if action.kind == "remove-edge":
            if not graph.has_edge(action.source, action.target):
                return  # already gone (stale cascade step): no-op
            policy.remove_edge(action.source, action.target)
            self._log.append(("readd-edge", action.source, action.target))
        elif action.kind == "add-edge":
            if graph.has_edge(action.source, action.target):
                return
            source_new = action.source not in graph
            target_new = (
                action.target not in graph
                and action.target != action.source
            )
            policy.add_edge(action.source, action.target)
            self._log.append(
                ("unadd-edge", action.source, action.target,
                 source_new, target_new)
            )
        elif action.kind == "remove-role":
            role = action.source
            if role not in graph:
                return
            incoming = sorted(
                ((pred, role) for pred in graph.predecessors(role)),
                key=lambda e: (str(e[0]), str(e[1])),
            )
            outgoing = sorted(
                ((role, succ) for succ in graph.successors(role)),
                key=lambda e: (str(e[0]), str(e[1])),
            )
            policy.remove_role(role)
            self._log.append(("readd-role", role, incoming, outgoing))
        else:
            raise AnalysisError(f"unknown repair action kind {action.kind!r}")

    def rollback(self) -> None:
        policy = self.policy
        graph = policy.graph
        while self._log:
            record = self._log.pop()
            if record[0] == "readd-edge":
                # add_edge re-introduces a garbage-collected privilege
                # target along with the edge.
                policy.add_edge(record[1], record[2])
            elif record[0] == "unadd-edge":
                _kind, source, target, source_new, target_new = record
                policy.remove_edge(source, target)
                if target_new and target in graph:
                    graph.remove_vertex(target)
                if source_new and source in graph:
                    graph.remove_vertex(source)
            else:
                _kind, role, incoming, outgoing = record
                policy.add_role(role)
                for source, target in incoming:
                    policy.add_edge(source, target)
                for source, target in outgoing:
                    policy.add_edge(source, target)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
#: outcome statuses, in the order the gates run
APPLIED = "applied"
REJECTED_NOT_REFINEMENT = "rejected-not-refinement"
REJECTED_NEW_FINDINGS = "rejected-new-findings"
REJECTED_NO_PROGRESS = "rejected-no-progress"


@dataclass(frozen=True)
class RepairOutcome:
    """What happened to one plan: applied, or rejected by a gate (with
    the refinement counterexample / fresh findings attached)."""

    plan: RepairPlan
    status: str
    counterexample: str | None = None
    new_findings: tuple[Finding, ...] = ()
    cascades: tuple[RepairPlan, ...] = ()

    def signature(self) -> tuple:
        return (
            self.plan.signature(),
            self.status,
            self.counterexample,
            tuple(finding.sort_key for finding in self.new_findings),
            tuple(plan.signature() for plan in self.cascades),
        )

    def render(self) -> str:
        text = f"{self.status:24} {self.plan.render()}"
        for cascade in self.cascades:
            text += f"\n{'':24} + cascade {cascade.render()}"
        if self.counterexample:
            text += f"\n{'':24} ! {self.counterexample}"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.plan.rule,
            "finding": self.plan.finding.as_dict(),
            "status": self.status,
            "actions": [action.render() for action in self.plan.actions],
            "cascades": [plan.render() for plan in self.cascades],
            "counterexample": self.counterexample,
            "new_findings": [
                finding.as_dict() for finding in self.new_findings
            ],
        }


@dataclass(frozen=True)
class RepairReport:
    """One :func:`repair_policy` run: the repaired policy, the lint
    reports bracketing it, and every plan's outcome in order."""

    policy: Policy
    initial: LintReport
    final: LintReport
    outcomes: tuple[RepairOutcome, ...]
    iterations: int
    fixpoint: bool
    compiled: bool = True
    severity: Severity = Severity.INFO

    @property
    def applied(self) -> tuple[RepairOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.status == APPLIED
        )

    @property
    def rejected(self) -> tuple[RepairOutcome, ...]:
        return tuple(
            outcome for outcome in self.outcomes
            if outcome.status != APPLIED
        )

    @property
    def remaining(self) -> tuple[Finding, ...]:
        return self.final.at_or_above(self.severity)

    @property
    def clean(self) -> bool:
        return not self.remaining

    def as_dict(self) -> dict:
        return {
            "compiled": self.compiled,
            "severity": self.severity.label,
            "iterations": self.iterations,
            "fixpoint": self.fixpoint,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "initial_findings": [
                finding.as_dict() for finding in self.initial.findings
            ],
            "remaining_findings": [
                finding.as_dict() for finding in self.final.findings
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def apply_plan(
    policy: Policy,
    plan: RepairPlan,
    current: LintReport,
    rules: Iterable[str] | None = None,
    compiled: bool = True,
    constraints: Iterable[SsdConstraint] = (),
    escalation_depth: int = 2,
    max_cascade: int = 3,
) -> tuple[RepairOutcome, LintReport | None]:
    """Apply one plan to ``policy`` under both gates.

    Mutates ``policy`` only if the plan survives; on any rejection the
    undo log restores it to value equality.  Returns the outcome and,
    when applied, the post-plan lint report (None otherwise).
    """
    rules = list(rules) if rules is not None else None
    reference = policy.copy()
    before = set(current.findings)
    log = _UndoLog(policy)
    for action in plan.actions:
        log.apply(action)
    cascades: list[RepairPlan] = []
    relint = lint_policy(
        policy, rules, compiled, constraints, escalation_depth
    )
    # Bounded self-extension: a plan whose application surfaces fresh
    # findings may plan those too (deprovisioning a dead role can
    # expose a newly dormant privilege, etc.).
    for _ in range(max_cascade):
        fresh = [
            finding for finding in relint.findings
            if finding not in before
        ]
        if not fresh:
            break
        extended = False
        for finding in sorted(
            fresh, key=lambda f: (-f.severity, f.sort_key)
        ):
            sub_plan = plan_repair(
                policy, finding, compiled=compiled,
                constraints=constraints,
                escalation_depth=escalation_depth,
            )
            if sub_plan is None:
                continue
            for action in sub_plan.actions:
                log.apply(action)
            cascades.append(sub_plan)
            extended = True
        if not extended:
            break
        relint = lint_policy(
            policy, rules, compiled, constraints, escalation_depth
        )

    witness = refinement_counterexample(reference, policy)
    if witness is not None:
        log.rollback()
        return (
            RepairOutcome(
                plan, REJECTED_NOT_REFINEMENT, counterexample=str(witness)
            ),
            None,
        )
    fresh = tuple(
        finding for finding in relint.findings if finding not in before
    )
    if fresh:
        log.rollback()
        return (
            RepairOutcome(plan, REJECTED_NEW_FINDINGS, new_findings=fresh),
            None,
        )
    if (
        plan.finding in set(relint.findings)
        or len(relint.findings) >= len(before)
    ):
        log.rollback()
        return RepairOutcome(plan, REJECTED_NO_PROGRESS), None
    return (
        RepairOutcome(plan, APPLIED, cascades=tuple(cascades)),
        relint,
    )


def repair_policy(
    policy: Policy,
    rules: Iterable[str] | None = None,
    compiled: bool = True,
    constraints: Iterable[SsdConstraint] = (),
    severity: Severity = Severity.INFO,
    in_place: bool = False,
    escalation_depth: int = 2,
    max_iterations: int = 12,
    max_cascade: int = 3,
) -> RepairReport:
    """Repair ``policy`` to a re-lint fixed point.

    Each iteration lints, orders the findings at or above ``severity``
    (most severe first, then the deterministic sort key), and tries
    one plan per finding through :func:`apply_plan`'s gates.  The loop
    ends when an iteration applies no plan (either nothing is left at
    the threshold or every remaining finding is unplannable /
    rejected) — by construction a fixed point of the repair operator,
    reported as ``fixpoint=True``; hitting ``max_iterations`` first
    reports ``fixpoint=False``.  The monotone-shrink gate makes the
    loop terminate: every applied plan strictly shrinks the finding
    set, so at most ``len(initial findings)`` applications happen
    across all iterations.

    By default the caller's policy is left untouched (``work`` is a
    copy); ``in_place=True`` repairs the caller's policy directly —
    the fuzz harness uses this to keep exercising recycled interner
    layouts (a copy would re-intern densely).
    """
    rules = list(rules) if rules is not None else None
    work = policy if in_place else policy.copy()
    current = lint_policy(
        work, rules, compiled, constraints, escalation_depth
    )
    initial = current
    outcomes: list[RepairOutcome] = []
    iterations = 0
    fixpoint = False
    for _ in range(max_iterations):
        iterations += 1
        targets = sorted(
            (
                finding for finding in current.findings
                if finding.severity >= severity
            ),
            key=lambda f: (-f.severity, f.sort_key),
        )
        if not targets:
            fixpoint = True
            break
        progress = False
        live = set(current.findings)
        rejected_before: set[tuple] = {
            outcome.plan.signature() for outcome in outcomes
            if outcome.status != APPLIED
        }
        for finding in targets:
            if finding not in live:
                continue  # an earlier plan this pass resolved it
            plan = plan_repair(
                work, finding, compiled=compiled, constraints=constraints,
                escalation_depth=escalation_depth,
            )
            if plan is None:
                continue
            if plan.signature() in rejected_before:
                continue  # same plan was already rejected: don't loop
            outcome, relint = apply_plan(
                work, plan, current, rules, compiled, constraints,
                escalation_depth, max_cascade,
            )
            outcomes.append(outcome)
            if outcome.status == APPLIED:
                current = relint
                live = set(current.findings)
                progress = True
            else:
                rejected_before.add(plan.signature())
        if not progress:
            fixpoint = True
            break
    return RepairReport(
        policy=work,
        initial=initial,
        final=current,
        outcomes=tuple(outcomes),
        iterations=iterations,
        fixpoint=fixpoint,
        compiled=compiled,
        severity=severity,
    )
