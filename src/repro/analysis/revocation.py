"""Experimental revocation orderings (the paper's future work, §6).

The paper: "Revocation privileges are included in our model, but we
have not identified (yet) a separate ordering for revocation
privileges.  We believe that this is an interesting possibility for
further research."

This module explores that direction, clearly marked experimental:

* :func:`revoke_always_weaker` — the candidate suggested by the
  paper's own safety notion.  Under Definition 6, *removing* edges can
  only shrink what subjects reach, so exercising any revocation
  privilege yields a refinement of the pre-state.  Conjecture: any
  privilege assignment may be replaced by a revocation privilege over
  an arbitrary (well-sorted) edge without breaking administrative
  refinement (``psi-universal`` direction).
* :func:`dual_grant_ordering` — the naive structural dual of rule (2)
  (revoking from a *more senior* role removes at least as much), which
  is plausible but needs checking.
* :func:`cross_connective_unsafe` — a deliberately wrong candidate
  (treat a grant as weaker than a revoke) used to validate that the
  falsifier actually finds counterexamples.

:func:`falsify_candidate` hunts for counterexamples with the bounded
Definition-7 checker over a pool of policies; the tests record the
verdicts (the first two survive the explored bounds, the third is
refuted) and EXPERIMENTS.md discusses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.admin_refinement import AdminRefinementResult, check_admin_refinement
from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant, Privilege, Revoke

CandidateOrdering = Callable[[Policy, Privilege, Privilege], bool]
"""``candidate(policy, stronger, weaker) -> bool`` — proposed Ã extension."""


def revoke_always_weaker(
    policy: Policy, stronger: Privilege, weaker: Privilege
) -> bool:
    """Candidate: every revocation privilege is weaker than every
    privilege (exercising it can only shrink the policy)."""
    return isinstance(weaker, Revoke)


def dual_grant_ordering(
    policy: Policy, stronger: Privilege, weaker: Privilege
) -> bool:
    """Candidate: the structural dual of rule (2) for revocations —
    ``♦(v2, v3) Ã ♦(v1, v4)`` if ``v2 →φ v1`` and ``v4 →φ v3``
    (the "weaker" revocation removes a more senior membership, hence
    at least as much authority)."""
    if not (isinstance(stronger, Revoke) and isinstance(weaker, Revoke)):
        return False
    s_src, s_tgt = stronger.source, stronger.target
    w_src, w_tgt = weaker.source, weaker.target
    if not (isinstance(s_tgt, (User, Role)) and isinstance(w_tgt, (User, Role))):
        return False
    return policy.reaches(s_src, w_src) and policy.reaches(w_tgt, s_tgt)


def cross_connective_unsafe(
    policy: Policy, stronger: Privilege, weaker: Privilege
) -> bool:
    """Deliberately unsound candidate (grant "weaker than" revoke) —
    a positive control for the falsifier."""
    return isinstance(stronger, Revoke) and isinstance(weaker, Grant)


@dataclass(frozen=True)
class FalsificationOutcome:
    """Result of hunting counterexamples for one candidate ordering."""

    candidate_name: str
    substitutions_tried: int
    counterexamples: tuple[tuple[Policy, Role, Privilege, Privilege,
                                 AdminRefinementResult], ...]

    @property
    def survived(self) -> bool:
        return not self.counterexamples


def candidate_substitutions(
    policy: Policy,
    candidate: CandidateOrdering,
) -> Iterable[tuple[Role, Privilege, Privilege]]:
    """All (role, stronger, weaker) substitutions the candidate claims
    are safe, with weaker terms drawn from revoke/grant terms over the
    policy's vertices (top-level pairs only — the falsifier's search
    space, kept finite)."""
    entities = sorted(
        (v for v in policy.vertex_set() if isinstance(v, (User, Role))), key=str
    )
    pool: list[Privilege] = []
    for source in entities:
        for target in entities:
            if isinstance(target, Role):
                if isinstance(source, (User, Role)):
                    pool.append(Revoke(source, target))
                    pool.append(Grant(source, target))
    for role, stronger in sorted(
        policy.admin_privileges_assigned(), key=lambda pair: str(pair)
    ):
        for weaker in pool:
            if weaker != stronger and candidate(policy, stronger, weaker):
                yield (role, stronger, weaker)


def falsify_candidate(
    candidate: CandidateOrdering,
    policies: Iterable[Policy],
    depth: int = 2,
    name: str = "candidate",
    max_substitutions_per_policy: int = 12,
) -> FalsificationOutcome:
    """Try to refute a candidate ordering: for each claimed-safe
    substitution, run the bounded Definition-7 checker and collect
    counterexamples."""
    tried = 0
    counterexamples = []
    for policy in policies:
        for index, (role, stronger, weaker) in enumerate(
            candidate_substitutions(policy, candidate)
        ):
            if index >= max_substitutions_per_policy:
                break
            substituted = policy.copy()
            substituted.remove_edge(role, stronger)
            substituted.assign_privilege(role, weaker)
            tried += 1
            result = check_admin_refinement(policy, substituted, depth=depth)
            if not result.holds:
                counterexamples.append(
                    (policy, role, stronger, weaker, result)
                )
    return FalsificationOutcome(
        candidate_name=name,
        substitutions_tried=tried,
        counterexamples=tuple(counterexamples),
    )
