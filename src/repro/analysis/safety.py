"""Safety queries over administrative RBAC policies.

The classical safety question (HRU [7], recast for RBAC): *can subject
``v`` ever obtain user privilege ``p``, given that administrators act
according to the policy?*  The checker explores Definition 5 runs over
the candidate command universe and returns a concrete witness queue
when the answer is yes.

Unlike HRU's analysis, runs here are subject- and order-sensitive:
the witness shows *who* has to act, which is exactly the distinction
footnote 5 of the paper draws.

Two explorers implement the same BFS.  The default (``compiled=True``)
runs on the :class:`~repro.core.explore.ExplorationEngine`: one mutable
policy driven by an apply/undo log, candidate pruning and ``reaches``
probes answered by kernel bitmasks, and state deduplication by
canonical fingerprint.  ``compiled=False`` keeps the frozenset oracle —
``policy.copy()`` per candidate, ``(edge_set, vertex_set)`` signatures
— pinned observationally identical (same verdicts, same witnesses,
same ``states_explored``) by fuzz invariant 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.commands import Command, Mode, candidate_commands, step
from ..core.entities import User
from ..core.explore import ExplorationEngine, reaches_bits
from ..core.ordering import OrderingOracle
from ..core.policy import Policy
from ..core.privileges import UserPrivilege


@dataclass(frozen=True)
class SafetyVerdict:
    """Answer to a safety query."""

    reachable: bool
    witness: tuple[Command, ...] | None
    states_explored: int

    def __bool__(self) -> bool:
        return self.reachable


def can_obtain(
    policy: Policy,
    subject: object,
    privilege: UserPrivilege,
    depth: int = 3,
    mode: Mode = Mode.STRICT,
    acting_users: list[User] | None = None,
    compiled: bool = True,
) -> SafetyVerdict:
    """Can ``subject`` reach ``privilege`` in some policy reachable
    within ``depth`` administrative steps?

    ``acting_users`` restricts who issues commands (the "trusted users
    don't act" refinement of the classical safety question: pass only
    the untrusted users to model their collusion); the restriction is
    threaded into the candidate command universe, so the compiled
    engine's per-state issuer masks never touch excluded users.
    """
    if compiled:
        if reaches_bits(policy, subject, privilege):
            return SafetyVerdict(True, (), 1)
        return _can_obtain_compiled(
            policy, subject, privilege, depth, mode, acting_users
        )
    if policy.reaches(subject, privilege):
        return SafetyVerdict(True, (), 1)
    universe = candidate_commands(policy, mode, acting_users)
    seen = {(policy.edge_set(), policy.vertex_set())}
    frontier: deque[tuple[Policy, tuple[Command, ...]]] = deque(
        [(policy.copy(), ())]
    )
    explored = 1
    while frontier:
        state, witness = frontier.popleft()
        if len(witness) == depth:
            continue
        for command in universe:
            probe = state.copy()
            record = step(probe, command, mode, OrderingOracle(probe))
            if not record.executed:
                continue
            signature = (probe.edge_set(), probe.vertex_set())
            if signature in seen:
                continue
            seen.add(signature)
            explored += 1
            if probe.reaches(subject, privilege):
                return SafetyVerdict(True, witness + (command,), explored)
            frontier.append((probe, witness + (command,)))
    return SafetyVerdict(False, None, explored)


def _can_obtain_compiled(
    policy: Policy,
    subject: object,
    privilege: UserPrivilege,
    depth: int,
    mode: Mode,
    acting_users: list[User] | None,
) -> SafetyVerdict:
    """The undo-log BFS.  Frontier nodes are witness paths; the engine
    replays/undoes along them, so no state is ever copied."""
    engine = ExplorationEngine(policy, mode, acting_users)
    return _can_obtain_on_engine(engine, subject, privilege, depth)


def _can_obtain_on_engine(
    engine: ExplorationEngine,
    subject: object,
    privilege: UserPrivilege,
    depth: int,
) -> SafetyVerdict:
    """One safety BFS over a (possibly shared) engine.

    The ``seen`` set is per query; the engine's state is navigated by
    witness path, so the first ``goto(())`` rewinds whatever state a
    previous query on the same engine left behind.  Observationally
    identical to a fresh-engine run: same verdict, witness, and
    ``states_explored``.
    """
    engine.goto(())
    seen = {engine.fingerprint}
    frontier: deque[tuple[Command, ...]] = deque([()])
    explored = 1
    while frontier:
        path = frontier.popleft()
        if len(path) == depth:
            continue
        engine.goto(path)
        for command in engine.effective_commands():
            engine.push(command)
            signature = engine.fingerprint
            if signature in seen:
                engine.pop()
                continue
            seen.add(signature)
            explored += 1
            if engine.reaches(subject, privilege):
                return SafetyVerdict(True, path + (command,), explored)
            frontier.append(path + (command,))
            engine.pop()
    return SafetyVerdict(False, None, explored)


def safety_matrix(
    policy: Policy,
    depth: int = 2,
    mode: Mode = Mode.STRICT,
    compiled: bool = True,
) -> dict[tuple[User, UserPrivilege], SafetyVerdict]:
    """The full user × user-privilege safety table for a policy.

    Used by the SAFE benchmark to contrast strict and refined modes:
    refined mode must not make any *unsafe* cell reachable that strict
    mode keeps safe beyond what Theorem 1 predicts (it cannot — the
    tests assert equality of the obtainable sets on the paper's
    policies).

    Under ``compiled=True`` the whole table shares one
    :class:`ExplorationEngine` — the candidate universe, issuer masks,
    and undo log are built once and every cell runs its own BFS with a
    per-query ``seen`` set, instead of rebuilding the engine per cell.
    Verdicts (including witnesses and ``states_explored``) are
    identical to per-cell :func:`can_obtain` calls.
    """
    verdicts: dict[tuple[User, UserPrivilege], SafetyVerdict] = {}
    users = sorted(policy.users(), key=str)
    privileges = sorted(policy.user_privileges(), key=str)
    if not compiled:
        for user in users:
            for privilege in privileges:
                verdicts[(user, privilege)] = can_obtain(
                    policy, user, privilege, depth, mode, compiled=False
                )
        return verdicts
    # Depth-0 prefilter, vectorized: one descendants mask per user and
    # one interner lookup per privilege replace the per-cell
    # ``reaches_bits`` probes — U + P graph consultations instead of
    # U × P.  Verdicts are unchanged (``reaches_bits`` is exactly a
    # bit-test of the same mask; user == privilege never holds across
    # the sorts, so its reflexive branch is unreachable here).
    already_true = SafetyVerdict(True, (), 1)
    vid = policy.graph._vid
    privilege_ids = [
        (privilege, vid.get(privilege)) for privilege in privileges
    ]
    engine: ExplorationEngine | None = None
    for user in users:
        held = policy.descendants_bits(user)
        for privilege, privilege_id in privilege_ids:
            if privilege_id is not None and held >> privilege_id & 1:
                verdicts[(user, privilege)] = already_true
                continue
            if engine is None:
                engine = ExplorationEngine(policy, mode)
            verdicts[(user, privilege)] = _can_obtain_on_engine(
                engine, user, privilege, depth
            )
    return verdicts
