"""Safety queries over administrative RBAC policies.

The classical safety question (HRU [7], recast for RBAC): *can subject
``v`` ever obtain user privilege ``p``, given that administrators act
according to the policy?*  The checker explores Definition 5 runs over
the candidate command universe and returns a concrete witness queue
when the answer is yes.

Unlike HRU's analysis, runs here are subject- and order-sensitive:
the witness shows *who* has to act, which is exactly the distinction
footnote 5 of the paper draws.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.commands import Command, Mode, candidate_commands, step
from ..core.entities import User
from ..core.ordering import OrderingOracle
from ..core.policy import Policy
from ..core.privileges import UserPrivilege


@dataclass(frozen=True)
class SafetyVerdict:
    """Answer to a safety query."""

    reachable: bool
    witness: tuple[Command, ...] | None
    states_explored: int

    def __bool__(self) -> bool:
        return self.reachable


def can_obtain(
    policy: Policy,
    subject: object,
    privilege: UserPrivilege,
    depth: int = 3,
    mode: Mode = Mode.STRICT,
    acting_users: list[User] | None = None,
) -> SafetyVerdict:
    """Can ``subject`` reach ``privilege`` in some policy reachable
    within ``depth`` administrative steps?

    ``acting_users`` restricts who issues commands (the "trusted users
    don't act" refinement of the classical safety question: pass only
    the untrusted users to model their collusion).
    """
    if policy.reaches(subject, privilege):
        return SafetyVerdict(True, (), 1)
    universe = candidate_commands(policy, mode, acting_users)
    seen = {policy.edge_set()}
    frontier: deque[tuple[Policy, tuple[Command, ...]]] = deque(
        [(policy.copy(), ())]
    )
    explored = 1
    while frontier:
        state, witness = frontier.popleft()
        if len(witness) == depth:
            continue
        for command in universe:
            probe = state.copy()
            record = step(probe, command, mode, OrderingOracle(probe))
            if not record.executed:
                continue
            signature = probe.edge_set()
            if signature in seen:
                continue
            seen.add(signature)
            explored += 1
            if probe.reaches(subject, privilege):
                return SafetyVerdict(True, witness + (command,), explored)
            frontier.append((probe, witness + (command,)))
    return SafetyVerdict(False, None, explored)


def safety_matrix(
    policy: Policy,
    depth: int = 2,
    mode: Mode = Mode.STRICT,
) -> dict[tuple[User, UserPrivilege], SafetyVerdict]:
    """The full user × user-privilege safety table for a policy.

    Used by the SAFE benchmark to contrast strict and refined modes:
    refined mode must not make any *unsafe* cell reachable that strict
    mode keeps safe beyond what Theorem 1 predicts (it cannot — the
    tests assert equality of the obtainable sets on the paper's
    policies).
    """
    verdicts: dict[tuple[User, UserPrivilege], SafetyVerdict] = {}
    for user in sorted(policy.users(), key=str):
        for privilege in sorted(policy.user_privileges(), key=str):
            verdicts[(user, privilege)] = can_obtain(
                policy, user, privilege, depth, mode
            )
    return verdicts
