"""Administrative scope (Crampton & Loizou [4]).

The second baseline of the paper's related-work section.  A role ``r'``
is *within the administrative scope* of ``r`` when every role senior to
``r'`` is either senior to ``r`` or junior to ``r`` — intuitively,
``r`` sits on every upward path out of ``r'``, so changes to ``r'``
cannot escape ``r``'s oversight::

    σ(r) = { r' ≤ r  :  ↑r' ⊆ ↓r ∪ ↑r }

where ``≤`` is the role hierarchy (``a ≤ b`` iff ``b →φ a``), ``↑x`` is
the set of roles senior to or equal to ``x`` and ``↓x`` the set junior
to or equal to ``x``.  *Strict* scope excludes ``r`` itself.

The scope model answers "which roles may ``r`` administer"; unlike the
paper's privilege terms it cannot express user-specific or nested
authority, which is exactly the expressiveness gap
:mod:`repro.analysis.compare` quantifies.
"""

from __future__ import annotations

from ..core.entities import Role, User
from ..core.policy import Policy
from ..graph import ancestors, descendants


def seniors(policy: Policy, role: Role) -> frozenset[Role]:
    """``↑role``: roles senior to or equal to ``role`` in RH."""
    hierarchy = policy.rh_subgraph()
    return frozenset(r for r in ancestors(hierarchy, role) if isinstance(r, Role))


def juniors(policy: Policy, role: Role) -> frozenset[Role]:
    """``↓role``: roles junior to or equal to ``role`` in RH."""
    hierarchy = policy.rh_subgraph()
    return frozenset(r for r in descendants(hierarchy, role) if isinstance(r, Role))


def administrative_scope(policy: Policy, role: Role) -> frozenset[Role]:
    """``σ(role)`` as defined above."""
    below = juniors(policy, role)
    oversight = below | seniors(policy, role)
    return frozenset(
        candidate
        for candidate in below
        if seniors(policy, candidate) <= oversight
    )


def strict_administrative_scope(policy: Policy, role: Role) -> frozenset[Role]:
    """``σ(role) \\ {role}``."""
    return administrative_scope(policy, role) - {role}


def is_within_scope(policy: Policy, admin: Role, target: Role) -> bool:
    """True iff ``target ∈ σ(admin)``."""
    return target in administrative_scope(policy, admin)


def scope_administrators(policy: Policy, target: Role) -> frozenset[Role]:
    """All roles whose scope contains ``target``."""
    return frozenset(
        admin
        for admin in policy.roles()
        if is_within_scope(policy, admin, target)
    )


def may_assign_under_scope(
    policy: Policy, admin: User, target_user: User, target_role: Role
) -> bool:
    """The scope model's assignment check: the administrator must be a
    member of some role whose *strict* scope contains the target role.

    (Crampton & Loizou refine this with admin-authority relations; the
    plain strict-scope check is the common core used for comparison.)
    """
    return any(
        target_role in strict_administrative_scope(policy, role)
        for role in policy.authorized_roles(admin)
    )
