"""Command-line interface: ``repro-rbac`` / ``python -m repro``.

Subcommands:

* ``show-policy FILE``          — parse a policy document and summarize it.
* ``check-order FILE P Q``     — decide ``P Ã Q`` and print the derivation.
* ``weaker FILE P``             — enumerate weaker privileges (bounded).
* ``check-refinement PHI PSI``  — Definition 6 check with witness.
* ``check-admin-refinement PHI PSI`` — bounded Definition 7 check.
* ``run-queue FILE QUEUE.json`` — execute a command queue (Definition 5).
* ``analyze FILE SUBJ PRIV``    — bounded safety query with witness
  (``--frozenset`` selects the oracle explorer instead of the compiled
  undo-log engine).
* ``lint [FILE]``               — static policy analysis: structured
  findings with witnesses and suggested repairs (``--fixture`` lints a
  built-in policy, ``--severity`` gates the exit code for CI).
* ``export-dot FILE``           — Graphviz export (the paper's figures).
* ``figures``                   — print the paper's Figures 1–3 as documents.
* ``query SQL...``              — run SQL against the guarded hospital DBMS
  (``--backend memory|sqlite|kvlog`` selects the storage engine).
* ``serve-bench [FILE]``        — drive the asyncio policy-decision
  point through a concurrent read/write workload and print its metrics
  surface: decision counters, cache hit ratio, batch gauges and
  p50/p99 latency histograms (``--fixture`` serves a built-in policy,
  ``--rate-limit CAPACITY:RATE`` fronts it with the token-bucket
  limiter).

Policy files use the document format of :mod:`repro.core.grammar`;
privileges are written as e.g. ``grant(bob, staff)`` or
``grant(staff, grant(bob, dbusr2))``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.admin_refinement import check_admin_refinement
from .core.commands import Mode, run_queue
from .core.grammar import (
    Vocabulary,
    format_policy_source,
    format_privilege,
    parse_policy_source,
    parse_privilege,
)
from .core.ordering import explain_weaker
from .core.policy import Policy
from .core.refinement import refinement_counterexample
from .core.serialization import queue_from_json
from .core.weaker import enumerate_weaker
from .errors import ReproError
from .graph import policy_to_dot


def _load_policy(path: str) -> Policy:
    return parse_policy_source(Path(path).read_text())


def _cmd_show_policy(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    print(policy)
    print(f"longest role chain: {policy.longest_role_chain()}")
    print(f"administrative: {not policy.is_non_administrative()}")
    if args.full:
        print(format_policy_source(policy), end="")
    return 0


def _cmd_check_order(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    vocabulary = Vocabulary.of_policy(policy)
    stronger = parse_privilege(args.stronger, vocabulary)
    weaker = parse_privilege(args.weaker, vocabulary)
    derivation = explain_weaker(
        policy, stronger, weaker, strict_rules=args.strict_rules
    )
    if derivation is None:
        print(
            f"NO: {format_privilege(weaker)} is not weaker than "
            f"{format_privilege(stronger)} under this policy"
        )
        return 1
    print(
        f"YES: {format_privilege(weaker)} is weaker than "
        f"{format_privilege(stronger)}; derivation:"
    )
    print(derivation.format())
    return 0


def _cmd_weaker(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    vocabulary = Vocabulary.of_policy(policy)
    privilege = parse_privilege(args.privilege, vocabulary)
    count = 0
    for term in enumerate_weaker(policy, privilege, max_depth=args.max_depth):
        print(format_privilege(term))
        count += 1
        if count >= args.limit:
            print(f"... stopped at limit {args.limit} (the set may be infinite)")
            break
    return 0


def _cmd_check_refinement(args: argparse.Namespace) -> int:
    phi = _load_policy(args.phi)
    psi = _load_policy(args.psi)
    witness = refinement_counterexample(phi, psi)
    if witness is None:
        print("YES: psi is a non-administrative refinement of phi (Def. 6)")
        return 0
    print(f"NO: {witness}")
    return 1


def _cmd_check_admin_refinement(args: argparse.Namespace) -> int:
    phi = _load_policy(args.phi)
    psi = _load_policy(args.psi)
    result = check_admin_refinement(
        phi, psi, depth=args.depth, direction=args.direction
    )
    if result.holds:
        print(
            f"HOLDS up to depth {result.depth} "
            f"({result.obligations_checked} obligations, "
            f"{result.obligations_matched_trivially} trivial)"
        )
        return 0
    print("REFUTED; counterexample queue:")
    for command in result.counterexample or ():
        print(f"  {command}")
    return 1


def _cmd_run_queue(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    queue = queue_from_json(Path(args.queue).read_text())
    mode = Mode.REFINED if args.refined else Mode.STRICT
    final, records = run_queue(policy, queue, mode)
    for record in records:
        verdict = "executed" if record.executed else "no-op (not authorized)"
        extra = ""
        if record.executed and record.implicit:
            extra = f"  [implicit via {record.authorized_by}]"
        print(f"{record.command}: {verdict}{extra}")
    print("final policy:")
    print(format_policy_source(final), end="")
    return 0


def _cmd_export_dot(args: argparse.Namespace) -> int:
    policy = _load_policy(args.policy)
    print(policy_to_dot(policy, name=args.name), end="")
    return 0


def _cmd_explain_access(args: argparse.Namespace) -> int:
    from .graph.paths import explain_reachability

    policy = _load_policy(args.policy)
    vocabulary = Vocabulary.of_policy(policy)
    subject = vocabulary.resolve(args.subject)
    privilege = parse_privilege(args.privilege, vocabulary)
    if policy.reaches(subject, privilege):
        print(f"ALLOWED: {explain_reachability(policy.graph, subject, privilege)}")
        return 0
    print(f"DENIED: {subject} does not reach {format_privilege(privilege)}")
    roles = ", ".join(sorted(str(r) for r in policy.authorized_roles(subject)))
    print(f"  subject's authorized roles: {roles or '(none)'}")
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from .core.diff import diff_policies

    old = _load_policy(args.old)
    new = _load_policy(args.new)
    diff = diff_policies(old, new)
    print(diff.summary())
    if diff.direction in ("refinement", "equivalent"):
        return 0
    return 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.safety import can_obtain

    policy = _load_policy(args.policy)
    vocabulary = Vocabulary.of_policy(policy)
    subject = vocabulary.resolve(args.subject)
    privilege = parse_privilege(args.privilege, vocabulary)
    mode = Mode.REFINED if args.refined else Mode.STRICT
    acting = None
    if args.acting is not None:
        # An explicitly empty collusion set means *nobody acts* —
        # distinct from omitting the flag (everyone may act).
        from .core.entities import User

        acting = [User(name) for name in args.acting]
    verdict = can_obtain(
        policy, subject, privilege,
        depth=args.depth, mode=mode, acting_users=acting,
        compiled=not args.frozenset,
    )
    kernel = "frozenset" if args.frozenset else "compiled"
    print(f"explored {verdict.states_explored} states "
          f"({kernel} explorer, depth {args.depth}, {mode.value} mode)")
    if verdict.reachable:
        if verdict.witness:
            print(f"REACHABLE in {len(verdict.witness)} step(s):")
            for command in verdict.witness:
                print(f"  {command}")
        else:
            print("REACHABLE now (no administrative steps needed)")
        return 0
    print(f"SAFE: {subject} cannot obtain {format_privilege(privilege)} "
          f"within {args.depth} administrative step(s)")
    return 1


_LINT_FIXTURES = {
    "figure1": "the paper's Figure 1 policy",
    "figure2": "the paper's Figure 2 policy",
    "figure3": "the paper's Figure 3 policy",
    "hospital": "the hospital workload (default shape)",
    "enterprise": "the enterprise workload (default shape)",
}


def _policy_target(args: argparse.Namespace, label: str) -> Policy:
    if (args.policy is None) == (args.fixture is None):
        raise ReproError(
            f"{label} needs exactly one of: a policy file, or --fixture"
        )
    if args.policy is not None:
        return _load_policy(args.policy)
    if args.fixture in ("figure1", "figure2", "figure3"):
        from .papercases import figures

        return getattr(figures, args.fixture)()
    if args.fixture == "hospital":
        from .workloads.hospital import hospital_policy

        return hospital_policy()
    from .workloads.enterprise import enterprise_policy

    return enterprise_policy()


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis.constraints import SsdConstraint
    from .analysis.lint import Severity, lint_policy
    from .core.entities import Role
    from .errors import AnalysisError

    policy = _policy_target(args, "lint")
    constraints = []
    for position, spec in enumerate(args.ssd or []):
        names = [name.strip() for name in spec.split(",") if name.strip()]
        if len(names) < 2:
            raise AnalysisError(
                f"--ssd needs at least two comma-separated roles, "
                f"got {spec!r}"
            )
        constraints.append(
            SsdConstraint(
                f"ssd_{position}",
                frozenset(Role(name) for name in names),
            )
        )
    threshold = Severity.parse(args.severity)
    if args.dry_run and not args.fix:
        raise AnalysisError("--dry-run only makes sense with --fix")
    kernel = "frozenset" if args.frozenset else "compiled"
    if args.fix:
        from .analysis.repair import repair_policy

        report = repair_policy(
            policy,
            rules=args.rules,
            compiled=not args.frozenset,
            constraints=constraints,
            severity=threshold,
        )
        if args.json:
            print(report.to_json())
        else:
            for outcome in report.outcomes:
                print(outcome.render())
            for finding in report.remaining:
                print(finding.render())
            summary = (
                f"repair: {len(report.applied)} plan(s) applied, "
                f"{len(report.rejected)} rejected, "
                f"{len(report.remaining)} finding(s) remaining at or "
                f"above {threshold.label} ({kernel} kernel"
            )
            if args.dry_run:
                summary += ", dry run"
            print(summary + ")")
        if args.policy is not None and not args.dry_run and report.applied:
            Path(args.policy).write_text(
                format_policy_source(report.policy)
            )
            print(f"wrote repaired policy to {args.policy}")
        return 1 if report.remaining else 0
    report = lint_policy(
        policy,
        rules=args.rules,
        compiled=not args.frozenset,
        constraints=constraints,
    )
    selected = report.at_or_above(threshold)
    if args.json:
        print(json.dumps(
            {
                "compiled": report.compiled,
                "severity": threshold.label,
                "findings": [finding.as_dict() for finding in selected],
                "stats": report.stats,
            },
            indent=2,
        ))
    else:
        for finding in selected:
            print(finding.render())
        suppressed = len(report.findings) - len(selected)
        summary = (
            f"{len(selected)} finding(s) at or above {threshold.label} "
            f"({kernel} kernel"
        )
        if suppressed:
            summary += f", {suppressed} below threshold"
        print(summary + ")")
    return 1 if selected else 0


def _cmd_flexibility(args: argparse.Namespace) -> int:
    from .analysis.compare import flexibility_report

    policy = _load_policy(args.policy)
    report = flexibility_report(policy)
    for label, value in report.as_rows():
        print(f"{label:36} {value}")
    return 0


def _cmd_audit_matrix(args: argparse.Namespace) -> int:
    import json

    from .analysis.audit import audit_matrix

    policy = _policy_target(args, "audit-matrix")
    report = audit_matrix(
        policy, compiled=not args.frozenset, shards=args.shards
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    kernel = "frozenset" if args.frozenset else "compiled"
    print(
        f"audit matrix at policy version {report.version} "
        f"({len(report.users)} users x {len(report.privileges)} "
        f"privileges, {kernel} kernel, shards={args.shards})"
    )
    for user in report.users:
        grants, revokes = report.admin_counts(user)
        held = sorted(str(p) for p in report.rows[user])
        admin = f"  [admin: {grants}G/{revokes}R]" if grants or revokes else ""
        print(f"{user.name:24} {', '.join(held) or '-'}{admin}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .workloads.fuzz import (
        fuzz_batch_authz,
        fuzz_compiled_kernel,
        fuzz_crash_recovery,
        fuzz_many,
        fuzz_pdp,
        fuzz_repair,
        fuzz_sharded_index,
    )

    compiled = not args.frozenset
    reports = fuzz_many(range(args.seeds), steps=args.steps,
                        compiled=compiled)
    executed = sum(r.executed for r in reports)
    implicit = sum(r.implicit for r in reports)
    denied = sum(r.denied for r in reports)
    violations = [v for r in reports for v in r.violations]
    print(f"campaigns: {len(reports)}  steps/campaign: {args.steps}  "
          f"kernel: {'compiled' if compiled else 'frozenset'}")
    print(f"executed: {executed} (implicit: {implicit})  denied: {denied}")
    if args.shards > 1:
        shard_reports = [
            fuzz_sharded_index(
                seed, steps=args.steps, shard_counts=(args.shards,),
                compiled=compiled,
            )
            for seed in range(args.seeds)
        ]
        violations += [v for r in shard_reports for v in r.violations]
        print(
            f"shard transparency: {len(shard_reports)} campaigns at "
            f"{args.shards} shards"
        )
    if args.kernel_diff:
        kernel_reports = [
            fuzz_compiled_kernel(seed, steps=args.steps)
            for seed in range(args.seeds)
        ]
        violations += [v for r in kernel_reports for v in r.violations]
        print(
            f"compiled-kernel agreement: {len(kernel_reports)} campaigns "
            "at shards (1, 2, 4)"
        )
    if args.batch_diff:
        batch_reports = [
            fuzz_batch_authz(seed) for seed in range(args.seeds)
        ]
        violations += [v for r in batch_reports for v in r.violations]
        print(
            f"batch-authorization agreement: {len(batch_reports)} "
            "campaigns at shards (1, 2, 4), both kernels"
        )
    if args.repair_diff:
        repair_reports = [
            fuzz_repair(seed) for seed in range(args.seeds)
        ]
        violations += [v for r in repair_reports for v in r.violations]
        print(
            f"repair agreement: {len(repair_reports)} campaigns, "
            "both kernels, refinement + fixpoint checked"
        )
    if args.pdp_diff:
        pdp_reports = [
            fuzz_pdp(seed, compiled=kernel)
            for seed in range(args.seeds)
            for kernel in (True, False)
        ]
        violations += [v for r in pdp_reports for v in r.violations]
        print(
            f"pdp agreement: {len(pdp_reports)} campaigns "
            "(concurrent readers vs. micro-batched writer), "
            "both kernels, decisions pinned at snapshot versions"
        )
    if args.crash_diff:
        crash_reports = [
            fuzz_crash_recovery(seed, compiled=kernel)
            for seed in range(args.seeds)
            for kernel in (True, False)
        ]
        violations += [v for r in crash_reports for v in r.violations]
        print(
            f"crash-recovery agreement: {len(crash_reports)} campaigns "
            "(kill at every injection point, recovery pinned "
            "byte-identical to the oracle on both kernels, "
            "recoverable append failures leave a verifying chain, "
            "plus the single-record tamper matrix)"
        )
    if violations:
        print(f"INVARIANT VIOLATIONS ({len(violations)}):")
        for violation in violations[:10]:
            print(f"  {violation}")
        return 1
    print("invariants: all hold")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .core.entities import Role, User
    from .dbms import execute_sql, hospital_database
    from .errors import AccessDenied

    mode = Mode.REFINED if args.refined else Mode.STRICT
    options = {"path": args.path} if args.path else {}
    database = hospital_database(mode=mode, backend=args.backend, **options)
    session = database.login(
        User(args.user), *(Role(name) for name in args.roles)
    )
    exit_code = 0
    for sql in args.sql:
        try:
            result = execute_sql(database, session, sql)
        except AccessDenied as denied:
            print(f"DENIED: {denied}")
            exit_code = 1
        else:
            for row in result.rows:
                print("  ".join(f"{column}={value}"
                                for column, value in row.items()))
            print(f"-- {len(result.rows)} row(s), {result.affected} affected")
    if args.audit:
        print(f"audit trail ({args.backend} backend, "
              f"capabilities: {database.store.capabilities}):")
        for entry in database.audit:
            print(f"  {entry}")
    database.close()
    return exit_code


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import random

    from .core.commands import Command, CommandAction
    from .core.entities import User
    from .serve import PolicyDecisionPoint, RateLimited, RateLimiter

    policy = _policy_target(args, "serve-bench")
    users = sorted(policy.users(), key=str)
    roles = sorted(policy.roles(), key=str)
    if not users or not roles:
        raise ReproError("serve-bench needs a policy with users and roles")
    limiter = None
    if args.rate_limit is not None:
        try:
            capacity_text, rate_text = args.rate_limit.split(":", 1)
            limiter = RateLimiter(
                capacity=float(capacity_text), rate=float(rate_text)
            )
        except ValueError as error:
            raise ReproError(
                f"--rate-limit wants CAPACITY:RATE, got "
                f"{args.rate_limit!r} ({error})"
            ) from None
    rng = random.Random(args.seed)
    principals: list[User] = [
        users[i % len(users)] for i in range(args.principals)
    ]
    # A bounded hot pool of candidate edges: bursts re-ask the same
    # questions page after page, the workload shape the decision cache
    # exists for.
    pool = [
        (
            rng.choice((CommandAction.GRANT, CommandAction.REVOKE)),
            rng.choice(users),
            rng.choice(roles),
        )
        for _ in range(max(16, args.principals * args.probes // 2))
    ]

    def probe(subject: User) -> Command:
        action, user, role = rng.choice(pool)
        return Command(subject, action, user, role)

    async def page(pdp, subject):
        requests = [probe(subject) for _ in range(args.probes)]
        try:
            await pdp.check_many(subject, requests)
        except RateLimited:
            pass  # counted on the metrics surface

    async def write(pdp, command):
        try:
            await pdp.submit(command)
        except ReproError:
            # Rate limits, shed writes, injected crashes: for a chaos
            # run the point is that the service keeps serving — the
            # outcome is on the metrics surface.
            pass

    async def scenario():
        async with PolicyDecisionPoint(
            policy=policy,
            compiled=not args.frozenset,
            rate_limiter=limiter,
            wal=args.wal,
        ) as pdp:
            for _ in range(args.rounds):
                for _ in range(args.bursts):
                    await asyncio.gather(*[
                        page(pdp, subject) for subject in principals
                    ])
                writes = [
                    probe(rng.choice(users)) for _ in range(args.writers)
                ]
                await asyncio.gather(*[
                    write(pdp, command) for command in writes
                ])
            return pdp.statistics()

    if args.inject:
        from .workloads.faults import FAULTS

        FAULTS.load_env(args.inject)
    try:
        stats = asyncio.run(scenario())
    finally:
        if args.inject:
            FAULTS.clear()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    kernel = "frozenset" if args.frozenset else "compiled"
    cache = stats["cache"]
    asked = cache["hits"] + cache["misses"]
    ratio = 100.0 * cache["hits"] / asked if asked else 0.0
    print(
        f"served {stats['decisions']} decisions for {args.principals} "
        f"principals over {args.rounds}x{args.bursts} bursts "
        f"({kernel} kernel, policy version {stats['version']})"
    )
    print(
        f"mutations: {stats['mutations']} in {stats['batches']} "
        f"micro-batch(es) (max batch {stats['max_batch_size']}, "
        f"queue peak {stats['queue_depth_peak']})"
    )
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({ratio:.1f}% hit ratio), {cache['entries']} entries, "
        f"{cache['evicted_entries']} evicted, "
        f"{cache['full_clears']} full clears"
    )
    if limiter is not None:
        print(f"rate limited: {stats['rate_limited']}")
    writer = stats["writer"]
    if args.inject or writer["health"] != "serving" or writer["total_failures"]:
        print(
            f"writer: {writer['health']} "
            f"({writer['total_failures']} failures, "
            f"{writer['restarts']} restarts, "
            f"{writer['breaker_trips']} breaker trips)"
        )
    if "wal" in stats:
        wal = stats["wal"]
        print(
            f"wal: {wal['records']} records ({wal['batches']} batches, "
            f"{wal['bytes']} bytes) head {wal['head'][:12]}..."
        )
    for label, key in (
        ("decision", "decision_latency"), ("mutation", "mutation_latency"),
    ):
        histogram = stats[key]
        print(
            f"{label} latency: p50 {histogram['p50'] * 1e6:.1f}us  "
            f"p99 {histogram['p99'] * 1e6:.1f}us  "
            f"max {histogram['max'] * 1e6:.1f}us  "
            f"({histogram['count']} samples)"
        )
    return 0


def _cmd_wal_verify(args: argparse.Namespace) -> int:
    import json

    from .serve.wal import WalError, read_wal, verify_chain

    try:
        records, _ = read_wal(args.path, tolerate_torn_tail=False)
        head = verify_chain(records, expected_head=args.head)
    except WalError as error:
        if args.json:
            print(json.dumps({"ok": False, "error": str(error)}))
        else:
            print(f"WAL CORRUPT: {error}")
        return 1
    version = next(
        (
            record.payload["version"] for record in reversed(records)
            if isinstance(record.payload.get("version"), int)
        ),
        None,
    )
    if args.json:
        print(json.dumps({
            "ok": True,
            "records": len(records),
            "batches": sum(1 for r in records if r.kind == "batch"),
            "head": head,
            "version": version,
        }, indent=2))
    else:
        batches = sum(1 for r in records if r.kind == "batch")
        print(
            f"WAL OK: {len(records)} records ({batches} batches), "
            f"policy version {version}"
        )
        print(f"head: {head}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .papercases import figures

    for name, builder in [
        ("Figure 1", figures.figure1),
        ("Figure 2", figures.figure2),
        ("Figure 3 (strict assignment)", figures.figure3_after_strict_assignment),
        ("Figure 3 (refined assignment)", figures.figure3_after_refined_assignment),
    ]:
        print(f"# --- {name} ---")
        print(format_policy_source(builder()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rbac",
        description=(
            "Administrative RBAC with privilege-ordering refinement "
            "(Dekker & Etalle, 2007)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    show = subparsers.add_parser("show-policy", help="summarize a policy file")
    show.add_argument("policy")
    show.add_argument("--full", action="store_true", help="print the document")
    show.set_defaults(func=_cmd_show_policy)

    order = subparsers.add_parser(
        "check-order", help="decide the privilege ordering P ~> Q"
    )
    order.add_argument("policy")
    order.add_argument("stronger")
    order.add_argument("weaker")
    order.add_argument(
        "--strict-rules", action="store_true",
        help="use the literal Definition 8 rules (no Example-6 closure)",
    )
    order.set_defaults(func=_cmd_check_order)

    weaker = subparsers.add_parser(
        "weaker", help="enumerate privileges weaker than P"
    )
    weaker.add_argument("policy")
    weaker.add_argument("privilege")
    weaker.add_argument("--max-depth", type=int, default=3)
    weaker.add_argument("--limit", type=int, default=50)
    weaker.set_defaults(func=_cmd_weaker)

    refinement = subparsers.add_parser(
        "check-refinement", help="Definition 6 check (phi refines-to psi?)"
    )
    refinement.add_argument("phi")
    refinement.add_argument("psi")
    refinement.set_defaults(func=_cmd_check_refinement)

    admin = subparsers.add_parser(
        "check-admin-refinement", help="bounded Definition 7 check"
    )
    admin.add_argument("phi")
    admin.add_argument("psi")
    admin.add_argument("--depth", type=int, default=2)
    admin.add_argument(
        "--direction",
        choices=["psi-universal", "phi-universal"],
        default="psi-universal",
    )
    admin.set_defaults(func=_cmd_check_admin_refinement)

    queue = subparsers.add_parser(
        "run-queue", help="execute a JSON command queue (Definition 5)"
    )
    queue.add_argument("policy")
    queue.add_argument("queue")
    queue.add_argument(
        "--refined", action="store_true",
        help="authorize via the privilege ordering (refined mode)",
    )
    queue.set_defaults(func=_cmd_run_queue)

    dot = subparsers.add_parser("export-dot", help="Graphviz DOT export")
    dot.add_argument("policy")
    dot.add_argument("--name", default="policy")
    dot.set_defaults(func=_cmd_export_dot)

    figures = subparsers.add_parser(
        "figures", help="print the paper's figures as policy documents"
    )
    figures.set_defaults(func=_cmd_figures)

    explain = subparsers.add_parser(
        "explain-access",
        help="why does (or doesn't) a subject reach a privilege?",
    )
    explain.add_argument("policy")
    explain.add_argument("subject")
    explain.add_argument("privilege")
    explain.set_defaults(func=_cmd_explain_access)

    diff = subparsers.add_parser(
        "diff", help="structural + refinement-direction diff of two policies"
    )
    diff.add_argument("old")
    diff.add_argument("new")
    diff.set_defaults(func=_cmd_diff)

    analyze = subparsers.add_parser(
        "analyze",
        help="bounded safety query: can SUBJECT ever obtain PRIVILEGE?",
    )
    analyze.add_argument("policy")
    analyze.add_argument("subject")
    analyze.add_argument("privilege")
    analyze.add_argument(
        "--depth", type=int, default=3,
        help="administrative step bound (default 3)",
    )
    analyze.add_argument(
        "--refined", action="store_true",
        help="administrators act under the privilege ordering",
    )
    analyze.add_argument(
        "--acting", nargs="*", default=None, metavar="USER",
        help="restrict who issues commands (collusion set)",
    )
    analyze.add_argument(
        "--frozenset", action="store_true",
        help="explore with the frozenset oracle instead of the "
             "compiled undo-log engine (differential baseline)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    lint = subparsers.add_parser(
        "lint",
        help="static policy analysis: findings, witnesses, repairs",
    )
    lint.add_argument(
        "policy", nargs="?", default=None,
        help="policy file (or use --fixture)",
    )
    lint.add_argument(
        "--fixture", choices=sorted(_LINT_FIXTURES), default=None,
        help="lint a built-in policy instead of a file",
    )
    lint.add_argument(
        "--severity", default="info", metavar="LEVEL",
        help="report (and exit non-zero on) findings at or above this "
             "severity: info, warning, or error (default: info; an "
             "unknown level is a usage error, exit 2)",
    )
    lint.add_argument(
        "--rules", nargs="*", default=None, metavar="RULE",
        help="run only these rules (default: all)",
    )
    lint.add_argument(
        "--ssd", action="append", default=None, metavar="R1,R2[,R3...]",
        help="declare an SSD separation set for constraint-conflict "
             "(repeatable)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="plan and apply verified repairs to a re-lint fixpoint "
             "(each plan must refine the policy and strictly shrink "
             "the finding set); a file target is rewritten in place "
             "unless --dry-run is given",
    )
    lint.add_argument(
        "--dry-run", action="store_true",
        help="with --fix: report the plans without writing the "
             "repaired policy back",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--frozenset", action="store_true",
        help="lint with the frozenset oracle instead of the compiled "
             "bitset kernel (differential baseline)",
    )
    lint.set_defaults(func=_cmd_lint)

    flexibility = subparsers.add_parser(
        "flexibility",
        help="permitted-operation counts: strict / refined / baselines",
    )
    flexibility.add_argument("policy")
    flexibility.set_defaults(func=_cmd_flexibility)

    fuzz = subparsers.add_parser(
        "fuzz", help="run monitor-invariant fuzzing campaigns"
    )
    fuzz.add_argument("--seeds", type=int, default=10)
    fuzz.add_argument("--steps", type=int, default=50)
    fuzz.add_argument(
        "--shards", type=int, default=1,
        help="additionally pin an N-shard index to the unsharded "
             "oracle (invariant 8)",
    )
    fuzz.add_argument(
        "--frozenset", action="store_true",
        help="run the campaigns on the frozenset (non-compiled) kernel "
             "— the differential baseline",
    )
    fuzz.add_argument(
        "--kernel-diff", action="store_true",
        help="additionally pin the compiled bitset kernel to the "
             "frozenset oracle under churn (invariant 9)",
    )
    fuzz.add_argument(
        "--batch-diff", action="store_true",
        help="additionally pin batch authorization to per-pair scalar "
             "decisions across kernels and shard counts (invariant 12)",
    )
    fuzz.add_argument(
        "--repair-diff", action="store_true",
        help="additionally pin the lint-to-repair engine across "
             "kernels, with refinement and fixpoint checks "
             "(invariant 13)",
    )
    fuzz.add_argument(
        "--pdp-diff", action="store_true",
        help="additionally pin every async PDP decision to the "
             "synchronous monitor oracle at its snapshot version, "
             "both kernels (invariant 14)",
    )
    fuzz.add_argument(
        "--crash-diff", action="store_true",
        help="additionally kill a WAL-attached PDP at every fault-"
             "injection point and pin recovery byte-identical to an "
             "uninterrupted oracle, plus the single-record tamper "
             "matrix (invariant 15)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    audit = subparsers.add_parser(
        "audit-matrix",
        help="whole-population held-privilege audit in one batch sweep",
    )
    audit.add_argument(
        "policy", nargs="?", default=None,
        help="policy file (or use --fixture)",
    )
    audit.add_argument(
        "--fixture", choices=sorted(_LINT_FIXTURES), default=None,
        help="audit a built-in policy instead of a file",
    )
    audit.add_argument(
        "--shards", type=int, default=1,
        help="run the sweep on an N-shard index (default 1)",
    )
    audit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    audit.add_argument(
        "--frozenset", action="store_true",
        help="audit with the frozenset oracle instead of the compiled "
             "bitset kernel (differential baseline)",
    )
    audit.set_defaults(func=_cmd_audit_matrix)

    query = subparsers.add_parser(
        "query",
        help="run SQL against the guarded hospital DBMS "
             "(any storage backend)",
    )
    query.add_argument("sql", nargs="+", help="SQL statement(s) to execute")
    query.add_argument(
        "--backend", default="memory",
        choices=["memory", "sqlite", "kvlog"],
        help="storage engine behind the guarded database",
    )
    query.add_argument(
        "--path", default=None,
        help="persistence path for the sqlite/kvlog backends",
    )
    query.add_argument("--user", default="diana", help="session user")
    query.add_argument(
        "--roles", nargs="*", default=["nurse"],
        help="roles to activate (default: nurse)",
    )
    query.add_argument(
        "--refined", action="store_true",
        help="authorize administration via the privilege ordering",
    )
    query.add_argument(
        "--audit", action="store_true", help="print the audit trail"
    )
    query.set_defaults(func=_cmd_query)

    serve = subparsers.add_parser(
        "serve-bench",
        help="drive the asyncio PDP through a concurrent workload and "
             "print its metrics surface",
    )
    serve.add_argument(
        "policy", nargs="?", default=None,
        help="policy file (or use --fixture)",
    )
    serve.add_argument(
        "--fixture", choices=sorted(_LINT_FIXTURES), default=None,
        help="serve a built-in policy instead of a file",
    )
    serve.add_argument(
        "--principals", type=int, default=32,
        help="concurrent reader principals per burst (default 32)",
    )
    serve.add_argument(
        "--probes", type=int, default=4,
        help="authorization probes per principal page (default 4)",
    )
    serve.add_argument(
        "--bursts", type=int, default=4,
        help="read bursts between write phases (default 4)",
    )
    serve.add_argument(
        "--rounds", type=int, default=3,
        help="write rounds (default 3)",
    )
    serve.add_argument(
        "--writers", type=int, default=4,
        help="mutations per write phase (default 4)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (default 0)",
    )
    serve.add_argument(
        "--rate-limit", default=None, metavar="CAPACITY:RATE",
        help="front the PDP with a per-principal token bucket "
             "(burst capacity, refill tokens/second)",
    )
    serve.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    serve.add_argument(
        "--frozenset", action="store_true",
        help="serve with the frozenset oracle instead of the compiled "
             "bitset kernel (differential baseline)",
    )
    serve.add_argument(
        "--wal", default=None, metavar="PATH",
        help="attach a hash-chained write-ahead log: every accepted "
             "micro-batch is fsync'd before its futures resolve "
             "(verify afterwards with `repro wal verify PATH`)",
    )
    serve.add_argument(
        "--inject", default=None, metavar="SPEC",
        help="arm fault injection for the run (REPRO_FAULTS syntax: "
             "point:action[:times[:after]][,...] — points listed in "
             "repro.workloads.faults.INJECTION_POINTS)",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    wal = subparsers.add_parser(
        "wal",
        help="inspect a policy write-ahead log",
    )
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_verify = wal_sub.add_parser(
        "verify",
        help="verify the hash chain of a policy WAL (exit 1 when "
             "tampered, torn, or truncated against --head)",
    )
    wal_verify.add_argument("path", help="the WAL file to verify")
    wal_verify.add_argument(
        "--head", default=None, metavar="HEX",
        help="expected head digest — an externally recorded anchor; "
             "required to detect tail truncation, which is otherwise "
             "internally consistent",
    )
    wal_verify.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    wal_verify.set_defaults(func=_cmd_wal_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
