"""Core of the reproduction: the paper's formal system.

Exports the model (entities, privileges, policies), the transition
system (commands, monitor), and the paper's contribution (the privilege
ordering, refinement, and the bounded administrative-refinement
checker).
"""

from .entities import Action, Obj, Role, Subject, User, role, roles, user, users
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    Revoke,
    UserPrivilege,
    grant,
    is_privilege,
    perm,
    privilege_depth,
    revoke,
)
from .grammar import (
    Vocabulary,
    format_policy_source,
    format_privilege,
    parse_policy_source,
    parse_privilege,
)
from .policy import Policy, check_edge_sorts, minus_edge, union_with_edge
from .ordering import (
    OrderingOracle,
    explain_weaker,
    implicitly_authorized,
    is_weaker,
)
from .weaker import (
    enumerate_weaker,
    frontier_sizes,
    remark2_bound,
    weaker_set,
)
from .refinement import (
    RefinementWitness,
    enumerate_weakenings,
    granted_pairs,
    is_refinement,
    refinement_counterexample,
    refines_strictly,
    weaken_assignment,
    with_replaced_edge,
    without_edge,
)
from .admin_refinement import (
    AdminRefinementResult,
    check_admin_refinement,
    theorem1_step_obligation,
)
from .commands import (
    Command,
    CommandAction,
    ExecutionRecord,
    Mode,
    candidate_commands,
    candidate_edges,
    effective_commands,
    grant_cmd,
    revoke_cmd,
    run_queue,
    step,
)
from .authz_index import AuthorizationIndex, GrantRectangle
from .explore import ExplorationEngine
from .diff import PolicyDiff, apply_diff, diff_policies
from .history import LogEntry, PolicyHistory
from .monitor import AccessDecision, ReferenceMonitor
from .sessions import Session
from .trace import Derivation, OrderingStatistics, ReachPremise

__all__ = [
    # entities
    "Action", "Obj", "Role", "Subject", "User",
    "role", "roles", "user", "users",
    # privileges
    "AdminPrivilege", "Grant", "Privilege", "Revoke", "UserPrivilege",
    "grant", "is_privilege", "perm", "privilege_depth", "revoke",
    # grammar
    "Vocabulary", "format_policy_source", "format_privilege",
    "parse_policy_source", "parse_privilege",
    # policy
    "Policy", "check_edge_sorts", "minus_edge", "union_with_edge",
    # ordering
    "OrderingOracle", "explain_weaker", "implicitly_authorized", "is_weaker",
    # weaker enumeration
    "enumerate_weaker", "frontier_sizes", "remark2_bound", "weaker_set",
    # refinement
    "RefinementWitness", "enumerate_weakenings", "granted_pairs",
    "is_refinement", "refinement_counterexample", "refines_strictly",
    "weaken_assignment", "with_replaced_edge", "without_edge",
    # admin refinement
    "AdminRefinementResult", "check_admin_refinement",
    "theorem1_step_obligation",
    # commands
    "Command", "CommandAction", "ExecutionRecord", "Mode",
    "candidate_commands", "candidate_edges", "effective_commands",
    "grant_cmd", "revoke_cmd", "run_queue", "step",
    # authorization index & diff
    "AuthorizationIndex", "GrantRectangle",
    "ExplorationEngine",
    "PolicyDiff", "apply_diff", "diff_policies",
    "LogEntry", "PolicyHistory",
    # monitor & sessions
    "AccessDecision", "ReferenceMonitor", "Session",
    # traces
    "Derivation", "OrderingStatistics", "ReachPremise",
]
