"""Bounded checking of administrative refinement (Definition 7).

Definition 7 quantifies over *all* command queues — an infinite set —
so it cannot be decided outright; the paper itself never decides it,
proving refinement only constructively via Theorem 1.  This module
implements a **bounded model checker** over the finite candidate
command universe (see :mod:`repro.core.commands`).

Direction of the quantifiers
----------------------------

The definition as printed reads: for every queue ``cq`` run on **φ**
there is a user-matched queue ``cq'`` run on **ψ** with ``φ' º ψ'``.
Because the existential player may always answer with disallowed
commands (no-ops), this direction is nearly vacuous: any ψ whose
*initial* user-privilege grants are contained in φ's satisfies it
regardless of how permissive ψ's administrative privileges are —
strengthening an admin privilege goes undetected.  The prose intuition
("if ψ allows a certain policy change then either the same policy
change is also allowed by φ, or it results in a safer policy") is the
**converse**: the universal quantifier must range over ψ's runs.  We
therefore implement both:

* ``direction="psi-universal"`` (default, the intended reading): every
  ψ-run must be dominated by some user-matched φ-run;
* ``direction="phi-universal"`` (the formula as printed): every φ-run
  must dominate some user-matched ψ-run.

Theorem-1 weakenings pass under **both** directions (the tests check
this); strengthenings are refuted under ``psi-universal`` and pass
vacuously under ``phi-universal`` — the discrepancy is recorded in
EXPERIMENTS.md.

Soundness of exploring only *effective* commands on the universal
side: a queue containing disallowed (no-op) commands reaches the same
final policy as the queue with the no-ops dropped, while only *adding*
response options for the existential side (which may answer any
position with a no-op by the same user).  Hence if every no-op-free
obligation is matched, every padded obligation is matched as well.

Cross-mode checks
-----------------

The two sides may run under different authorization modes.  In
particular ``check_mode_safety`` asks: is every REFINED-mode run of a
policy dominated by some user-matched STRICT-mode run of the *same*
policy?  This is the operational safety content of §4.1 ("giving
administrative users also the weaker administrative privileges allows
them to perform also safer administrative operations") and is verified
on the paper's policies and on random policies in the tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import AnalysisError
from .commands import Command, Mode, candidate_commands, run_queue, step
from .entities import User
from .explore import ExplorationEngine
from .ordering import OrderingOracle
from .policy import Policy
from .refinement import is_refinement


@dataclass(frozen=True)
class AdminRefinementResult:
    """Outcome of a bounded Definition-7 check."""

    holds: bool
    depth: int
    direction: str
    #: a universal-side queue with no user-matched dominating response.
    counterexample: tuple[Command, ...] | None
    obligations_checked: int
    obligations_matched_trivially: int
    responder_states_explored: int

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class _Obligation:
    queue: tuple[Command, ...]
    final: Policy


def _universal_runs(policy: Policy, depth: int, mode: Mode) -> list[_Obligation]:
    """All distinct (queue, final-policy) obligations of length <= depth.

    Distinctness is up to (user sequence, final edge set): two
    interleavings with the same issuing users and the same final policy
    impose the same proof obligation.
    """
    universe = candidate_commands(policy, mode)
    seen: set[tuple[tuple[User, ...], frozenset]] = set()
    obligations: list[_Obligation] = []
    frontier: deque[tuple[tuple[Command, ...], Policy]] = deque()
    frontier.append(((), policy.copy()))
    seen.add(((), policy.edge_set()))
    obligations.append(_Obligation((), policy.copy()))
    while frontier:
        commands_so_far, state = frontier.popleft()
        if len(commands_so_far) == depth:
            continue
        for command in universe:
            probe = state.copy()
            record = step(probe, command, mode, OrderingOracle(probe))
            if not record.executed:
                continue
            if probe.edge_set() == state.edge_set():
                continue  # executed but vacuous (edge already present/absent)
            new_queue = commands_so_far + (command,)
            key = (tuple(cmd.user for cmd in new_queue), probe.edge_set())
            if key in seen:
                continue
            seen.add(key)
            obligations.append(_Obligation(new_queue, probe.copy()))
            frontier.append((new_queue, probe))
    return obligations


def _universal_runs_compiled(
    policy: Policy, depth: int, mode: Mode
) -> list[_Obligation]:
    """:func:`_universal_runs` on the exploration engine: one mutable
    state navigated by witness path, commands pruned by bit tests, and
    a ``policy.copy()`` only per *kept* obligation.  Obligation order,
    dedup keys, and final policies match the frozenset oracle exactly
    (``effective_commands`` is precisely the executed-and-non-vacuous
    filter, in candidate-universe order)."""
    engine = ExplorationEngine(policy, mode)
    seen: set[tuple[tuple[User, ...], frozenset]] = {
        ((), policy.edge_set())
    }
    obligations: list[_Obligation] = [_Obligation((), engine.snapshot())]
    frontier: deque[tuple[Command, ...]] = deque([()])
    while frontier:
        path = frontier.popleft()
        if len(path) == depth:
            continue
        engine.goto(path)
        for command in engine.effective_commands():
            engine.push(command)
            new_queue = path + (command,)
            key = (
                tuple(cmd.user for cmd in new_queue),
                engine.policy.edge_set(),
            )
            if key in seen:
                engine.pop()
                continue
            seen.add(key)
            obligations.append(_Obligation(new_queue, engine.snapshot()))
            frontier.append(new_queue)
            engine.pop()
    return obligations


def _exists_dominating_run(
    responder: Policy,
    users: tuple[User, ...],
    dominated_final: Policy | None,
    dominating_final: Policy | None,
    mode: Mode,
    counters: dict[str, int],
) -> bool:
    """Search responder-runs issuing ``users`` (with no-ops allowed).

    Exactly one of ``dominated_final`` / ``dominating_final`` is None:
    the responder's result fills the hole and we ask
    ``is_refinement(dominating, dominated)``.
    """
    universe = candidate_commands(responder, mode)
    visited: set[tuple[int, frozenset]] = set()

    def satisfied(state: Policy) -> bool:
        if dominating_final is None:
            return is_refinement(state, dominated_final)
        return is_refinement(dominating_final, state)

    def search(index: int, state: Policy) -> bool:
        key = (index, state.edge_set())
        if key in visited:
            return False
        visited.add(key)
        counters["responder_states"] += 1
        if satisfied(state):
            # Remaining positions can all be no-ops by the right users.
            return True
        if index == len(users):
            return False
        user = users[index]
        # No-op by `user`: same state, next index.
        if search(index + 1, state):
            return True
        for command in universe:
            if command.user != user:
                continue
            probe = state.copy()
            record = step(probe, command, mode, OrderingOracle(probe))
            if not record.executed:
                continue
            if probe.edge_set() == state.edge_set():
                continue
            if search(index + 1, probe):
                return True
        return False

    return search(0, responder.copy())


def _exists_dominating_run_compiled(
    engine: ExplorationEngine,
    users: tuple[User, ...],
    dominated_final: Policy | None,
    dominating_final: Policy | None,
    counters: dict[str, int],
) -> bool:
    """:func:`_exists_dominating_run` on a shared responder engine.

    The recursion pushes a candidate, descends, and pops on unwind
    (``finally``), so the engine is back at the responder's initial
    state when the search returns — ready for the next obligation
    without rebuilding the universe or the ordering oracle.  The
    visited keys, visit order, and ``responder_states`` counts match
    the copy-per-candidate oracle exactly.
    """
    engine.goto(())
    visited: set[tuple[int, frozenset]] = set()

    def satisfied() -> bool:
        if dominating_final is None:
            return is_refinement(engine.policy, dominated_final)
        return is_refinement(dominating_final, engine.policy)

    def search(index: int) -> bool:
        key = (index, engine.policy.edge_set())
        if key in visited:
            return False
        visited.add(key)
        counters["responder_states"] += 1
        if satisfied():
            # Remaining positions can all be no-ops by the right users.
            return True
        if index == len(users):
            return False
        user = users[index]
        # No-op by `user`: same state, next index.
        if search(index + 1):
            return True
        for command in engine.effective_commands():
            if command.user != user:
                continue
            engine.push(command)
            try:
                if search(index + 1):
                    return True
            finally:
                engine.pop()
        return False

    return search(0)


def check_admin_refinement(
    phi: Policy,
    psi: Policy,
    depth: int = 2,
    direction: str = "psi-universal",
    phi_mode: Mode = Mode.STRICT,
    psi_mode: Mode = Mode.STRICT,
    compiled: bool = True,
) -> AdminRefinementResult:
    """Bounded Definition-7 check: is ψ an administrative refinement of
    φ, as far as runs of length ≤ ``depth`` over the candidate command
    universe can tell?

    ``holds=True`` is a certificate for the explored fragment, not a
    full proof; ``holds=False`` comes with a concrete counterexample
    queue on the universal side.

    ``compiled=True`` (the default) runs both the universal-side
    enumeration and the responder search on
    :class:`~repro.core.explore.ExplorationEngine` undo logs — one
    shared responder engine across all obligations instead of a
    ``policy.copy()`` per probed candidate.  ``compiled=False`` keeps
    the copy-per-probe frozenset oracle; results (including the
    counterexample and all counters) are identical.
    """
    if direction not in ("psi-universal", "phi-universal"):
        raise AnalysisError(f"unknown direction {direction!r}")
    counters = {"responder_states": 0}
    trivial = 0
    enumerate_runs = _universal_runs_compiled if compiled else _universal_runs
    if direction == "psi-universal":
        obligations = enumerate_runs(psi, depth, psi_mode)
        responder, responder_mode = phi, phi_mode
    else:
        obligations = enumerate_runs(phi, depth, phi_mode)
        responder, responder_mode = psi, psi_mode
    responder_engine: ExplorationEngine | None = None

    for obligation in obligations:
        if direction == "psi-universal":
            # ψ produced obligation.final; φ must dominate it.
            if is_refinement(phi, obligation.final):
                trivial += 1
                continue
            dominated, dominating = obligation.final, None
        else:
            # φ produced obligation.final; ψ must produce a dominated state.
            if is_refinement(obligation.final, psi):
                trivial += 1
                continue
            dominated, dominating = None, obligation.final
        users = tuple(cmd.user for cmd in obligation.queue)
        if compiled:
            if responder_engine is None:
                responder_engine = ExplorationEngine(
                    responder, responder_mode
                )
            matched = _exists_dominating_run_compiled(
                responder_engine, users, dominated, dominating, counters
            )
        else:
            matched = _exists_dominating_run(
                responder, users, dominated, dominating,
                responder_mode, counters,
            )
        if not matched:
            return AdminRefinementResult(
                holds=False,
                depth=depth,
                direction=direction,
                counterexample=obligation.queue,
                obligations_checked=len(obligations),
                obligations_matched_trivially=trivial,
                responder_states_explored=counters["responder_states"],
            )
    return AdminRefinementResult(
        holds=True,
        depth=depth,
        direction=direction,
        counterexample=None,
        obligations_checked=len(obligations),
        obligations_matched_trivially=trivial,
        responder_states_explored=counters["responder_states"],
    )


def check_mode_safety(
    policy: Policy, depth: int = 2, compiled: bool = True
) -> AdminRefinementResult:
    """Is the refined monitor safe?  Every REFINED-mode run of
    ``policy`` must be dominated by a user-matched STRICT-mode run of
    the same policy (§4.1's safety claim, operationalized)."""
    return check_admin_refinement(
        policy,
        policy,
        depth=depth,
        direction="psi-universal",
        phi_mode=Mode.STRICT,
        psi_mode=Mode.REFINED,
        compiled=compiled,
    )


def theorem1_step_obligation(
    phi: Policy,
    psi: Policy,
    phi_command: Command,
    psi_command: Command,
    mode: Mode = Mode.STRICT,
) -> bool:
    """The core step of the Theorem-1 proof: execute the matched
    command pair and check ``φ' º ψ'``.

    The proof sketch in the paper matches the stronger command on φ
    against the weaker command on ψ and shows the results are related;
    this helper lets tests replay that argument on arbitrary instances.
    """
    phi_after, _ = run_queue(phi, [phi_command], mode)
    psi_after, _ = run_queue(psi, [psi_command], mode)
    return is_refinement(phi_after, psi_after)
