"""A precomputed authorization index for the refined monitor.

The plain refined monitor answers "may user u execute cmd(u, ¤, v, v')"
by iterating every privilege reachable from ``u`` and running the
Lemma-1 decision procedure against ``¤(v, v')``.  That is fine for a
handful of privileges, but a production reference monitor fields the
same question thousands of times between policy changes.  This module
precomputes, per subject, the *grant rectangles* implied by the
ordering:

For an entity-target grant privilege ``¤(s, t)`` reachable by the
subject, rule (2) authorizes exactly the commands ``¤(v, v')`` whose
new source reaches the original source and whose new target is reached
by the original target, i.e. the authorized pairs are::

    { (v, v') : v ∈ ancestors(s) ∩ (U ∪ R),  v' ∈ descendants(t) }

(with the usual grammar sorts), a *rectangle* ancestors(s) ×
descendants(t).  The index stores these rectangles as pairs of frozen
sets; an authorization query is then two set-membership tests per held
privilege instead of a recursive procedure.  Nested-target grants
(rule 3) and the generalized rule-(2) hop are delegated to the
ordering oracle — they are the rare case, and correctness is what
matters there.

The index is versioned against the policy graph like every other
cache.  Under policy churn it repairs itself *incrementally*: the
graph's change journal yields the edge-level deltas since the last
validation, SCC-condensation reachability (:func:`repro.graph.dirty_region`)
turns those into the set of dirty subjects and rectangles, and only
those entries are rebuilt.  A full rebuild happens only when the
journal has expired or the delta burst exceeds a size threshold
(``incremental=False`` forces the old rebuild-everything behaviour and
is kept as the benchmark baseline).  Its answers are verified against
the oracle by the test suite (`tests/core/test_authz_index.py`) and by
the differential churn harness in :mod:`repro.workloads.fuzz`.

An index-backed refined monitor also unlocks *batched* command queues:
:meth:`repro.core.monitor.ReferenceMonitor.submit_queue` with
``batched=True`` authorizes a whole queue against its entry state with
a single index validation — see that method's docstring for the exact
transactional semantics.

For large populations the index also serves as the *shard* unit of
:class:`repro.core.authz_shard.ShardedAuthorizationIndex`: ``owns``
restricts an instance to a subset of the subjects, ``pool`` shares
interned :class:`GrantRectangle` contents across all shards (they are
per-privilege, not per-user), and ``region_cache`` lets sibling shards
repairing over the same delta window reuse one dirty-region sweep.
All three default to off, which is exactly the original single-index
behaviour.

``compiled=True`` (the default) runs the whole index on the *bitset
kernel*: held sets are big-int bitmasks over the policy graph's
interned vertex IDs, rectangles are :class:`BitGrantRectangle` masks
whose :meth:`~BitGrantRectangle.covers` is two bit-tests, and the
dirty-subject sweep under churn is a mask intersection.
``compiled=False`` keeps the frozenset representation as the
differential oracle — `benchmarks/bench_bitset_kernel.py` pins the
speedup and :func:`repro.workloads.fuzz.fuzz_compiled_kernel`
(invariant 9) pins observational equality under churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import ancestors as graph_ancestors
from ..graph import (
    ancestors_bits,
    dirty_region,
    dirty_region_bits,
    iter_bits,
    summarize_deltas,
)
from .commands import Command, CommandAction
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import Grant, Privilege, Revoke, is_privilege

_Entity = (User, Role)

_EMPTY = frozenset()


@dataclass(frozen=True)
class GrantRectangle:
    """The set of entity-pair grants authorized by one held privilege:
    ``sources × targets`` (already sort-filtered)."""

    held: Grant
    sources: frozenset
    targets: frozenset

    def covers(self, source: object, target: object) -> bool:
        return source in self.sources and target in self.targets

    def pair_count(self) -> int:
        return len(self.sources) * len(self.targets)

    def thaw(self) -> "GrantRectangle":
        """Representation-normalized view (identity here; the compiled
        rectangle decodes itself into this class)."""
        return self


class BitGrantRectangle:
    """The compiled representation of a grant rectangle: ``sources`` /
    ``targets`` as bitmasks over the policy graph's interned vertex
    IDs, so :meth:`covers` is two bit-tests and a pool's dirty-region
    intersection is a single ``&``.

    A rectangle may cover entities that are not graph vertices: the
    held grant's own endpoints appear in their region reflexively even
    when unregistered or deprovisioned (``ancestors(s) ∋ s`` holds
    off-graph).  Those carry no ID and live in ``extra_sources`` /
    ``extra_targets`` — by construction at most the held privilege's
    two endpoints — which the slow-path :meth:`covers` consults; the
    index's hot path skips them because a query naming an in-graph
    vertex can never equal an off-graph extra.
    """

    __slots__ = ("held", "source_bits", "target_bits",
                 "extra_sources", "extra_targets", "_graph")

    def __init__(self, held, source_bits, target_bits,
                 extra_sources=_EMPTY, extra_targets=_EMPTY, graph=None):
        self.held = held
        self.source_bits = source_bits
        self.target_bits = target_bits
        self.extra_sources = extra_sources
        self.extra_targets = extra_targets
        self._graph = graph

    def covers(self, source: object, target: object) -> bool:
        vid = self._graph._vid
        source_id = vid.get(source)
        if source_id is None:
            if source not in self.extra_sources:
                return False
        elif not self.source_bits >> source_id & 1:
            return False
        target_id = vid.get(target)
        if target_id is None:
            return target in self.extra_targets
        return bool(self.target_bits >> target_id & 1)

    def pair_count(self) -> int:
        return (
            (self.source_bits.bit_count() + len(self.extra_sources))
            * (self.target_bits.bit_count() + len(self.extra_targets))
        )

    @property
    def sources(self) -> frozenset:
        """Decoded source set (mask bits plus off-graph extras)."""
        vertex_of = self._graph._vertex_of
        return frozenset(
            vertex_of[index] for index in iter_bits(self.source_bits)
        ) | self.extra_sources

    @property
    def targets(self) -> frozenset:
        """Decoded target set (mask bits plus off-graph extras)."""
        vertex_of = self._graph._vertex_of
        return frozenset(
            vertex_of[index] for index in iter_bits(self.target_bits)
        ) | self.extra_targets

    def thaw(self) -> GrantRectangle:
        """Decode into the frozenset representation (for differential
        comparison against the oracle)."""
        return GrantRectangle(self.held, self.sources, self.targets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitGrantRectangle):
            return NotImplemented
        return (
            self.held == other.held
            and self.source_bits == other.source_bits
            and self.target_bits == other.target_bits
            and self.extra_sources == other.extra_sources
            and self.extra_targets == other.extra_targets
        )

    def __hash__(self) -> int:
        return hash((self.held, self.source_bits, self.target_bits))

    def __repr__(self) -> str:
        return (
            f"BitGrantRectangle({self.held!r}, "
            f"sources={self.source_bits.bit_count()}, "
            f"targets={self.target_bits.bit_count()})"
        )


def compile_sources(policy: Policy, source) -> tuple[int, frozenset]:
    """The rectangle source region of a held grant, compiled: entity
    ancestors of ``source`` as ``(mask, off-graph extras)``."""
    graph = policy.graph
    if source in graph:
        return (
            ancestors_bits(graph, source) & policy.bits.entities_mask,
            _EMPTY,
        )
    return 0, frozenset((source,))


def compile_targets(policy: Policy, target) -> tuple[int, frozenset]:
    """The rectangle target region of a held grant, compiled: role
    descendants of ``target`` as ``(mask, off-graph extras)``."""
    graph = policy.graph
    if target in graph:
        return (
            policy.descendants_bits(target) & policy.bits.roles_mask,
            _EMPTY,
        )
    if isinstance(target, Role):
        return 0, frozenset((target,))
    return 0, _EMPTY


def compile_rectangle(
    policy: Policy, privilege: Grant, ancestor_memo: dict | None = None
) -> BitGrantRectangle:
    """Build one compiled rectangle; ``ancestor_memo`` shares source
    regions across rectangles held over the same grantor."""
    cached = (
        ancestor_memo.get(privilege.source)
        if ancestor_memo is not None else None
    )
    if cached is None:
        cached = compile_sources(policy, privilege.source)
        if ancestor_memo is not None:
            ancestor_memo[privilege.source] = cached
    source_bits, extra_sources = cached
    target_bits, extra_targets = compile_targets(policy, privilege.target)
    return BitGrantRectangle(
        privilege, source_bits, target_bits,
        extra_sources, extra_targets, policy.graph,
    )


class AuthorizationIndex:
    """Per-subject precomputed authorization for the refined monitor.

    ``authorizes(user, command)`` returns the held privilege that
    covers the command, or None.  Exact matches and revocations are
    answered from a set; entity-target grants from the rectangles;
    nested grants fall back to the ordering oracle.

    Maintenance under churn is incremental (see the module docstring):
    a mutated edge ``(s, t)`` dirties exactly

    * the users upstream of ``s`` (their reachable privilege set may
      have changed), and
    * the rectangles whose held privilege's source lies downstream of
      ``t`` (its ancestor set — the rectangle's sources — may have
      changed) or whose target lies upstream of ``s`` (its descendant
      set — the rectangle's targets — may have changed).

    Everything else is provably untouched, so per-user entries are
    rebuilt only for the dirty set.  ``full_rebuilds`` /
    ``partial_refreshes`` / ``users_refreshed`` expose the maintenance
    behaviour to tests and benchmarks.
    """

    #: delta bursts larger than max(DELTA_LIMIT, #users) trigger a full
    #: rebuild instead of an incremental repair.
    DELTA_LIMIT = 64

    #: shared region caches are tiny: dirty regions are only reusable
    #: across shards repairing over the same delta window, so old
    #: windows are dead weight.
    REGION_CACHE_LIMIT = 32

    __slots__ = ("policy", "incremental", "compiled", "full_rebuilds",
                 "partial_refreshes", "users_refreshed",
                 "_cursor", "_held", "_rectangles", "_rect_rows",
                 "_extras_users", "_oracle", "_pool", "_owns",
                 "_region_cache", "_snapshot")

    def __init__(
        self,
        policy: Policy,
        incremental: bool = True,
        compiled: bool = True,
        pool=None,
        owns=None,
        region_cache: dict | None = None,
    ):
        self.policy = policy
        self.incremental = incremental
        #: True: bitset kernel (held sets and rectangles are bitmasks
        #: over interned vertex IDs).  False: the frozenset
        #: representation — kept as the differential oracle, exactly
        #: like ``incremental=False`` keeps the rebuild baseline.
        self.compiled = compiled
        self.full_rebuilds = 0
        self.partial_refreshes = 0
        self.users_refreshed = 0
        self._cursor = policy.journal_cursor()
        #: per-subject held privileges: frozenset[Privilege] when
        #: ``compiled=False``, an int bitmask over privilege vertex IDs
        #: when compiled (use :meth:`held_privileges` for a
        #: representation-independent view).
        self._held: dict[User, object] = {}
        self._rectangles: dict[User, tuple] = {}
        #: compiled fast path per subject: (held_mask, union_source_bits,
        #: union_target_bits, ((source_bits, target_bits, held, pid), ...))
        #: — the union masks reject most misses with two bit-tests, and
        #: rows carry the held privilege's vertex ID in ascending order
        #: for the batch kernel's mask-select verdicts.
        self._rect_rows: dict[User, tuple] = {}
        #: compiled bookkeeping: subjects holding at least one
        #: rectangle with off-graph extras — usually empty, and the
        #: only subjects an add-vertex burst can force to migrate.
        self._extras_users: set[User] = set()
        self._oracle = OrderingOracle(policy, compiled=compiled)
        #: rectangle-sharing pool (see repro.core.authz_shard); None
        #: means rectangles are built privately per instance.
        self._pool = pool
        #: subject filter — a shard indexes only the users it owns.
        self._owns = owns
        self._region_cache = region_cache
        self._snapshot: ReviewSnapshot | None = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _build_user(self, user: User, entity_ancestors: dict) -> None:
        """(Re)compute one user's held set and rectangles in place."""
        graph = self.policy.graph
        pool = self._pool

        def ancestors_of(vertex) -> frozenset:
            cached = entity_ancestors.get(vertex)
            if cached is None:
                cached = frozenset(
                    v for v in graph_ancestors(graph, vertex)
                    if isinstance(v, _Entity)
                )
                entity_ancestors[vertex] = cached
            return cached

        held = frozenset(
            vertex
            for vertex in self.policy.descendants(user)
            if is_privilege(vertex)
        )
        self._held[user] = held
        rectangles = []
        for privilege in held:
            if not isinstance(privilege, Grant):
                continue
            if not isinstance(privilege.target, _Entity):
                continue
            if pool is not None:
                # Rectangle contents are per-privilege, not per-user:
                # every subject holding this grant shares one interned
                # rectangle.
                rectangles.append(pool.rectangle(privilege))
                continue
            # Weaker sources: entities v with v ->phi s (rule 2
            # premise v1 -> v2); weaker targets: entities below t.
            sources = ancestors_of(privilege.source)
            targets = frozenset(
                v for v in self.policy.descendants(privilege.target)
                if isinstance(v, Role)
            )
            rectangles.append(
                GrantRectangle(privilege, sources, targets)
            )
        self._rectangles[user] = tuple(rectangles)
        self.users_refreshed += 1

    def _build_user_bits(
        self, user: User, ancestor_memo: dict, rectangle_memo: dict
    ) -> None:
        """Compiled :meth:`_build_user`: the held set is one BFS mask
        intersected with the privilege sort mask, and rectangles come
        from the pool or a per-repair memo (their contents are
        per-privilege, never per-user)."""
        policy = self.policy
        bits = policy.bits
        held = policy.descendants_bits(user) & bits.privileges_mask
        self._held[user] = held
        pool = self._pool
        vertex_of = policy.graph._vertex_of
        rectangles = []
        union_sources = union_targets = 0
        rows = []
        # iter_bits yields ascending IDs, so rows are in ascending
        # privilege-ID order — the batch kernel's lowest-set-bit verdict
        # selection relies on this to reproduce the scalar first-match.
        for index in iter_bits(held & bits.grant_entity_mask):
            privilege = vertex_of[index]
            if pool is not None:
                rectangle = pool.rectangle(privilege)
            else:
                rectangle = rectangle_memo.get(privilege)
                if rectangle is None:
                    rectangle = compile_rectangle(
                        policy, privilege, ancestor_memo
                    )
                    rectangle_memo[privilege] = rectangle
            rectangles.append(rectangle)
            union_sources |= rectangle.source_bits
            union_targets |= rectangle.target_bits
            rows.append((
                rectangle.source_bits, rectangle.target_bits,
                rectangle.held, index,
            ))
        self._rectangles[user] = tuple(rectangles)
        self._rect_rows[user] = (
            held, union_sources, union_targets, tuple(rows)
        )
        if any(
            rectangle.extra_sources or rectangle.extra_targets
            for rectangle in rectangles
        ):
            self._extras_users.add(user)
        else:
            self._extras_users.discard(user)
        self.users_refreshed += 1

    def _subjects(self):
        """The users this instance indexes (all of them, unless it is a
        shard restricted by ``owns``)."""
        if self._owns is None:
            return self.policy.users()
        return (user for user in self.policy.users() if self._owns(user))

    def _rebuild(self) -> None:
        if self._pool is not None:
            self._pool.validate()
        self._held.clear()
        self._rectangles.clear()
        self._rect_rows.clear()
        self._extras_users.clear()
        if self.compiled:
            ancestor_memo: dict = {}
            rectangle_memo: dict = {}
            for user in self._subjects():
                self._build_user_bits(user, ancestor_memo, rectangle_memo)
        else:
            entity_ancestors: dict[object, frozenset] = {}
            for user in self._subjects():
                self._build_user(user, entity_ancestors)
        self._cursor.version = self.policy.version
        self.full_rebuilds += 1

    def _validate(self) -> None:
        if self._cursor.version == self.policy.version:
            return
        since = self._cursor.version
        deltas = (
            self.policy.changes_since(since)
            if self.incremental else None
        )
        if deltas is None:
            self._rebuild()
            return
        # Vertex additions only ever create per-user entries, never
        # dirty existing ones, so only edge mutations and vertex
        # removals (the summary weight) count toward the full-rebuild
        # fallback.
        summary = summarize_deltas(deltas)
        if summary.weight > max(self.DELTA_LIMIT, len(self._held)):
            self._rebuild()
            return
        self._apply_deltas(deltas, summary, since)
        self._cursor.version = self.policy.version
        self.partial_refreshes += 1

    def _dirty_region(self, edge_sources, edge_targets, since):
        """The (upstream, downstream) frozenset region for this repair
        window (see :meth:`_cached_region`)."""
        return self._cached_region(
            dirty_region, edge_sources, edge_targets, since
        )

    def _dirty_region_bits(self, edge_sources, edge_targets, since):
        """Compiled :meth:`_dirty_region` (shards sharing a region
        cache all run the same representation, so cached values are
        homogeneous)."""
        return self._cached_region(
            dirty_region_bits, edge_sources, edge_targets, since
        )

    def _cached_region(self, sweep, edge_sources, edge_targets, since):
        """Run one dirty-region ``sweep``, shared with sibling shards
        via the region cache: the deltas — and hence the region — are
        a pure function of the version window, so shards repairing
        over the same window reuse one sweep."""
        if self._region_cache is None:
            return sweep(self.policy.graph, edge_sources, edge_targets)
        key = (since, self.policy.version)
        region = self._region_cache.get(key)
        if region is None:
            region = sweep(self.policy.graph, edge_sources, edge_targets)
            if len(self._region_cache) >= self.REGION_CACHE_LIMIT:
                self._region_cache.clear()
            self._region_cache[key] = region
        return region

    def _apply_deltas(self, deltas, summary, since: int) -> None:
        """Incrementally repair the index from journaled graph deltas.

        The edge endpoints come pre-classified in ``summary``; the
        per-delta walk below only does the order-sensitive per-user
        bookkeeping (a user removed then re-added within the burst
        must end up fresh, not stale).
        """
        if self._pool is not None:
            self._pool.validate()
        fresh_users: set[User] = set()
        for delta in deltas:
            if delta.is_edge:
                continue
            if delta.kind == "remove-vertex":
                if isinstance(delta.source, User):
                    self._held.pop(delta.source, None)
                    self._rectangles.pop(delta.source, None)
                    self._rect_rows.pop(delta.source, None)
                    self._extras_users.discard(delta.source)
                fresh_users.discard(delta.source)
            elif isinstance(delta.source, User):
                if delta.source not in self._held and (
                    self._owns is None or self._owns(delta.source)
                ):
                    fresh_users.add(delta.source)

        dirty: set[User] = set(fresh_users)
        removed = summary.removed_vertices
        added = summary.added_vertices
        if self.compiled and (removed or added):
            # A vertex that is a rectangle's *own endpoint* can leave
            # or rejoin the graph with the region staying
            # set-identical (ancestors(s) ∋ s holds off-graph too), so
            # the frozenset representation needs no repair — but the
            # compiled rectangle must migrate the endpoint between its
            # bitmask (freed/assigned ID) and its extras, in both
            # directions: on removal unconditionally (the mask bit is
            # freed), on (re-)addition only when the endpoint actually
            # sits in the extras.  Any *other* region member's removal
            # journals edge deltas that dirty the rectangle through
            # the region sweep below.  Removals (rare) scan every
            # subject; an addition-only burst — every provisioning
            # load — scans just the subjects known to hold extras.
            if removed:
                candidates = self._rectangles.items()
            elif self._extras_users:
                candidates = [
                    (user, self._rectangles[user])
                    for user in self._extras_users
                ]
            else:
                candidates = ()
            for user, rectangles in candidates:
                if user in dirty:
                    continue
                for rectangle in rectangles:
                    held = rectangle.held
                    if held.source in removed or held.target in removed:
                        dirty.add(user)
                        break
                    if added and (
                        (
                            held.source in added
                            and held.source in rectangle.extra_sources
                        )
                        or (
                            held.target in added
                            and held.target in rectangle.extra_targets
                        )
                    ):
                        dirty.add(user)
                        break
        if summary.edge_sources:
            if self.compiled:
                self._collect_dirty_bits(summary, since, dirty)
            else:
                self._collect_dirty(summary, since, dirty)

        if self.compiled:
            ancestor_memo: dict = {}
            rectangle_memo: dict = {}
            for user in dirty:
                self._build_user_bits(user, ancestor_memo, rectangle_memo)
        else:
            entity_ancestors: dict[object, frozenset] = {}
            for user in dirty:
                self._build_user(user, entity_ancestors)

    def _collect_dirty(self, summary, since: int, dirty: set) -> None:
        """Frozenset dirty-subject sweep for one repair window."""
        upstream, downstream = self._dirty_region(
            summary.edge_sources, summary.edge_targets, since
        )
        # A held set can only gain/lose privileges lying downstream
        # of a mutated edge's target; a privilege-free downstream
        # region (pure membership/hierarchy shuffling below any
        # assignment) leaves every held set intact.
        if any(is_privilege(vertex) for vertex in downstream):
            dirty |= self._held.keys() & upstream
        for user, rectangles in self._rectangles.items():
            if not rectangles or user in dirty:
                continue
            for rectangle in rectangles:
                held = rectangle.held
                if held.source in downstream or held.target in upstream:
                    dirty.add(user)
                    break

    def _collect_dirty_bits(self, summary, since: int, dirty: set) -> None:
        """Compiled dirty-subject sweep: the dirty users are one
        ``upstream & users_mask`` intersection, and rectangle dirtiness
        is a bit-test per held endpoint.  Off-graph region members
        (seeds removed within the window) are checked against the
        region's absent sets, preserving the frozenset semantics."""
        policy = self.policy
        graph = policy.graph
        bits = policy.bits
        upstream, downstream, absent_sources, absent_targets = (
            self._dirty_region_bits(
                summary.edge_sources, summary.edge_targets, since
            )
        )
        held_map = self._held
        if downstream & bits.privileges_mask or any(
            is_privilege(vertex) for vertex in absent_targets
        ):
            vertex_of = graph._vertex_of
            for index in iter_bits(upstream & bits.users_mask):
                user = vertex_of[index]
                if user in held_map:
                    dirty.add(user)
        vid = graph._vid
        for user, rectangles in self._rectangles.items():
            if not rectangles or user in dirty:
                continue
            for rectangle in rectangles:
                held = rectangle.held
                source_id = vid.get(held.source)
                if (
                    downstream >> source_id & 1 if source_id is not None
                    else held.source in absent_targets
                ):
                    dirty.add(user)
                    break
                target_id = vid.get(held.target)
                if (
                    upstream >> target_id & 1 if target_id is not None
                    else held.target in absent_sources
                ):
                    dirty.add(user)
                    break

    def refresh(self) -> None:
        """Bring the index up to date with the policy now (the same
        repair that would otherwise happen lazily on the next query)."""
        self._validate()

    # ------------------------------------------------------------------
    def authorizes(self, user: User, command: Command) -> Privilege | None:
        """The held privilege covering ``command`` under refined-mode
        semantics, or None."""
        self._validate()
        wanted = command.requested_privilege()
        if wanted is None:
            return None
        if self.compiled:
            return self._authorizes_bits(user, command, wanted)
        return self._authorizes_sets(user, command, wanted)

    def _authorizes_sets(
        self, user: User, command: Command, wanted: Privilege
    ) -> Privilege | None:
        """Frozenset decision path — the oracle twin of
        :meth:`_authorizes_bits` (and the per-pair loop body of the
        ``compiled=False`` batch)."""
        held = self._held.get(user, frozenset())
        if wanted in held:
            return wanted
        if command.action is CommandAction.REVOKE:
            return None  # revocations: exact match only
        source, target = command.source, command.target
        if isinstance(target, _Entity):
            for rectangle in self._rectangles.get(user, ()):
                if rectangle.covers(source, target):
                    return rectangle.held
            return None
        # Nested-privilege grant targets: fall back to the oracle.
        for privilege in held:
            if self._oracle.is_weaker(privilege, wanted):
                return privilege
        return None

    def _authorizes_bits(
        self, user: User, command: Command, wanted: Privilege
    ) -> Privilege | None:
        """Compiled decision path: exact match is one bit-test, the
        rectangle scan is rejected by two union-mask bit-tests on a
        miss, and only confirmed hits walk the per-rectangle rows."""
        row = self._rect_rows.get(user)
        if row is None:
            return None  # not an indexed subject: holds nothing
        graph = self.policy.graph
        vid = graph._vid
        held, union_sources, union_targets, rows = row
        if held:
            wanted_id = vid.get(wanted)
            if wanted_id is not None and held >> wanted_id & 1:
                return wanted
        if command.action is CommandAction.REVOKE:
            return None  # revocations: exact match only
        source, target = command.source, command.target
        if isinstance(target, _Entity):
            source_id = vid.get(source)
            target_id = vid.get(target)
            if source_id is not None and target_id is not None:
                if (
                    union_sources >> source_id & 1
                    and union_targets >> target_id & 1
                ):
                    for source_bits, target_bits, held_by, _pid in rows:
                        if (
                            source_bits >> source_id & 1
                            and target_bits >> target_id & 1
                        ):
                            return held_by
                return None
            # Off-graph source or target: the rare slow path through
            # the rectangles' extras.
            for rectangle in self._rectangles.get(user, ()):
                if rectangle.covers(source, target):
                    return rectangle.held
            return None
        if not held:
            return None
        # Nested-privilege grant targets: fall back to the oracle.
        vertex_of = graph._vertex_of
        for index in iter_bits(held):
            privilege = vertex_of[index]
            if self._oracle.is_weaker(privilege, wanted):
                return privilege
        return None

    # ------------------------------------------------------------------
    # Batch authorization
    # ------------------------------------------------------------------
    def authorizes_batch(self, pairs) -> list[Privilege | None]:
        """Decide many ``(user, command)`` queries in one sweep.

        Verdicts are positionally aligned with ``pairs`` and
        element-for-element identical to ``[self.authorizes(u, c) for
        (u, c) in pairs]`` — same covering privilege, including the
        scalar path's first-match rectangle order — pinned by fuzz
        invariant 12 (:func:`repro.workloads.fuzz.fuzz_batch_authz`)
        and the batch property suite.  One index validation covers the
        whole batch; an empty batch returns ``[]`` without touching
        the index or rectangle state.

        Under ``compiled=True`` this runs the packed-matrix kernel
        (see :meth:`_authorizes_batch_bits`); the frozenset oracle
        answers pair by pair, as the differential twin.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        self._validate()
        if self.compiled:
            return self._authorizes_batch_bits(pairs)
        decide = self._authorizes_sets
        results: list[Privilege | None] = []
        for user, command in pairs:
            wanted = command.requested_privilege()
            results.append(
                None if wanted is None else decide(user, command, wanted)
            )
        return results

    def _authorizes_batch_bits(self, pairs) -> list[Privilege | None]:
        """Compiled batch kernel: amortize one rectangle sweep per
        distinct command edge over the whole query population.

        Queries are routed by *object identity* (``id()`` of the
        subject and the edge endpoints), so the per-query pass never
        calls the Python-level entity ``__hash__``; equal-but-distinct
        objects just form sibling groups with identical verdicts, and
        the ``pairs`` list keeps every object alive so ids stay
        stable.  The batch subjects' rectangle rows are packed into
        one matrix keyed by privilege vertex ID (rectangle contents
        are per-privilege, so rows dedup across subjects).  For each
        distinct edge, a single pass over that matrix compiles an
        *eligible-privileges mask* — every grant privilege whose
        rectangle covers the edge.  A subject's verdict is then the
        lowest set bit of ``held & eligible``: rows are built in
        ascending privilege-ID order, so the lowest bit is exactly the
        scalar scan's first covering rectangle.  Edges the mask
        algebra cannot decide — nested-privilege targets, off-graph
        endpoints living in rectangle extras — fall back to the
        scalar compiled path per subject.
        """
        graph = self.policy.graph
        vid = graph._vid
        vertex_of = graph._vertex_of
        rect_rows = self._rect_rows
        grant = CommandAction.GRANT
        results: list[Privilege | None] = [None] * len(pairs)

        # Pass 1: route queries into (subject, edge) groups by object
        # identity — no entity hashing on the per-query path.  The dict
        # maps key -> positions list; ``groups`` keeps first-seen order
        # with the (user, command) objects alongside.
        by_key: dict = {}
        key_get = by_key.get
        groups: list = []
        for position, (user, command) in enumerate(pairs):
            key = (
                id(user), command.action is grant,
                id(command.source), id(command.target),
            )
            positions = key_get(key)
            if positions is None:
                positions = [position]
                by_key[key] = positions
                groups.append((user, command, positions))
            else:
                positions.append(position)

        # The batch's packed rectangle matrix: one row per distinct
        # grant privilege held by any batch subject.
        batch_rows: dict[int, tuple[int, int]] = {}
        union_sources = union_targets = 0
        packed_subjects: set[int] = set()
        for user, _command, _positions in groups:
            marker = id(user)
            if marker in packed_subjects:
                continue
            packed_subjects.add(marker)
            row = rect_rows.get(user)
            if row is None:
                continue
            for source_bits, target_bits, _held_by, pid in row[3]:
                if pid not in batch_rows:
                    batch_rows[pid] = (source_bits, target_bits)
                    union_sources |= source_bits
                    union_targets |= target_bits
        row_items = [
            (pid, source_bits, target_bits)
            for pid, (source_bits, target_bits) in batch_rows.items()
        ]

        # Pass 2: one decision per group; per-edge work (requested-term
        # construction, the eligible-privilege rectangle sweep) is
        # shared across subjects through the edge memo.
        fallback = self._authorizes_bits
        edges: dict = {}
        edge_get = edges.get
        # Eligible masks factor into per-endpoint cover masks — the
        # pids whose rectangles contain a given source (resp. target)
        # vertex.  Each distinct endpoint is swept once and shared by
        # every edge that names it; eligible = src_cover & tgt_cover.
        source_cover: dict[int, int] = {}
        target_cover: dict[int, int] = {}
        for user, command, positions in groups:
            row = rect_rows.get(user)
            if row is None:
                continue  # not an indexed subject: holds nothing
            edge_key = (
                command.action is grant,
                id(command.source), id(command.target),
            )
            edge = edge_get(edge_key)
            if edge is None:
                wanted = command.requested_privilege()
                if wanted is None:
                    edge = (None, None, 0)
                else:
                    wanted_id = vid.get(wanted)
                    eligible: object = 0
                    if command.action is not grant:
                        pass  # revocations: exact match only
                    elif not isinstance(command.target, _Entity):
                        eligible = None  # nested target: oracle path
                    else:
                        source_id = vid.get(command.source)
                        target_id = vid.get(command.target)
                        if source_id is None or target_id is None:
                            eligible = None  # off-graph: extras path
                        elif (
                            union_sources >> source_id & 1
                            and union_targets >> target_id & 1
                        ):
                            src_mask = source_cover.get(source_id)
                            if src_mask is None:
                                src_mask = 0
                                for pid, source_bits, _ in row_items:
                                    if source_bits >> source_id & 1:
                                        src_mask |= 1 << pid
                                source_cover[source_id] = src_mask
                            tgt_mask = target_cover.get(target_id)
                            if tgt_mask is None:
                                tgt_mask = 0
                                for pid, _, target_bits in row_items:
                                    if target_bits >> target_id & 1:
                                        tgt_mask |= 1 << pid
                                target_cover[target_id] = tgt_mask
                            eligible = src_mask & tgt_mask
                    edge = (wanted, wanted_id, eligible)
                edges[edge_key] = edge
            wanted, wanted_id, eligible = edge
            if wanted is None:
                continue
            held = row[0]
            if wanted_id is not None and held >> wanted_id & 1:
                verdict = wanted
            elif eligible is None:
                verdict = fallback(user, command, wanted)
                if verdict is None:
                    continue
            else:
                covered = held & eligible
                if not covered:
                    continue
                verdict = vertex_of[(covered & -covered).bit_length() - 1]
            for position in positions:
                results[position] = verdict
        return results

    # ------------------------------------------------------------------
    def held_privileges(self, user: User) -> frozenset[Privilege]:
        """The user's held privilege set in representation-independent
        form (decodes the bitmask under ``compiled=True``) — the view
        the differential harnesses compare across kernels."""
        self._validate()
        held = self._held.get(user)
        if held is None:
            return frozenset()
        if not self.compiled:
            return held
        vertex_of = self.policy.graph._vertex_of
        return frozenset(vertex_of[index] for index in iter_bits(held))

    def held_privileges_bulk(
        self, users
    ) -> dict[User, frozenset[Privilege]]:
        """Held privilege sets for a whole population in one
        validation: equal to ``{user: self.held_privileges(user)}``
        per user (duplicates collapse; unknown subjects map to the
        empty set).  Under ``compiled=True`` the bitmask decode is
        memoized per distinct held mask — users sharing a role subtree
        share one decoded frozenset, so a million-user audit decodes
        each distinct authority profile once.  An empty population
        returns ``{}`` without touching the index."""
        users = list(users)
        if not users:
            return {}
        self._validate()
        held_map = self._held
        if not self.compiled:
            return {user: held_map.get(user, _EMPTY) for user in users}
        vertex_of = self.policy.graph._vertex_of
        decoded: dict[int, frozenset] = {0: _EMPTY}
        decoded_get = decoded.get
        out: dict[User, frozenset] = {}
        for user in users:
            held = held_map.get(user, 0)
            cached = decoded_get(held)
            if cached is None:
                cached = decoded[held] = frozenset(
                    vertex_of[index] for index in iter_bits(held)
                )
            out[user] = cached
        return out

    def _entity_grant_edges(self, user: User, connective) -> set:
        """Edges of held entity-target ¤/♦ privileges (both kernels)."""
        held = self._held.get(user)
        if held is None:
            return set()
        if self.compiled:
            bits = self.policy.bits
            mask = (
                bits.grant_entity_mask if connective is Grant
                else bits.revoke_entity_mask
            )
            vertex_of = self.policy.graph._vertex_of
            return {
                vertex_of[index].edge for index in iter_bits(held & mask)
            }
        return {
            privilege.edge
            for privilege in held
            if isinstance(privilege, connective)
            and isinstance(privilege.target, _Entity)
        }

    def grantable_pairs(
        self, user: User, at_version: int | None = None
    ) -> frozenset[tuple[object, object]]:
        """All entity-pair edges ``(v, v')`` the user may currently
        grant: the union of the rectangles plus exact entity grants.
        Rectangle sources are entity-filtered at build time, so every
        rectangle pair is a legal grant as-is.

        ``at_version`` answers from the retained
        :class:`ReviewSnapshot` captured at that policy version (see
        :meth:`snapshot`) instead of the live policy, so an audit
        burst interleaved with mutations sees one consistent version;
        a version with no retained snapshot raises ValueError."""
        if at_version is not None:
            return self._snapshot_at(at_version).grantable_pairs(user)
        self._validate()
        pairs: set[tuple[object, object]] = set()
        for rectangle in self._rectangles.get(user, ()):
            for source in rectangle.sources:
                for target in rectangle.targets:
                    pairs.add((source, target))
        pairs |= self._entity_grant_edges(user, Grant)
        return frozenset(pairs)

    def grantable_pairs_bulk(
        self, users, at_version: int | None = None
    ) -> dict[User, frozenset[tuple[object, object]]]:
        """Grantable entity-pair edges for a whole population in one
        validation: equal to ``{user: self.grantable_pairs(user)}``
        per user (duplicates collapse; unknown subjects map to the
        empty set) — pinned by the differential suite in
        ``tests/core/test_review_bulk.py``.

        The expansion is memoized per distinct *authority profile*:
        the held entity-target grants determine both the rectangles
        and the exact edges, so users sharing a delegation profile
        (the common case — profiles come from role subtrees) expand
        it once, and each distinct rectangle is decoded once across
        the whole sweep rather than once per holder.  ``at_version``
        answers from the retained snapshot, as in
        :meth:`grantable_pairs`.  An empty population returns ``{}``
        without touching the index.
        """
        users = list(users)
        if not users:
            return {}
        if at_version is not None:
            return self._snapshot_at(at_version).grantable_pairs_bulk(
                users
            )
        self._validate()
        #: profile key -> expanded frozenset of grantable pairs.  The
        #: key is the held grant-entity mask (compiled) or the held
        #: entity-target grant set (frozenset kernel) — exactly the
        #: inputs :meth:`grantable_pairs` derives its answer from.
        profiles: dict[object, frozenset] = {}
        #: rectangle -> decoded (sources, targets) pair, shared by
        #: every profile containing it (rectangle contents are
        #: per-privilege; pooled instances dedup by identity).
        decoded: dict[int, tuple] = {}
        out: dict[User, frozenset] = {}
        compiled = self.compiled
        grant_mask = self.policy.bits.grant_entity_mask if compiled else 0
        vertex_of = self.policy.graph._vertex_of if compiled else None
        for user in users:
            if compiled:
                row = self._rect_rows.get(user)
                key: object = (
                    0 if row is None else row[0] & grant_mask
                )
            else:
                held = self._held.get(user, _EMPTY)
                key = frozenset(
                    privilege for privilege in held
                    if isinstance(privilege, Grant)
                    and isinstance(privilege.target, _Entity)
                )
            cached = profiles.get(key)
            if cached is None:
                pairs: set[tuple[object, object]] = set()
                for rectangle in self._rectangles.get(user, ()):
                    regions = decoded.get(id(rectangle))
                    if regions is None:
                        regions = decoded[id(rectangle)] = (
                            rectangle.sources, rectangle.targets
                        )
                    sources, targets = regions
                    for source in sources:
                        for target in targets:
                            pairs.add((source, target))
                if compiled:
                    pairs.update(
                        vertex_of[index].edge for index in iter_bits(key)
                    )
                else:
                    pairs.update(privilege.edge for privilege in key)
                cached = profiles[key] = frozenset(pairs)
            out[user] = cached
        return out

    def revocable_pairs(
        self, user: User, at_version: int | None = None
    ) -> frozenset[tuple[object, object]]:
        """All entity-pair edges the user may currently revoke.

        Revocations are authorized by exact match only (the ordering
        relates ♦-privileges just reflexively), so this is simply the
        edges of the held entity-target ♦-privileges — kept consistent
        with :meth:`authorizes` by construction.  ``at_version``
        answers from the retained snapshot, as in
        :meth:`grantable_pairs`."""
        if at_version is not None:
            return self._snapshot_at(at_version).revocable_pairs(user)
        self._validate()
        return frozenset(self._entity_grant_edges(user, Revoke))

    def effective_authority(
        self, user: User, at_version: int | None = None
    ) -> dict[str, frozenset[tuple[object, object]]]:
        """The review-function view of implicit authorization — what an
        administrator sees as "my effective authority": every entity
        pair the user may grant and every pair they may revoke, exactly
        the pairs :meth:`authorizes` would permit."""
        return {
            "grant": self.grantable_pairs(user, at_version=at_version),
            "revoke": self.revocable_pairs(user, at_version=at_version),
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> "ReviewSnapshot":
        """Capture and retain a review snapshot at the current policy
        version.  Subsequent ``grantable_pairs(..., at_version=v)``
        calls answer from it while mutations continue on the live
        policy; only the most recent snapshot is retained (the batched
        submit-queue path captures one per audited batch)."""
        snapshot = ReviewSnapshot(self.policy, compiled=self.compiled)
        self._snapshot = snapshot
        return snapshot

    def _snapshot_at(self, version: int) -> "ReviewSnapshot":
        return retained_snapshot(self._snapshot, version)

    def statistics(self) -> dict[str, int]:
        self._validate()
        return {
            "users": len(self._held),
            "rectangles": sum(len(r) for r in self._rectangles.values()),
            "rectangle_pairs": sum(
                rect.pair_count()
                for rects in self._rectangles.values()
                for rect in rects
            ),
            "full_rebuilds": self.full_rebuilds,
            "partial_refreshes": self.partial_refreshes,
            "users_refreshed": self.users_refreshed,
        }


def retained_snapshot(
    snapshot: "ReviewSnapshot | None", version: int
) -> "ReviewSnapshot":
    """The retained snapshot if it matches ``version``, else a
    ValueError telling the auditor what is actually retained (shared
    by the plain and sharded indexes)."""
    if snapshot is None or snapshot.version != version:
        retained = "none" if snapshot is None else snapshot.version
        raise ValueError(
            f"no review snapshot retained at version {version} "
            f"(retained: {retained}); call snapshot() at the version "
            "the audit should see"
        )
    return snapshot


class ReviewSnapshot:
    """A frozen review-function view of the policy at one version.

    Captures a :meth:`Policy.copy` eagerly (O(V+E), the cost of
    consistency) and builds an index over it lazily on the first
    review query — in the retaining index's kernel representation, so
    a frozenset-oracle index stays frozenset end to end — so a
    batched submit-queue that retains a snapshot per audited batch
    pays for the index only if an audit actually reads it.  Answers
    are immutable: every ``grantable_pairs`` / ``revocable_pairs`` /
    ``effective_authority`` call sees exactly the captured version,
    regardless of how far the live policy has moved on.
    """

    __slots__ = ("version", "compiled", "_policy", "_index")

    def __init__(self, policy: Policy, compiled: bool = True):
        self.version = policy.version
        self.compiled = compiled
        self._policy = policy.copy()
        self._index: AuthorizationIndex | None = None

    def _ensure_index(self) -> AuthorizationIndex:
        index = self._index
        if index is None:
            index = self._index = AuthorizationIndex(
                self._policy, compiled=self.compiled
            )
        return index

    def grantable_pairs(self, user: User) -> frozenset:
        return self._ensure_index().grantable_pairs(user)

    def grantable_pairs_bulk(self, users) -> dict[User, frozenset]:
        return self._ensure_index().grantable_pairs_bulk(users)

    def revocable_pairs(self, user: User) -> frozenset:
        return self._ensure_index().revocable_pairs(user)

    def authorizes(self, user: User, command: Command) -> Privilege | None:
        """Decide ``command`` for ``user`` at the pinned version — the
        same refined-mode verdict :meth:`AuthorizationIndex.authorizes`
        gives, frozen at capture time.  This is the serving layer's
        read path: a reader holding this snapshot never observes a
        mutation applied after it was captured."""
        return self._ensure_index().authorizes(user, command)

    def authorizes_batch(self, pairs) -> list[Privilege | None]:
        """Batch :meth:`authorizes` over ``(user, command)`` pairs via
        the packed-matrix kernel, all at the pinned version."""
        return self._ensure_index().authorizes_batch(pairs)

    def policy_copy(self) -> Policy:
        """A mutable copy of the captured policy, for differential
        oracles that rebuild their own view of this version; the
        snapshot's own copy stays untouched."""
        return self._policy.copy()

    def effective_authority(self, user: User) -> dict[str, frozenset]:
        return self._ensure_index().effective_authority(user)

    def __repr__(self) -> str:
        return f"ReviewSnapshot(version={self.version})"
