"""A precomputed authorization index for the refined monitor.

The plain refined monitor answers "may user u execute cmd(u, ¤, v, v')"
by iterating every privilege reachable from ``u`` and running the
Lemma-1 decision procedure against ``¤(v, v')``.  That is fine for a
handful of privileges, but a production reference monitor fields the
same question thousands of times between policy changes.  This module
precomputes, per subject, the *grant rectangles* implied by the
ordering:

For an entity-target grant privilege ``¤(s, t)`` reachable by the
subject, rule (2) authorizes exactly the commands ``¤(v, v')`` whose
new source reaches the original source and whose new target is reached
by the original target, i.e. the authorized pairs are::

    { (v, v') : v ∈ ancestors(s) ∩ (U ∪ R),  v' ∈ descendants(t) }

(with the usual grammar sorts), a *rectangle* ancestors(s) ×
descendants(t).  The index stores these rectangles as pairs of frozen
sets; an authorization query is then two set-membership tests per held
privilege instead of a recursive procedure.  Nested-target grants
(rule 3) and the generalized rule-(2) hop are delegated to the
ordering oracle — they are the rare case, and correctness is what
matters there.

The index is versioned against the policy graph like every other
cache, and its answers are verified against the oracle by the test
suite (`tests/core/test_authz_index.py`) and by a differential fuzz
harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import ancestors as graph_ancestors
from .commands import Command, CommandAction
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import Grant, Privilege, is_privilege

_Entity = (User, Role)


@dataclass(frozen=True)
class GrantRectangle:
    """The set of entity-pair grants authorized by one held privilege:
    ``sources × targets`` (already sort-filtered)."""

    held: Grant
    sources: frozenset
    targets: frozenset

    def covers(self, source: object, target: object) -> bool:
        return source in self.sources and target in self.targets

    def pair_count(self) -> int:
        return len(self.sources) * len(self.targets)


class AuthorizationIndex:
    """Per-subject precomputed authorization for the refined monitor.

    ``authorizes(user, command)`` returns the held privilege that
    covers the command, or None.  Exact matches and revocations are
    answered from a set; entity-target grants from the rectangles;
    nested grants fall back to the ordering oracle.
    """

    __slots__ = ("policy", "_version", "_held", "_rectangles", "_oracle")

    def __init__(self, policy: Policy):
        self.policy = policy
        self._version = -1
        self._held: dict[User, frozenset[Privilege]] = {}
        self._rectangles: dict[User, tuple[GrantRectangle, ...]] = {}
        self._oracle = OrderingOracle(policy)
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self._held.clear()
        self._rectangles.clear()
        graph = self.policy.graph
        entity_ancestors: dict[object, frozenset] = {}

        def ancestors_of(vertex) -> frozenset:
            cached = entity_ancestors.get(vertex)
            if cached is None:
                cached = frozenset(
                    v for v in graph_ancestors(graph, vertex)
                    if isinstance(v, _Entity)
                )
                entity_ancestors[vertex] = cached
            return cached

        for user in self.policy.users():
            held = frozenset(
                vertex
                for vertex in self.policy.descendants(user)
                if is_privilege(vertex)
            )
            self._held[user] = held
            rectangles = []
            for privilege in held:
                if not isinstance(privilege, Grant):
                    continue
                if not isinstance(privilege.target, _Entity):
                    continue
                # Weaker sources: entities v with v ->phi s (rule 2
                # premise v1 -> v2); weaker targets: entities below t.
                sources = ancestors_of(privilege.source)
                targets = frozenset(
                    v for v in self.policy.descendants(privilege.target)
                    if isinstance(v, Role)
                )
                rectangles.append(
                    GrantRectangle(privilege, sources, targets)
                )
            self._rectangles[user] = tuple(rectangles)
        self._version = graph.version

    def _validate(self) -> None:
        if self._version != self.policy.graph.version:
            self._rebuild()

    # ------------------------------------------------------------------
    def authorizes(self, user: User, command: Command) -> Privilege | None:
        """The held privilege covering ``command`` under refined-mode
        semantics, or None."""
        self._validate()
        held = self._held.get(user, frozenset())
        wanted = command.requested_privilege()
        if wanted is None:
            return None
        if wanted in held:
            return wanted
        if command.action is CommandAction.REVOKE:
            return None  # revocations: exact match only
        source, target = command.source, command.target
        if isinstance(target, _Entity):
            for rectangle in self._rectangles.get(user, ()):
                if rectangle.covers(source, target):
                    return rectangle.held
            return None
        # Nested-privilege grant targets: fall back to the oracle.
        for privilege in held:
            if self._oracle.is_weaker(privilege, wanted):
                return privilege
        return None

    # ------------------------------------------------------------------
    def grantable_pairs(self, user: User) -> frozenset[tuple[object, object]]:
        """All entity-pair edges ``(v, v')`` the user may currently
        grant (the union of the rectangles plus exact entity grants).
        This is the review-function view of implicit authorization —
        what an administrator sees as "my effective authority"."""
        self._validate()
        pairs: set[tuple[object, object]] = set()
        for rectangle in self._rectangles.get(user, ()):
            for source in rectangle.sources:
                for target in rectangle.targets:
                    if isinstance(source, User) or isinstance(source, Role):
                        pairs.add((source, target))
        for privilege in self._held.get(user, frozenset()):
            if isinstance(privilege, Grant) and isinstance(
                privilege.target, _Entity
            ):
                pairs.add(privilege.edge)
        return frozenset(pairs)

    def statistics(self) -> dict[str, int]:
        self._validate()
        return {
            "users": len(self._held),
            "rectangles": sum(len(r) for r in self._rectangles.values()),
            "rectangle_pairs": sum(
                rect.pair_count()
                for rects in self._rectangles.values()
                for rect in rects
            ),
        }
