"""A precomputed authorization index for the refined monitor.

The plain refined monitor answers "may user u execute cmd(u, ¤, v, v')"
by iterating every privilege reachable from ``u`` and running the
Lemma-1 decision procedure against ``¤(v, v')``.  That is fine for a
handful of privileges, but a production reference monitor fields the
same question thousands of times between policy changes.  This module
precomputes, per subject, the *grant rectangles* implied by the
ordering:

For an entity-target grant privilege ``¤(s, t)`` reachable by the
subject, rule (2) authorizes exactly the commands ``¤(v, v')`` whose
new source reaches the original source and whose new target is reached
by the original target, i.e. the authorized pairs are::

    { (v, v') : v ∈ ancestors(s) ∩ (U ∪ R),  v' ∈ descendants(t) }

(with the usual grammar sorts), a *rectangle* ancestors(s) ×
descendants(t).  The index stores these rectangles as pairs of frozen
sets; an authorization query is then two set-membership tests per held
privilege instead of a recursive procedure.  Nested-target grants
(rule 3) and the generalized rule-(2) hop are delegated to the
ordering oracle — they are the rare case, and correctness is what
matters there.

The index is versioned against the policy graph like every other
cache.  Under policy churn it repairs itself *incrementally*: the
graph's change journal yields the edge-level deltas since the last
validation, SCC-condensation reachability (:func:`repro.graph.dirty_region`)
turns those into the set of dirty subjects and rectangles, and only
those entries are rebuilt.  A full rebuild happens only when the
journal has expired or the delta burst exceeds a size threshold
(``incremental=False`` forces the old rebuild-everything behaviour and
is kept as the benchmark baseline).  Its answers are verified against
the oracle by the test suite (`tests/core/test_authz_index.py`) and by
the differential churn harness in :mod:`repro.workloads.fuzz`.

An index-backed refined monitor also unlocks *batched* command queues:
:meth:`repro.core.monitor.ReferenceMonitor.submit_queue` with
``batched=True`` authorizes a whole queue against its entry state with
a single index validation — see that method's docstring for the exact
transactional semantics.

For large populations the index also serves as the *shard* unit of
:class:`repro.core.authz_shard.ShardedAuthorizationIndex`: ``owns``
restricts an instance to a subset of the subjects, ``pool`` shares
interned :class:`GrantRectangle` contents across all shards (they are
per-privilege, not per-user), and ``region_cache`` lets sibling shards
repairing over the same delta window reuse one dirty-region sweep.
All three default to off, which is exactly the original single-index
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import ancestors as graph_ancestors
from ..graph import dirty_region, summarize_deltas
from .commands import Command, CommandAction
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import Grant, Privilege, Revoke, is_privilege

_Entity = (User, Role)


@dataclass(frozen=True)
class GrantRectangle:
    """The set of entity-pair grants authorized by one held privilege:
    ``sources × targets`` (already sort-filtered)."""

    held: Grant
    sources: frozenset
    targets: frozenset

    def covers(self, source: object, target: object) -> bool:
        return source in self.sources and target in self.targets

    def pair_count(self) -> int:
        return len(self.sources) * len(self.targets)


class AuthorizationIndex:
    """Per-subject precomputed authorization for the refined monitor.

    ``authorizes(user, command)`` returns the held privilege that
    covers the command, or None.  Exact matches and revocations are
    answered from a set; entity-target grants from the rectangles;
    nested grants fall back to the ordering oracle.

    Maintenance under churn is incremental (see the module docstring):
    a mutated edge ``(s, t)`` dirties exactly

    * the users upstream of ``s`` (their reachable privilege set may
      have changed), and
    * the rectangles whose held privilege's source lies downstream of
      ``t`` (its ancestor set — the rectangle's sources — may have
      changed) or whose target lies upstream of ``s`` (its descendant
      set — the rectangle's targets — may have changed).

    Everything else is provably untouched, so per-user entries are
    rebuilt only for the dirty set.  ``full_rebuilds`` /
    ``partial_refreshes`` / ``users_refreshed`` expose the maintenance
    behaviour to tests and benchmarks.
    """

    #: delta bursts larger than max(DELTA_LIMIT, #users) trigger a full
    #: rebuild instead of an incremental repair.
    DELTA_LIMIT = 64

    #: shared region caches are tiny: dirty regions are only reusable
    #: across shards repairing over the same delta window, so old
    #: windows are dead weight.
    REGION_CACHE_LIMIT = 32

    __slots__ = ("policy", "incremental", "full_rebuilds",
                 "partial_refreshes", "users_refreshed",
                 "_cursor", "_held", "_rectangles", "_oracle",
                 "_pool", "_owns", "_region_cache")

    def __init__(
        self,
        policy: Policy,
        incremental: bool = True,
        pool=None,
        owns=None,
        region_cache: dict | None = None,
    ):
        self.policy = policy
        self.incremental = incremental
        self.full_rebuilds = 0
        self.partial_refreshes = 0
        self.users_refreshed = 0
        self._cursor = policy.journal_cursor()
        self._held: dict[User, frozenset[Privilege]] = {}
        self._rectangles: dict[User, tuple[GrantRectangle, ...]] = {}
        self._oracle = OrderingOracle(policy)
        #: rectangle-sharing pool (see repro.core.authz_shard); None
        #: means rectangles are built privately per instance.
        self._pool = pool
        #: subject filter — a shard indexes only the users it owns.
        self._owns = owns
        self._region_cache = region_cache
        self._rebuild()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _build_user(self, user: User, entity_ancestors: dict) -> None:
        """(Re)compute one user's held set and rectangles in place."""
        graph = self.policy.graph
        pool = self._pool

        def ancestors_of(vertex) -> frozenset:
            cached = entity_ancestors.get(vertex)
            if cached is None:
                cached = frozenset(
                    v for v in graph_ancestors(graph, vertex)
                    if isinstance(v, _Entity)
                )
                entity_ancestors[vertex] = cached
            return cached

        held = frozenset(
            vertex
            for vertex in self.policy.descendants(user)
            if is_privilege(vertex)
        )
        self._held[user] = held
        rectangles = []
        for privilege in held:
            if not isinstance(privilege, Grant):
                continue
            if not isinstance(privilege.target, _Entity):
                continue
            if pool is not None:
                # Rectangle contents are per-privilege, not per-user:
                # every subject holding this grant shares one interned
                # rectangle.
                rectangles.append(pool.rectangle(privilege))
                continue
            # Weaker sources: entities v with v ->phi s (rule 2
            # premise v1 -> v2); weaker targets: entities below t.
            sources = ancestors_of(privilege.source)
            targets = frozenset(
                v for v in self.policy.descendants(privilege.target)
                if isinstance(v, Role)
            )
            rectangles.append(
                GrantRectangle(privilege, sources, targets)
            )
        self._rectangles[user] = tuple(rectangles)
        self.users_refreshed += 1

    def _subjects(self):
        """The users this instance indexes (all of them, unless it is a
        shard restricted by ``owns``)."""
        if self._owns is None:
            return self.policy.users()
        return (user for user in self.policy.users() if self._owns(user))

    def _rebuild(self) -> None:
        if self._pool is not None:
            self._pool.validate()
        self._held.clear()
        self._rectangles.clear()
        entity_ancestors: dict[object, frozenset] = {}
        for user in self._subjects():
            self._build_user(user, entity_ancestors)
        self._cursor.version = self.policy.version
        self.full_rebuilds += 1

    def _validate(self) -> None:
        if self._cursor.version == self.policy.version:
            return
        since = self._cursor.version
        deltas = (
            self.policy.changes_since(since)
            if self.incremental else None
        )
        if deltas is None:
            self._rebuild()
            return
        # Vertex additions only ever create per-user entries, never
        # dirty existing ones, so only edge mutations and vertex
        # removals (the summary weight) count toward the full-rebuild
        # fallback.
        summary = summarize_deltas(deltas)
        if summary.weight > max(self.DELTA_LIMIT, len(self._held)):
            self._rebuild()
            return
        self._apply_deltas(deltas, summary, since)
        self._cursor.version = self.policy.version
        self.partial_refreshes += 1

    def _dirty_region(self, edge_sources, edge_targets, since):
        """The (upstream, downstream) region for this repair window,
        shared with sibling shards via the region cache: the deltas —
        and hence the region — are a pure function of the version
        window, so shards repairing over the same window reuse one
        sweep."""
        if self._region_cache is None:
            return dirty_region(self.policy.graph, edge_sources, edge_targets)
        key = (since, self.policy.version)
        region = self._region_cache.get(key)
        if region is None:
            region = dirty_region(
                self.policy.graph, edge_sources, edge_targets
            )
            if len(self._region_cache) >= self.REGION_CACHE_LIMIT:
                self._region_cache.clear()
            self._region_cache[key] = region
        return region

    def _apply_deltas(self, deltas, summary, since: int) -> None:
        """Incrementally repair the index from journaled graph deltas.

        The edge endpoints come pre-classified in ``summary``; the
        per-delta walk below only does the order-sensitive per-user
        bookkeeping (a user removed then re-added within the burst
        must end up fresh, not stale).
        """
        if self._pool is not None:
            self._pool.validate()
        fresh_users: set[User] = set()
        for delta in deltas:
            if delta.is_edge:
                continue
            if delta.kind == "remove-vertex":
                if isinstance(delta.source, User):
                    self._held.pop(delta.source, None)
                    self._rectangles.pop(delta.source, None)
                fresh_users.discard(delta.source)
            elif isinstance(delta.source, User):
                if delta.source not in self._held and (
                    self._owns is None or self._owns(delta.source)
                ):
                    fresh_users.add(delta.source)

        dirty: set[User] = set(fresh_users)
        if summary.edge_sources:
            upstream, downstream = self._dirty_region(
                summary.edge_sources, summary.edge_targets, since
            )
            # A held set can only gain/lose privileges lying downstream
            # of a mutated edge's target; a privilege-free downstream
            # region (pure membership/hierarchy shuffling below any
            # assignment) leaves every held set intact.
            if any(is_privilege(vertex) for vertex in downstream):
                dirty |= self._held.keys() & upstream
            for user, rectangles in self._rectangles.items():
                if not rectangles or user in dirty:
                    continue
                for rectangle in rectangles:
                    held = rectangle.held
                    if held.source in downstream or held.target in upstream:
                        dirty.add(user)
                        break

        entity_ancestors: dict[object, frozenset] = {}
        for user in dirty:
            self._build_user(user, entity_ancestors)

    def refresh(self) -> None:
        """Bring the index up to date with the policy now (the same
        repair that would otherwise happen lazily on the next query)."""
        self._validate()

    # ------------------------------------------------------------------
    def authorizes(self, user: User, command: Command) -> Privilege | None:
        """The held privilege covering ``command`` under refined-mode
        semantics, or None."""
        self._validate()
        held = self._held.get(user, frozenset())
        wanted = command.requested_privilege()
        if wanted is None:
            return None
        if wanted in held:
            return wanted
        if command.action is CommandAction.REVOKE:
            return None  # revocations: exact match only
        source, target = command.source, command.target
        if isinstance(target, _Entity):
            for rectangle in self._rectangles.get(user, ()):
                if rectangle.covers(source, target):
                    return rectangle.held
            return None
        # Nested-privilege grant targets: fall back to the oracle.
        for privilege in held:
            if self._oracle.is_weaker(privilege, wanted):
                return privilege
        return None

    # ------------------------------------------------------------------
    def grantable_pairs(self, user: User) -> frozenset[tuple[object, object]]:
        """All entity-pair edges ``(v, v')`` the user may currently
        grant: the union of the rectangles plus exact entity grants.
        Rectangle sources are entity-filtered at build time, so every
        rectangle pair is a legal grant as-is."""
        self._validate()
        pairs: set[tuple[object, object]] = set()
        for rectangle in self._rectangles.get(user, ()):
            for source in rectangle.sources:
                for target in rectangle.targets:
                    pairs.add((source, target))
        for privilege in self._held.get(user, frozenset()):
            if isinstance(privilege, Grant) and isinstance(
                privilege.target, _Entity
            ):
                pairs.add(privilege.edge)
        return frozenset(pairs)

    def revocable_pairs(self, user: User) -> frozenset[tuple[object, object]]:
        """All entity-pair edges the user may currently revoke.

        Revocations are authorized by exact match only (the ordering
        relates ♦-privileges just reflexively), so this is simply the
        edges of the held entity-target ♦-privileges — kept consistent
        with :meth:`authorizes` by construction."""
        self._validate()
        return frozenset(
            privilege.edge
            for privilege in self._held.get(user, frozenset())
            if isinstance(privilege, Revoke)
            and isinstance(privilege.target, _Entity)
        )

    def effective_authority(
        self, user: User
    ) -> dict[str, frozenset[tuple[object, object]]]:
        """The review-function view of implicit authorization — what an
        administrator sees as "my effective authority": every entity
        pair the user may grant and every pair they may revoke, exactly
        the pairs :meth:`authorizes` would permit."""
        return {
            "grant": self.grantable_pairs(user),
            "revoke": self.revocable_pairs(user),
        }

    def statistics(self) -> dict[str, int]:
        self._validate()
        return {
            "users": len(self._held),
            "rectangles": sum(len(r) for r in self._rectangles.values()),
            "rectangle_pairs": sum(
                rect.pair_count()
                for rects in self._rectangles.values()
                for rect in rects
            ),
            "full_rebuilds": self.full_rebuilds,
            "partial_refreshes": self.partial_refreshes,
            "users_refreshed": self.users_refreshed,
        }
