"""Sharded authorization index with cross-subject rectangle sharing.

The single :class:`~repro.core.authz_index.AuthorizationIndex` keeps
one per-subject map: every repair and every query serializes on the
same structure, and each subject privately materializes the
``sources × targets`` frozensets of its grant rectangles even though
rectangle contents are a function of the *privilege*, not of the
subject holding it.  Both costs grow with the user population — the
wrong direction for the million-user target.

This module splits the work two ways:

**Sharding.**  Subjects are partitioned across ``N`` shards by a
stable hash of the user name (:func:`shard_of` — ``crc32``, so the
layout is reproducible across processes and runs).  Each shard is a
plain :class:`AuthorizationIndex` restricted to the users it owns,
with its *own* :class:`~repro.graph.JournalCursor` into the policy
graph's change journal.  Consequences:

* a query repairs only the shard owning the queried subject — policy
  churn whose dirty region misses a shard's users costs that shard a
  delta scan, never a rebuild;
* shards lag independently: an idle shard stays stale for free, and
  the journal (which retains entries for the slowest registered
  cursor) lets it catch up incrementally later;
* :meth:`ShardedAuthorizationIndex.refresh` can repair shards on a
  thread pool (``parallel=True``) — shards share no mutable state
  except the pool (locked) and the policy's read caches (pre-validated
  before the fan-out).

**Rectangle sharing.**  All shards draw rectangle contents from one
:class:`RectanglePool`, keyed by the held privilege.  The pool caches
each privilege's interned rectangle from the last graph version at
which its *region* changed: on validation it consults the change
journal and evicts exactly the rectangles whose source lies downstream
or whose target lies upstream of a mutated edge — every other entry is
provably identical at the new version, so subjects across all shards
keep sharing the same frozensets.  With ``U`` users averaging ``k``
held grants of ``P`` distinct privileges, per-subject materialization
stores ``O(U·k)`` frozensets; the pool stores ``O(P)``.

``ShardedAuthorizationIndex(policy, shards=1)`` degenerates to a
single shard owning everybody, and the whole class answers
``authorizes`` / ``grantable_pairs`` / ``revocable_pairs`` /
``effective_authority`` identically to an unsharded index — pinned by
the differential fuzz invariant in :mod:`repro.workloads.fuzz`
(``fuzz_sharded_index``) and by ``tests/core/test_authz_shard.py``.
"""

from __future__ import annotations

import os
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from ..graph import ancestors as graph_ancestors
from ..graph import dirty_region, dirty_region_bits, summarize_deltas
from .authz_index import (
    AuthorizationIndex,
    BitGrantRectangle,
    GrantRectangle,
    ReviewSnapshot,
    compile_sources,
    compile_targets,
    retained_snapshot,
)
from .commands import Command
from .entities import Role, User
from .policy import Policy
from .privileges import Grant, Privilege

_Entity = (User, Role)


def shard_of(user: User, shards: int) -> int:
    """The shard owning ``user`` — a stable hash of the name, so the
    layout is deterministic across processes (``hash()`` is salted)."""
    return zlib.crc32(user.name.encode("utf-8")) % shards


class RectanglePool:
    """Interned :class:`GrantRectangle` contents, shared across every
    subject (and shard) holding the same grant privilege.

    A rectangle's ``sources`` are the entity ancestors of the held
    grant's source and its ``targets`` the role descendants of its
    target — functions of the privilege and the policy graph only.
    The pool builds each rectangle once and revalidates by journal:
    a mutated edge ``(s, t)`` invalidates exactly the rectangles whose
    held source lies in ``descendants(t)`` (their ancestor set may
    have changed) or whose held target lies in ``ancestors(s)`` (their
    descendant set may have changed) — the same dirty-region argument
    the index itself uses.  Deltas larger than ``DELTA_LIMIT`` or an
    expired journal clear the pool wholesale.

    All entry points take the pool lock, so shards may build and look
    up rectangles from worker threads.

    ``compiled=True`` (the default) interns
    :class:`~repro.core.authz_index.BitGrantRectangle` bitmasks instead
    of frozensets — the eviction sweep becomes a bit-test per held
    endpoint — and must match the ``compiled`` flag of the indexes
    drawing from the pool.
    """

    DELTA_LIMIT = 256

    __slots__ = ("policy", "compiled", "hits", "builds", "evictions",
                 "full_clears", "_cursor", "_rectangles", "_ancestors",
                 "_lock")

    def __init__(self, policy: Policy, compiled: bool = True):
        self.policy = policy
        self.compiled = compiled
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self.full_clears = 0
        self._cursor = policy.journal_cursor()
        self._rectangles: dict[Grant, object] = {}
        #: entity-ancestor regions shared between rectangles whose held
        #: privileges have the same source: frozensets, or
        #: ``(mask, extras)`` pairs when compiled.
        self._ancestors: dict[object, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Evict (only) the entries the journaled deltas can have
        touched; callers must validate before building rectangles for
        the current policy version."""
        with self._lock:
            if not self._cursor.pending:
                return
            deltas = self._cursor.take()
            summary = None if deltas is None else summarize_deltas(deltas)
            if summary is None or summary.weight > self.DELTA_LIMIT:
                self._drop_all()
                return
            if summary.weight == 0 and not (
                self.compiled and summary.added_vertices
            ):
                # Pure vertex additions touch no reachable set — but
                # the compiled pool still migrates extras-held
                # endpoints of re-provisioned vertices (see below).
                return
            removed = summary.removed_vertices
            if self.compiled:
                self._evict_stale_bits(summary, removed)
                return
            upstream, downstream = dirty_region(
                self.policy.graph, summary.edge_sources, summary.edge_targets
            )
            sources_dirty = downstream | removed
            targets_dirty = upstream | removed
            stale = [
                privilege
                for privilege in self._rectangles
                if privilege.source in sources_dirty
                or privilege.target in targets_dirty
                or privilege in removed
            ]
            for privilege in stale:
                del self._rectangles[privilege]
            self.evictions += len(stale)
            for vertex in [v for v in self._ancestors if v in sources_dirty]:
                del self._ancestors[vertex]

    def _evict_stale_bits(self, summary, removed) -> None:
        """Compiled eviction (caller holds the lock): the dirty-region
        membership tests are single bit-tests against the two region
        masks; vertices without an ID fall back to the removed set
        (every absent region member was removed inside this window).

        Added vertices additionally evict the rectangles (and cached
        ancestor regions) whose *own endpoint* they are: a rectangle
        built while its endpoint was off-graph carries it in the
        extras, and the hot path only tests the mask once the vertex
        has an ID again — re-provisioning must migrate the
        representation even though the region is set-identical (the
        frozenset pool correctly keeps such entries)."""
        graph = self.policy.graph
        upstream, downstream, absent_sources, absent_targets = (
            dirty_region_bits(
                graph, summary.edge_sources, summary.edge_targets
            )
        )
        added = summary.added_vertices
        sources_extra = absent_targets | removed
        targets_extra = absent_sources | removed
        vid = graph._vid

        def source_dirty(vertex) -> bool:
            index = vid.get(vertex)
            if index is not None and downstream >> index & 1:
                return True
            return bool(sources_extra) and vertex in sources_extra

        def target_dirty(vertex) -> bool:
            index = vid.get(vertex)
            if index is not None and upstream >> index & 1:
                return True
            return bool(targets_extra) and vertex in targets_extra

        def needs_migration(privilege, rectangle) -> bool:
            return bool(added) and (
                (
                    privilege.source in added
                    and privilege.source in rectangle.extra_sources
                )
                or (
                    privilege.target in added
                    and privilege.target in rectangle.extra_targets
                )
            )

        stale = [
            privilege
            for privilege, rectangle in self._rectangles.items()
            if source_dirty(privilege.source)
            or target_dirty(privilege.target)
            or privilege in removed
            or needs_migration(privilege, rectangle)
        ]
        for privilege in stale:
            del self._rectangles[privilege]
        self.evictions += len(stale)
        for vertex in [
            v for v, region in self._ancestors.items()
            if source_dirty(v) or (v in added and v in region[1])
        ]:
            del self._ancestors[vertex]

    def _drop_all(self) -> None:
        if self._rectangles or self._ancestors:
            self._rectangles.clear()
            self._ancestors.clear()
            self.full_clears += 1

    # ------------------------------------------------------------------
    def rectangle(self, privilege: Grant):
        """The interned rectangle for an entity-target grant (built on
        first demand, shared by every holder afterwards).

        The graph traversals run *outside* the lock — they are pure
        reads, and builds are idempotent at a fixed policy version, so
        two threads missing the same privilege at worst duplicate the
        work and the first insertion wins.
        """
        with self._lock:
            rectangle = self._rectangles.get(privilege)
            if rectangle is not None:
                self.hits += 1
                return rectangle
            sources = self._ancestors.get(privilege.source)
        if self.compiled:
            if sources is None:
                sources = compile_sources(self.policy, privilege.source)
            source_bits, extra_sources = sources
            target_bits, extra_targets = compile_targets(
                self.policy, privilege.target
            )
            built = BitGrantRectangle(
                privilege, source_bits, target_bits,
                extra_sources, extra_targets, self.policy.graph,
            )
        else:
            if sources is None:
                sources = frozenset(
                    v for v in graph_ancestors(
                        self.policy.graph, privilege.source
                    )
                    if isinstance(v, _Entity)
                )
            targets = frozenset(
                v for v in self.policy.descendants(privilege.target)
                if isinstance(v, Role)
            )
            built = GrantRectangle(privilege, sources, targets)
        with self._lock:
            rectangle = self._rectangles.get(privilege)
            if rectangle is not None:
                self.hits += 1
                return rectangle
            self._ancestors.setdefault(privilege.source, sources)
            self._rectangles[privilege] = built
            self.builds += 1
            return built

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, int]:
        return {
            "pool_rectangles": len(self._rectangles),
            "pool_hits": self.hits,
            "pool_builds": self.builds,
            "pool_evictions": self.evictions,
            "pool_full_clears": self.full_clears,
        }


class ShardedAuthorizationIndex:
    """N per-subject authorization indexes behind one façade.

    The public query surface mirrors :class:`AuthorizationIndex`
    (``authorizes``, ``authorizes_batch``, ``held_privileges``,
    ``held_privileges_bulk``, ``grantable_pairs``, ``revocable_pairs``,
    ``effective_authority``, ``refresh``, ``statistics``); every call
    dispatches to — and lazily repairs — only the shard(s) owning the
    queried subjects.
    """

    def __init__(
        self,
        policy: Policy,
        shards: int = 4,
        incremental: bool = True,
        compiled: bool = True,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.policy = policy
        #: one representation across the façade: the pool, every shard
        #: and the shared region cache must agree on the kernel.
        self.compiled = compiled
        self.pool = RectanglePool(policy, compiled=compiled)
        self._region_cache: dict = {}
        self._snapshot: ReviewSnapshot | None = None
        self._shards = tuple(
            AuthorizationIndex(
                policy,
                incremental=incremental,
                compiled=compiled,
                pool=self.pool,
                owns=(lambda u, i=i, n=shards: shard_of(u, n) == i),
                region_cache=self._region_cache,
            )
            for i in range(shards)
        )

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[AuthorizationIndex, ...]:
        """The underlying shards (read their counters; mutate via the
        policy only)."""
        return self._shards

    def shard_for(self, user: User) -> AuthorizationIndex:
        return self._shards[shard_of(user, len(self._shards))]

    # ------------------------------------------------------------------
    # Queries — dispatch to the owning shard.
    # ------------------------------------------------------------------
    def authorizes(self, user: User, command: Command) -> Privilege | None:
        return self.shard_for(user).authorizes(user, command)

    def authorizes_batch(self, pairs) -> list[Privilege | None]:
        """Batched ``authorizes`` across the façade: the batch is
        partitioned by :func:`shard_of`, each owning shard decides its
        slice in one packed sweep, and verdicts merge back in input
        order — element-for-element identical to dispatching each pair
        through :meth:`authorizes` (fuzz invariant 12).  Subjects are
        routed through an ``id()``-keyed memo, so the partition pass
        hashes each distinct subject object once, not once per query."""
        pairs = list(pairs)
        if not pairs:
            return []
        shards = self._shards
        if len(shards) == 1:
            return shards[0].authorizes_batch(pairs)
        count = len(shards)
        slices: list[list] = [[] for _ in shards]
        positions: list[list[int]] = [[] for _ in shards]
        owner_memo: dict[int, int] = {}
        memo_get = owner_memo.get
        for position, pair in enumerate(pairs):
            user = pair[0]
            marker = id(user)
            owner = memo_get(marker)
            if owner is None:
                owner = owner_memo[marker] = shard_of(user, count)
            slices[owner].append(pair)
            positions[owner].append(position)
        results: list[Privilege | None] = [None] * len(pairs)
        for owner, shard in enumerate(shards):
            batch = slices[owner]
            if not batch:
                continue
            for position, verdict in zip(
                positions[owner], shard.authorizes_batch(batch)
            ):
                results[position] = verdict
        return results

    def held_privileges(self, user: User) -> frozenset[Privilege]:
        return self.shard_for(user).held_privileges(user)

    def held_privileges_bulk(
        self, users
    ) -> dict[User, frozenset[Privilege]]:
        """Bulk :meth:`held_privileges`: the population partitions by
        :func:`shard_of` and each owning shard decodes its slice in one
        validation (sharing the per-mask decode memo within a shard)."""
        users = list(users)
        if not users:
            return {}
        shards = self._shards
        if len(shards) == 1:
            return shards[0].held_privileges_bulk(users)
        count = len(shards)
        slices: list[list] = [[] for _ in shards]
        for user in users:
            slices[shard_of(user, count)].append(user)
        merged: dict[User, frozenset[Privilege]] = {}
        for owner, shard in enumerate(shards):
            if slices[owner]:
                merged.update(shard.held_privileges_bulk(slices[owner]))
        return merged

    def grantable_pairs(
        self, user: User, at_version: int | None = None
    ) -> frozenset:
        if at_version is not None:
            return self._snapshot_at(at_version).grantable_pairs(user)
        return self.shard_for(user).grantable_pairs(user)

    def grantable_pairs_bulk(
        self, users, at_version: int | None = None
    ) -> dict[User, frozenset]:
        """Bulk :meth:`grantable_pairs`: the population partitions by
        :func:`shard_of` and each owning shard expands its slice in one
        validation, sharing the per-authority-profile memo within a
        shard; results merge back keyed by subject.  ``at_version``
        answers the whole population from the retained snapshot."""
        users = list(users)
        if not users:
            return {}
        if at_version is not None:
            return self._snapshot_at(at_version).grantable_pairs_bulk(
                users
            )
        shards = self._shards
        if len(shards) == 1:
            return shards[0].grantable_pairs_bulk(users)
        count = len(shards)
        slices: list[list] = [[] for _ in shards]
        for user in users:
            slices[shard_of(user, count)].append(user)
        merged: dict[User, frozenset] = {}
        for owner, shard in enumerate(shards):
            if slices[owner]:
                merged.update(shard.grantable_pairs_bulk(slices[owner]))
        return merged

    def revocable_pairs(
        self, user: User, at_version: int | None = None
    ) -> frozenset:
        if at_version is not None:
            return self._snapshot_at(at_version).revocable_pairs(user)
        return self.shard_for(user).revocable_pairs(user)

    def effective_authority(
        self, user: User, at_version: int | None = None
    ) -> dict[str, frozenset]:
        if at_version is not None:
            return self._snapshot_at(at_version).effective_authority(user)
        return self.shard_for(user).effective_authority(user)

    # ------------------------------------------------------------------
    # Snapshot-consistent review reads
    # ------------------------------------------------------------------
    def snapshot(self) -> ReviewSnapshot:
        """Capture and retain a review snapshot at the current policy
        version — one snapshot for the whole façade, answered by an
        (unsharded) index over the frozen copy; shard layout is
        invisible to review reads either way."""
        snapshot = ReviewSnapshot(self.policy, compiled=self.compiled)
        self._snapshot = snapshot
        return snapshot

    def _snapshot_at(self, version: int) -> ReviewSnapshot:
        return retained_snapshot(self._snapshot, version)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self, parallel: bool = False) -> None:
        """Repair every shard now.

        With ``parallel=True`` stale shards repair on a thread pool.
        Shards own disjoint user maps; the structures they share are
        the rectangle pool (lock-protected, traversals outside the
        lock) and the policy's reachability cache, whose single
        mutating validation step runs up front on the calling thread.

        Repair is pure-Python graph traversal, so under the GIL the
        thread pool buys little wall-clock today — this path is the
        concurrency seam (shards are provably isolated; the fan-out is
        exercised by tests and benchmarks) for free-threaded builds
        and, eventually, per-process shard ownership.  Leave the
        default for plain CPython.
        """
        stale = [
            shard for shard in self._shards
            if shard._cursor.version != self.policy.version
        ]
        if not parallel or len(stale) <= 1:
            for shard in stale:
                shard.refresh()
            return
        self.policy.validate_caches()
        self.pool.validate()
        workers = min(len(stale), os.cpu_count() or 2)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            for _ in executor.map(AuthorizationIndex.refresh, stale):
                pass

    # ------------------------------------------------------------------
    # Aggregated counters
    # ------------------------------------------------------------------
    @property
    def full_rebuilds(self) -> int:
        return sum(shard.full_rebuilds for shard in self._shards)

    @property
    def partial_refreshes(self) -> int:
        return sum(shard.partial_refreshes for shard in self._shards)

    @property
    def users_refreshed(self) -> int:
        return sum(shard.users_refreshed for shard in self._shards)

    def statistics(self) -> dict[str, int]:
        """Aggregate of the per-shard counters plus pool statistics
        (validates every shard; read ``.shards[i].users_refreshed``
        etc. directly to observe lazy staleness without repairing)."""
        totals = {
            "users": 0,
            "rectangles": 0,
            "rectangle_pairs": 0,
            "full_rebuilds": 0,
            "partial_refreshes": 0,
            "users_refreshed": 0,
        }
        for shard in self._shards:
            for key, value in shard.statistics().items():
                totals[key] += value
        totals["shards"] = len(self._shards)
        totals.update(self.pool.statistics())
        return totals

    def per_shard_statistics(self) -> list[dict[str, int]]:
        """One statistics dict per shard, in shard order (validates)."""
        return [shard.statistics() for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"ShardedAuthorizationIndex(shards={len(self._shards)}, "
            f"policy={self.policy!r})"
        )
