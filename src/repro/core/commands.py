"""Administrative commands and the transition function (Defs. 4 and 5).

A command ``cmd(u, a, v, v')`` asks the reference monitor, on behalf of
user ``u``, to add (``a = ¤``) or remove (``a = ♦``) the policy edge
``(v, v')``.  Definition 5's transition function:

* a grant executes iff ``u →φ r`` and ``r →φ ¤(v, v')`` for some role
  ``r`` — i.e. the user reaches a role holding exactly that grant
  privilege;
* a revoke executes iff the user reaches ``♦(v, v')``;
* otherwise the command is consumed **without changing the policy**
  (disallowed commands are silent no-ops, not errors).

Two authorization modes are supported:

* ``Mode.STRICT`` — the literal Definition 5 (and the behaviour of the
  prior administrative models surveyed in §5): the privilege must match
  the requested edge exactly.
* ``Mode.REFINED`` — the paper's contribution (§4.1): the user is also
  *implicitly authorized* when some reachable privilege ``p`` satisfies
  ``p Ãφ ¤(v, v')``.  Revocations gain nothing (the paper identifies
  no revocation ordering; ♦-privileges are Ã-related only reflexively).

Finiteness of the effective command universe
--------------------------------------------

Definition 4 ranges over the infinite ``P†``, but only finitely many
commands can ever change a given policy:

* In strict mode a grant needs a reachable term ``¤(v, v')``; every
  privilege term ever present in a run is drawn from the *subterm
  closure* of the initial policy (grants add edges ``(r, p)`` whose
  target ``p`` is the target subterm of an existing ``¤(r, p)`` vertex,
  and revokes only remove edges).  Hence the pairs ``(v, v')`` of
  effective commands range over edges of closure terms.
* In refined mode, weaker grants can additionally target any
  **entity pair** over the policy's vertices (rule 2 weakening) and
  any ``(role, p)`` with ``p`` in the subterm closure (rule 3 and the
  generalized rule 2 hop reach exactly the closure vertices at the top
  level; deeper synthesized terms add only the "extra administrative
  step" indirections of Remark 2 and are excluded from the *candidate*
  universe by design — see :func:`candidate_commands`).

:func:`candidate_commands` materializes that finite universe once per
initial policy; the bounded Definition-7 checker and the reachability
analyses iterate over it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import CommandError, PolicyError
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy, check_edge_sorts
from .privileges import (
    Grant,
    Privilege,
    Revoke,
    is_privilege,
)


class Mode(enum.Enum):
    """Authorization mode of the reference monitor."""

    STRICT = "strict"
    REFINED = "refined"


class CommandAction(enum.Enum):
    """The connective of a command: grant (``¤``) or revoke (``♦``)."""

    GRANT = "grant"
    REVOKE = "revoke"


@dataclass(frozen=True)
class Command:
    """``cmd(u, a, v, v')`` of Definition 4.

    ``source``/``target`` may be users, roles, or privilege terms;
    ill-sorted pairs are representable (Definition 4 allows them) and
    are simply never authorized, so they execute as no-ops.
    """

    user: User
    action: CommandAction
    source: object
    target: object

    def __post_init__(self):
        if not isinstance(self.user, User):
            raise CommandError(f"command issuer must be a User, got {self.user!r}")
        if not isinstance(self.action, CommandAction):
            raise CommandError(f"bad command action: {self.action!r}")

    @property
    def edge(self) -> tuple[object, object]:
        return (self.source, self.target)

    def requested_privilege(self) -> Privilege | None:
        """The privilege term that exactly authorizes this command, or
        None when the edge is ill-sorted (no privilege can exist).

        Memoized per command: a command object is typically asked for
        its privilege several times on one decision path (authorize,
        re-check, audit), and term construction pays sort checks plus
        a structural hash every time.
        """
        try:
            return self._requested
        except AttributeError:
            pass
        try:
            check_edge_sorts(self.source, self.target)
        except PolicyError:
            requested = None
        else:
            connective = (
                Grant if self.action is CommandAction.GRANT else Revoke
            )
            requested = connective(self.source, self.target)
        object.__setattr__(self, "_requested", requested)
        return requested

    def __str__(self) -> str:
        glyph = "grant" if self.action is CommandAction.GRANT else "revoke"
        return f"cmd({self.user}, {glyph}, {self.source}, {self.target})"


def grant_cmd(user: User, source: object, target: object) -> Command:
    """Convenience constructor for ``cmd(u, ¤, v, v')``."""
    return Command(user, CommandAction.GRANT, source, target)


def revoke_cmd(user: User, source: object, target: object) -> Command:
    """Convenience constructor for ``cmd(u, ♦, v, v')``."""
    return Command(user, CommandAction.REVOKE, source, target)


CommandQueue = tuple[Command, ...]


@dataclass(frozen=True)
class ExecutionRecord:
    """Outcome of one transition step."""

    command: Command
    executed: bool
    #: the privilege that authorized the command (None if denied);
    #: in refined mode this may be a strictly stronger privilege.
    authorized_by: Privilege | None = None
    #: True when authorization used the ordering rather than an exact match.
    implicit: bool = False
    #: True when the command executed but left the policy unchanged —
    #: a grant of an edge already present, or a revoke of an edge
    #: already absent (Definition 5 is a set union/difference, so both
    #: are legal executions, not errors; duplicate commands in batched
    #: queues hit this constantly).
    noop: bool = False


def _authorize(
    policy: Policy,
    command: Command,
    mode: Mode,
    oracle: OrderingOracle | None = None,
) -> tuple[Privilege | None, bool]:
    """Find a privilege authorizing ``command`` under ``mode``.

    Returns ``(privilege, implicit)``; ``(None, False)`` when denied.
    """
    wanted = command.requested_privilege()
    if wanted is None:
        return (None, False)
    reachable = policy.descendants(command.user)
    if wanted in reachable:
        return (wanted, False)
    if mode is Mode.STRICT:
        return (None, False)
    # Revocations have no ordering (only reflexivity), so the exact
    # check above is already complete for them.
    if command.action is CommandAction.REVOKE:
        return (None, False)
    if oracle is None:
        oracle = OrderingOracle(policy)
    for vertex in reachable:
        if is_privilege(vertex) and oracle.is_weaker(vertex, wanted):
            return (vertex, True)
    return (None, False)


def step(
    policy: Policy,
    command: Command,
    mode: Mode = Mode.STRICT,
    oracle: OrderingOracle | None = None,
) -> ExecutionRecord:
    """One transition of Definition 5, mutating ``policy`` in place.

    Disallowed commands are consumed silently (``executed=False``),
    exactly as in the paper.
    """
    authorized_by, implicit = _authorize(policy, command, mode, oracle)
    if authorized_by is None:
        return ExecutionRecord(command, False)
    if command.action is CommandAction.GRANT:
        changed = policy.add_edge(command.source, command.target)
    else:
        changed = policy.remove_edge(command.source, command.target)
    return ExecutionRecord(
        command, True, authorized_by, implicit, noop=not changed
    )


def run_queue(
    policy: Policy,
    queue: Iterable[Command],
    mode: Mode = Mode.STRICT,
    in_place: bool = False,
) -> tuple[Policy, list[ExecutionRecord]]:
    """Execute a whole command queue (the paper's ``⇒*`` runs).

    By default operates on a copy of ``policy``; pass ``in_place=True``
    to mutate the given policy (the reference monitor does).
    """
    current = policy if in_place else policy.copy()
    oracle = OrderingOracle(current)
    records = [step(current, command, mode, oracle) for command in queue]
    return current, records


# ----------------------------------------------------------------------
# The finite candidate-command universe for bounded analyses
# ----------------------------------------------------------------------
def relevant_entities(policy: Policy) -> tuple[list[User], list[Role]]:
    """Users and roles that commands may mention: the policy's vertices
    plus every entity mentioned inside an assigned privilege term (a
    user may occur only inside ``¤(u, r)`` without being a vertex yet —
    executing the grant then introduces it)."""
    users = {u for u in policy.users()}
    roles = {r for r in policy.roles()}
    for privilege in policy.subterm_closure():
        if isinstance(privilege, (Grant, Revoke)):
            for entity in privilege.mentioned_entities():
                if isinstance(entity, User):
                    users.add(entity)
                else:
                    roles.add(entity)
    return sorted(users, key=str), sorted(roles, key=str)


def candidate_edges(policy: Policy, mode: Mode = Mode.STRICT) -> frozenset:
    """All edges ``(v, v')`` that any command could conceivably add or
    remove during any run from ``policy`` (see module docstring).
    """
    closure = policy.subterm_closure()
    edges: set[tuple[object, object]] = set()
    for term in closure:
        if isinstance(term, (Grant, Revoke)):
            edges.add(term.edge)
    if mode is Mode.REFINED:
        users, roles = relevant_entities(policy)
        for role in roles:
            for other in roles:
                edges.add((role, other))
            for term in closure:
                edges.add((role, term))
        for user in users:
            for role in roles:
                edges.add((user, role))
    # Existing policy edges are revocable candidates too.
    edges.update(policy.edge_set())
    return frozenset(edges)


def candidate_commands(
    policy: Policy,
    mode: Mode = Mode.STRICT,
    users: Iterable[User] | None = None,
) -> list[Command]:
    """The finite command universe for bounded model checking.

    Sorted deterministically so analyses are reproducible.
    """
    if users is None:
        users, _ = relevant_entities(policy)
    else:
        users = sorted(users, key=str)
    commands: list[Command] = []
    for source, target in sorted(candidate_edges(policy, mode), key=str):
        for user in users:
            commands.append(Command(user, CommandAction.GRANT, source, target))
            commands.append(Command(user, CommandAction.REVOKE, source, target))
    return commands


def effective_commands(
    policy: Policy,
    mode: Mode = Mode.STRICT,
    users: Iterable[User] | None = None,
) -> Iterator[tuple[Command, Privilege, bool]]:
    """Commands *currently* executable, with their authorizing privilege.

    This is the flexibility metric of the baseline comparison: refined
    mode permits a superset of strict mode's effective commands.
    """
    oracle = OrderingOracle(policy)
    for command in candidate_commands(policy, mode, users):
        authorized_by, implicit = _authorize(policy, command, mode, oracle)
        if authorized_by is not None:
            yield (command, authorized_by, implicit)
