"""Structural and semantic diffing of policies.

Administrators evolve policies over time; the interesting question
after each change is not just *what* changed (edges added/removed) but
*in which direction* the change moved the policy in the refinement
order of Definition 6:

* ``refinement``   — the new policy grants no new (subject, privilege)
  pairs: safe by construction;
* ``coarsening``   — the old policy refines the new one: privileges
  were strictly added;
* ``equivalent``   — mutual refinement (e.g. a pure rearrangement);
* ``incomparable`` — some subjects gained and others lost.

The diff also classifies every changed edge by sort (UA/RH/PA,
user-privilege vs administrative) and lists the granted-pair delta,
which is what a security officer actually reviews.
"""

from __future__ import annotations

from dataclasses import dataclass

from .policy import Policy, check_edge_sorts
from .privileges import AdminPrivilege, UserPrivilege
from .refinement import granted_pairs, is_refinement

PolicyEdge = tuple[object, object]


def _edge_kind(edge: PolicyEdge) -> str:
    source, target = edge
    kind = check_edge_sorts(source, target)
    if kind == "pa":
        if isinstance(target, AdminPrivilege):
            return "pa-admin"
        return "pa-user"
    return kind


@dataclass(frozen=True)
class PolicyDiff:
    """The difference between two policies, old → new."""

    added_edges: frozenset[PolicyEdge]
    removed_edges: frozenset[PolicyEdge]
    gained_pairs: frozenset[tuple[object, UserPrivilege]]
    lost_pairs: frozenset[tuple[object, UserPrivilege]]
    direction: str  # "refinement" | "coarsening" | "equivalent" | "incomparable"

    @property
    def is_noop(self) -> bool:
        return not self.added_edges and not self.removed_edges

    def added_by_kind(self) -> dict[str, list[PolicyEdge]]:
        return self._by_kind(self.added_edges)

    def removed_by_kind(self) -> dict[str, list[PolicyEdge]]:
        return self._by_kind(self.removed_edges)

    @staticmethod
    def _by_kind(edges: frozenset[PolicyEdge]) -> dict[str, list[PolicyEdge]]:
        grouped: dict[str, list[PolicyEdge]] = {}
        for edge in sorted(edges, key=str):
            grouped.setdefault(_edge_kind(edge), []).append(edge)
        return grouped

    def summary(self) -> str:
        """A human-readable change report."""
        lines = [f"direction: {self.direction}"]
        for label, grouped in [
            ("added", self.added_by_kind()),
            ("removed", self.removed_by_kind()),
        ]:
            for kind, edges in sorted(grouped.items()):
                for source, target in edges:
                    lines.append(f"{label} {kind}: {source} -> {target}")
        for subject, privilege in sorted(self.gained_pairs, key=str):
            lines.append(f"gained: {subject} may {privilege}")
        for subject, privilege in sorted(self.lost_pairs, key=str):
            lines.append(f"lost: {subject} may {privilege}")
        return "\n".join(lines)


def diff_policies(old: Policy, new: Policy) -> PolicyDiff:
    """Compute the structural + semantic diff from ``old`` to ``new``."""
    old_edges = old.edge_set()
    new_edges = new.edge_set()
    old_pairs = granted_pairs(old)
    new_pairs = granted_pairs(new)

    old_refines_to_new = is_refinement(old, new)   # new grants less/equal
    new_refines_to_old = is_refinement(new, old)
    if old_refines_to_new and new_refines_to_old:
        direction = "equivalent"
    elif old_refines_to_new:
        direction = "refinement"
    elif new_refines_to_old:
        direction = "coarsening"
    else:
        direction = "incomparable"

    return PolicyDiff(
        added_edges=frozenset(new_edges - old_edges),
        removed_edges=frozenset(old_edges - new_edges),
        gained_pairs=frozenset(new_pairs - old_pairs),
        lost_pairs=frozenset(old_pairs - new_pairs),
        direction=direction,
    )


def apply_diff(policy: Policy, diff: PolicyDiff) -> Policy:
    """Apply a diff as a patch to (a copy of) ``policy``.

    Replaying ``diff_policies(a, b)`` onto ``a`` reconstructs ``b``'s
    edges exactly; onto a *different* base it acts as a best-effort
    patch (removals of absent edges are ignored).
    """
    patched = policy.copy()
    for edge in sorted(diff.removed_edges, key=str):
        patched.remove_edge(*edge)
    for edge in sorted(diff.added_edges, key=str):
        patched.add_edge(*edge)
    return patched
