"""Entities of the RBAC model: users, roles, actions, and objects.

Section 2 of the paper fixes four sets — users ``U``, roles ``R``,
actions ``A``, and objects ``O`` — and defines user privileges as pairs
``P ⊆ A × O``.  The paper treats these sets as "sufficiently large and
fixed" (changes to them do not change the policy, only which policies
are well-formed), so entities here are plain immutable values carrying
just a name; the policy layer never needs to enumerate the universe.

Users and roles are distinct *sorts*: a name alone is ambiguous in the
policy graph (the same string could name a user and a role), so each
entity type is its own class and vertices in policy graphs are entity
instances, never bare strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EntityError

_MAX_NAME_LENGTH = 255


def _check_name(kind: str, name: str) -> None:
    if not isinstance(name, str):
        raise EntityError(f"{kind} name must be a string, got {type(name).__name__}")
    if not name:
        raise EntityError(f"{kind} name must be non-empty")
    if len(name) > _MAX_NAME_LENGTH:
        raise EntityError(f"{kind} name longer than {_MAX_NAME_LENGTH} characters")
    if name != name.strip():
        raise EntityError(f"{kind} name has leading/trailing whitespace: {name!r}")
    for forbidden in "(),":
        if forbidden in name:
            raise EntityError(
                f"{kind} name may not contain {forbidden!r} "
                f"(reserved by the privilege grammar): {name!r}"
            )


@dataclass(frozen=True, slots=True)
class User:
    """A user ``u ∈ U``."""

    name: str

    def __post_init__(self):
        _check_name("user", self.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"User({self.name!r})"

    def __hash__(self) -> int:
        # Hot path: entities are hashed millions of times as graph
        # vertices; hashing the name reuses the string's cached hash
        # instead of building a tuple per call.  The per-sort salt
        # keeps same-name entities of different sorts (the module
        # docstring's "the same string could name a user and a role")
        # out of the same hash bucket.
        return hash(self.name) ^ 0x9E3779B1


@dataclass(frozen=True, slots=True)
class Role:
    """A role ``r ∈ R``."""

    name: str

    def __post_init__(self):
        _check_name("role", self.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Role({self.name!r})"

    def __hash__(self) -> int:
        # Hot path: entities are hashed millions of times as graph
        # vertices; hashing the name reuses the string's cached hash
        # instead of building a tuple per call.  The per-sort salt
        # keeps same-name entities of different sorts (the module
        # docstring's "the same string could name a user and a role")
        # out of the same hash bucket.
        return hash(self.name) ^ 0x7F4A7C15


@dataclass(frozen=True, slots=True)
class Action:
    """An action ``a ∈ A`` (e.g. ``read``, ``write``, ``print``)."""

    name: str

    def __post_init__(self):
        _check_name("action", self.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Action({self.name!r})"

    def __hash__(self) -> int:
        # Hot path: entities are hashed millions of times as graph
        # vertices; hashing the name reuses the string's cached hash
        # instead of building a tuple per call.  The per-sort salt
        # keeps same-name entities of different sorts (the module
        # docstring's "the same string could name a user and a role")
        # out of the same hash bucket.
        return hash(self.name) ^ 0x2545F491


@dataclass(frozen=True, slots=True)
class Obj:
    """An object ``o ∈ O`` (e.g. a database table or a printer)."""

    name: str

    def __post_init__(self):
        _check_name("object", self.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Obj({self.name!r})"

    def __hash__(self) -> int:
        # Hot path: entities are hashed millions of times as graph
        # vertices; hashing the name reuses the string's cached hash
        # instead of building a tuple per call.  The per-sort salt
        # keeps same-name entities of different sorts (the module
        # docstring's "the same string could name a user and a role")
        # out of the same hash bucket.
        return hash(self.name) ^ 0x61C88647


Subject = User | Role
"""Vertices that can appear on the left of a membership/hierarchy edge."""


def user(name: str) -> User:
    """Convenience constructor: ``user("diana")``."""
    return User(name)


def role(name: str) -> Role:
    """Convenience constructor: ``role("nurse")``."""
    return Role(name)


def users(*names: str) -> tuple[User, ...]:
    """Construct several users at once: ``diana, bob = users("diana", "bob")``."""
    return tuple(User(name) for name in names)


def roles(*names: str) -> tuple[Role, ...]:
    """Construct several roles at once."""
    return tuple(Role(name) for name in names)
