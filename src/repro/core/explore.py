"""The compiled state-space exploration engine.

Every bounded analysis over Definition 5 runs — safety queries
(:mod:`repro.analysis.safety`), administrative reachability
(:mod:`repro.analysis.reachability`), and through them the Remark-2
conjecture tester and the cross-model comparisons — explores the same
transition system: policy states connected by effective administrative
commands.  The pre-compilation explorers paid three per-candidate
costs, each O(policy):

* ``policy.copy()`` per candidate command (allocation + hashing of
  every vertex and edge, and a cold reachability cache on the copy);
* a from-scratch ``descendants`` BFS inside ``_authorize`` per
  candidate (the copy's cache is always cold);
* an ``edge_set()`` frozenset build + hash per executed candidate for
  ``seen``-set deduplication.

:class:`ExplorationEngine` replaces all three with delta-cost
operations on a **single mutable exploration policy**:

* **apply/undo log** — :meth:`push` executes a command by mutating the
  exploration policy in place and recording the exact inverse
  (including privilege-vertex garbage collection and vertex
  introduction); :meth:`pop` replays the inverse at the graph level.
  Expanding a state costs O(delta), not O(policy).  :meth:`goto`
  navigates the BFS frontier by undoing to the common prefix of the
  current and target witness paths and replaying the suffix.
* **canonical fingerprint** — state identity is a
  :class:`~repro.graph.fingerprint.StateFingerprint` bitmask covering
  the vertex *and* edge sets, maintained with one XOR per mutation and
  stable across interner ID recycling (the slot table is keyed by
  vertex values, not IDs).
* **bitmask candidate pruning** — :meth:`effective_commands` decides
  authorization per candidate with bit tests: one
  ``descendants_bits`` mask per distinct issuer per state (served by
  the exploration policy's warm, incrementally-evicted
  :class:`~repro.graph.reachability.ReachabilityCache`), intersected
  with a privileges mask seeded from
  :class:`~repro.core.policy.PolicyBits` and maintained by the undo
  log.  In refined mode a single churn-aware
  :class:`~repro.core.ordering.OrderingOracle` is shared across the
  whole exploration instead of being rebuilt per candidate.

Undo-exactness invariants
-------------------------

``pop`` restores the exploration policy *exactly* — vertex set, edge
set, and interned vertex IDs.  The ID part follows from the free-list's
LIFO discipline under the engine's strictly stack-shaped usage: every
``push`` acquires IDs by popping the free-list and every ``pop``
releases them in exact inverse order, so the free-list (and hence every
subsequently recycled ID) is restored at each stack depth.  The
fingerprint does **not** rely on this invariant (it is value-keyed);
the engine's privileges mask and the reachability cache's vid-keyed
mirrors do, and the differential fuzz invariant 10
(:func:`repro.workloads.fuzz.fuzz_compiled_analysis`) pins the whole
stack against the frozenset oracle, including ID-recycling traces.

The engine is compiled-only by design: the frozenset explorers remain
in place as the semantic oracle behind each analysis' ``compiled=False``
knob (the same convention as the PR-4 authorization kernel).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..graph import StateFingerprint, iter_bits
from .commands import Command, CommandAction, Mode, candidate_commands
from .entities import User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import is_privilege


def reaches_bits(policy: Policy, source: object, target: object) -> bool:
    """``policy.reaches`` through the compiled kernel: the memoized
    descendants bitmask of ``source`` (warm across repeated queries)
    and one bit test.  Matches the frozenset semantics exactly,
    including reflexivity for vertices absent from the graph."""
    if source == target:
        return True
    index = policy.graph._vid.get(target)
    if index is None:
        return False
    return bool(policy.descendants_bits(source) >> index & 1)


class ExplorationEngine:
    """One mutable exploration state over a policy's transition system.

    ``policy`` is copied once at construction; the original is never
    touched.  ``acting_users`` restricts the candidate command universe
    to the given issuers (the safety checker's "only the untrusted
    users act" refinement); ``universe`` overrides the candidate
    command list entirely (it must be state-independent, i.e. computed
    from the initial policy as :func:`candidate_commands` does).
    """

    __slots__ = ("mode", "policy", "universe", "_graph", "_oracle",
                 "_fingerprint", "_priv_mask", "_undo", "_path")

    def __init__(
        self,
        policy: Policy,
        mode: Mode = Mode.STRICT,
        acting_users: Iterable[User] | None = None,
        universe: Sequence[Command] | None = None,
    ):
        self.mode = mode
        self.policy = policy.copy()
        self._graph = self.policy.graph
        if universe is not None:
            self.universe: tuple[Command, ...] = tuple(universe)
        elif acting_users is None:
            self.universe = tuple(candidate_commands(policy, mode))
        else:
            self.universe = self._filter_issuers(
                candidate_commands(policy, mode), acting_users
            )
        #: shared, churn-aware ordering oracle (refined mode only);
        #: its memo survives push/pop churn via dirty-region eviction.
        self._oracle = (
            OrderingOracle(self.policy) if mode is Mode.REFINED else None
        )
        self._fingerprint = StateFingerprint.of_graph(self._graph)
        #: bitmask of privilege vertices over current interned IDs,
        #: seeded from the PolicyBits sort masks and maintained by the
        #: undo log (PolicyBits itself rescans on vertex removal, which
        #: exploration GC churn would trigger constantly).
        self._priv_mask = self.policy.bits.privileges_mask
        #: inverse records: (kind, source, target, detail, fingerprint
        #: value and privileges mask on entry).
        self._undo: list[tuple] = []
        self._path: list[Command] = []

    def _filter_issuers(
        self, commands: list[Command], acting_users: Iterable[User]
    ) -> tuple[Command, ...]:
        """Restrict the candidate universe to the acting issuers, as a
        bitmask over interned user IDs (off-graph acting users — legal:
        a user may be mentioned in a privilege term without being a
        vertex — fall back to a small set).

        Compared to rebuilding :func:`candidate_commands` with the
        user list, filtering drops only commands whose issuer is not
        acting — commands that can never execute — and preserves the
        relative candidate order, so verdicts, witnesses and explored
        state counts match the frozenset path exactly.
        """
        vid = self._graph._vid
        acting_mask = 0
        off_graph: set[User] = set()
        for user in acting_users:
            index = vid.get(user)
            if index is None:
                off_graph.add(user)
            else:
                acting_mask |= 1 << index
        kept = []
        for command in commands:
            index = vid.get(command.user)
            if index is not None:
                if acting_mask >> index & 1:
                    kept.append(command)
            elif command.user in off_graph:
                kept.append(command)
        return tuple(kept)

    # ------------------------------------------------------------------
    # State identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> int:
        """Canonical bitmask identity of the current state (vertex set
        + edge set; equal iff the states are equal as policies)."""
        return self._fingerprint.value

    @property
    def depth(self) -> int:
        """Length of the command path from the initial state."""
        return len(self._path)

    @property
    def path(self) -> tuple[Command, ...]:
        """The command path from the initial state to the current one."""
        return tuple(self._path)

    @property
    def privileges_mask(self) -> int:
        """Bitmask of privilege vertices in the current state, over
        the exploration policy's interned IDs — the undo-log-maintained
        mirror of ``PolicyBits.privileges_mask`` (which would rescan on
        every GC).  Clients combine it with ``descendants_bits`` masks
        of the *engine's* policy; masks from the original policy use a
        different interner and must not be mixed in."""
        return self._priv_mask

    def snapshot(self) -> Policy:
        """An independent copy of the current exploration state."""
        return self.policy.copy()

    def reaches(self, source: object, target: object) -> bool:
        """Reflexive-transitive reachability on the current state,
        answered from the warm compiled cache (a bit test once the
        source's descendants mask is memoized)."""
        return reaches_bits(self.policy, source, target)

    # ------------------------------------------------------------------
    # Candidate pruning
    # ------------------------------------------------------------------
    def effective_commands(self) -> list[Command]:
        """Commands that would execute *and change* the current state,
        in universe order.

        Definition 5 consumes unauthorized commands as silent no-ops
        and executes redundant grants/revokes without effect; neither
        kind can reach a new state, so both are pruned here.  The
        authorization decision is the bit-test compilation of
        ``_authorize``: exact match is one test of the requested
        privilege's ID against the issuer's reachable-privileges mask;
        refined-mode implicit authorization decodes that mask and asks
        the shared ordering oracle.
        """
        policy = self.policy
        graph = self._graph
        vid = graph._vid
        has_edge = graph.has_edge
        refined_grants = self.mode is Mode.REFINED
        oracle = self._oracle
        priv_mask = self._priv_mask
        masks: dict[User, int] = {}
        effective: list[Command] = []
        for command in self.universe:
            present = has_edge(command.source, command.target)
            if command.action is CommandAction.GRANT:
                if present:
                    continue  # redundant grant: at best a no-op
            elif not present:
                continue  # redundant revoke: at best a no-op
            user = command.user
            reachable = masks.get(user)
            if reachable is None:
                reachable = masks[user] = (
                    policy.descendants_bits(user) & priv_mask
                )
            if not reachable:
                continue  # no privilege in reach: every command denied
            wanted = command.requested_privilege()
            if wanted is None:
                continue  # ill-sorted edge: never authorized
            windex = vid.get(wanted)
            if windex is not None and reachable >> windex & 1:
                effective.append(command)
                continue
            if refined_grants and command.action is CommandAction.GRANT:
                vertex_of = graph.vertex_of
                for index in iter_bits(reachable):
                    if oracle.is_weaker(vertex_of(index), wanted):
                        effective.append(command)
                        break
        return effective

    # ------------------------------------------------------------------
    # Apply / undo log
    # ------------------------------------------------------------------
    def push(self, command: Command) -> None:
        """Execute ``command``'s mutation on the current state.

        The caller guarantees the command is effective here (it came
        from :meth:`effective_commands` of *this* state, or is being
        replayed along a previously discovered path — replay is
        deterministic, so no authorization re-check is needed).
        """
        source, target = command.source, command.target
        graph = self._graph
        fingerprint = self._fingerprint
        entry = (fingerprint.value, self._priv_mask)
        if command.action is CommandAction.GRANT:
            source_new = source not in graph
            # A role self-edge (r, r) with r off-graph introduces one
            # vertex, not two: credit it to the source side only.
            target_new = target not in graph and target != source
            self.policy.add_edge(source, target)
            if source_new:
                fingerprint.toggle(source)
            if target_new:
                fingerprint.toggle(target)
                if is_privilege(target):
                    self._priv_mask |= 1 << graph._vid[target]
            fingerprint.toggle((source, target))
            self._undo.append(("grant", source, target,
                               (source_new, target_new), entry))
        else:
            # Removing the edge garbage-collects a privilege target
            # whose last assignment this was (Policy.remove_edge).
            collected = is_privilege(target) and graph.in_degree(target) == 1
            if collected:
                self._priv_mask &= ~(1 << graph._vid[target])
                fingerprint.toggle(target)
            self.policy.remove_edge(source, target)
            fingerprint.toggle((source, target))
            self._undo.append(("revoke", source, target, collected, entry))
        self._path.append(command)

    def pop(self) -> None:
        """Exactly invert the most recent :meth:`push` (graph-level
        inverse replay, in reverse mutation order)."""
        kind, source, target, detail, entry = self._undo.pop()
        graph = self._graph
        if kind == "grant":
            source_new, target_new = detail
            graph.remove_edge(source, target)
            if target_new:
                graph.remove_vertex(target)
            if source_new:
                graph.remove_vertex(source)
        else:
            # add_edge re-introduces a garbage-collected privilege
            # vertex; the free-list's LIFO discipline hands it back
            # its old ID (see the module docstring).
            graph.add_edge(source, target)
        self._fingerprint.value, self._priv_mask = entry
        self._path.pop()

    def goto(self, path: Sequence[Command]) -> None:
        """Navigate the exploration state to the state reached by
        ``path`` from the initial policy: pop back to the longest
        common prefix with the current path, then replay the rest.
        Under BFS expansion consecutive frontier nodes share deep
        prefixes, so the average cost is far below ``len(path)``."""
        current = self._path
        common = 0
        limit = min(len(current), len(path))
        while common < limit and current[common] == path[common]:
            common += 1
        while len(self._path) > common:
            self.pop()
        for command in path[common:]:
            self.push(command)

    def __repr__(self) -> str:
        return (
            f"ExplorationEngine(depth={len(self._path)}, "
            f"universe={len(self.universe)}, mode={self.mode.value})"
        )
