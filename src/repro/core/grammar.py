"""Textual syntax for privileges and policies.

The paper writes privileges with the glyphs ``¤`` (grant) and ``♦``
(revoke).  This module provides an ASCII-friendly concrete syntax with
the glyphs accepted as aliases, a tokenizer, a recursive-descent parser,
and a pretty-printer whose output always round-trips::

    (read, t1)                      user privilege
    grant(bob, staff)               ¤(bob, staff)
    revoke(joe, nurse)              ♦(joe, nurse)
    grant(staff, grant(bob, staff)) ¤(staff, ¤(bob, staff))

Because ``grant(bob, staff)`` does not say whether ``bob`` is a user or
a role, parsing is performed against a :class:`Vocabulary` declaring the
entity sorts.  Names not declared in the vocabulary are rejected —
silent sort-guessing is how administrative policies acquire typos.

The module also defines a small line-oriented policy document format
(used by the CLI and the serialization tests)::

    # hospital policy
    users diana bob
    roles nurse staff
    user diana -> nurse          # UA edge
    role staff -> nurse          # RH edge
    priv nurse -> (read, t1)     # PA edge
    priv HR -> grant(bob, staff)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import GrammarError
from .entities import Action, Obj, Role, User
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    Revoke,
    UserPrivilege,
)

_GRANT_ALIASES = {"grant", "¤", "assign", "box"}
_REVOKE_ALIASES = {"revoke", "♦", "diamond"}


# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------
@dataclass
class Vocabulary:
    """Declares which names denote users and which denote roles.

    Actions and objects need no declaration: in a user privilege
    ``(a, o)`` the sorts are positional.
    """

    users: set[str] = field(default_factory=set)
    roles: set[str] = field(default_factory=set)

    def __post_init__(self):
        overlap = self.users & self.roles
        if overlap:
            raise GrammarError(
                f"names declared both user and role: {sorted(overlap)}"
            )

    @classmethod
    def of_policy(cls, policy) -> "Vocabulary":
        """Vocabulary covering every entity mentioned in a policy."""
        return cls(
            users={u.name for u in policy.users()},
            roles={r.name for r in policy.roles()},
        )

    def resolve(self, name: str):
        if name in self.users:
            return User(name)
        if name in self.roles:
            return Role(name)
        raise GrammarError(f"unknown name {name!r}: declare it as a user or role")


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Token:
    kind: str  # "name", "(", ")", ","
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in "(),":
            tokens.append(_Token(char, char, index))
            index += 1
            continue
        start = index
        while index < length and not text[index].isspace() and text[index] not in "(),":
            index += 1
        tokens.append(_Token("name", text[start:index], start))
    return tokens


class _Parser:
    def __init__(self, text: str, vocabulary: Vocabulary):
        self._text = text
        self._tokens = _tokenize(text)
        self._cursor = 0
        self._vocabulary = vocabulary

    def _peek(self) -> _Token | None:
        if self._cursor < len(self._tokens):
            return self._tokens[self._cursor]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise GrammarError(
                f"unexpected end of input in {self._text!r}", len(self._text)
            )
        if expected is not None and token.kind != expected:
            raise GrammarError(
                f"expected {expected!r} but found {token.text!r}", token.position
            )
        self._cursor += 1
        return token

    def parse_privilege(self) -> Privilege:
        privilege = self._privilege()
        trailing = self._peek()
        if trailing is not None:
            raise GrammarError(
                f"trailing input {trailing.text!r}", trailing.position
            )
        return privilege

    def _privilege(self) -> Privilege:
        token = self._peek()
        if token is None:
            raise GrammarError("empty privilege expression")
        if token.kind == "(":
            return self._user_privilege()
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered in _GRANT_ALIASES or lowered in _REVOKE_ALIASES:
                return self._admin_privilege()
            if lowered == "perm":
                self._next("name")
                return self._user_privilege()
        raise GrammarError(
            f"expected a privilege, found {token.text!r}", token.position
        )

    def _user_privilege(self) -> UserPrivilege:
        self._next("(")
        action = self._next("name")
        self._next(",")
        obj = self._next("name")
        self._next(")")
        return UserPrivilege(Action(action.text), Obj(obj.text))

    def _admin_privilege(self) -> AdminPrivilege:
        keyword = self._next("name")
        constructor = (
            Grant if keyword.text.lower() in _GRANT_ALIASES else Revoke
        )
        self._next("(")
        source_token = self._next("name")
        source = self._vocabulary.resolve(source_token.text)
        self._next(",")
        target_token = self._peek()
        if target_token is None:
            raise GrammarError("unexpected end of input", len(self._text))
        if target_token.kind == "(" or (
            target_token.kind == "name"
            and target_token.text.lower()
            in _GRANT_ALIASES | _REVOKE_ALIASES | {"perm"}
        ):
            target: object = self._privilege()
        else:
            name = self._next("name")
            target = self._vocabulary.resolve(name.text)
        self._next(")")
        return constructor(source, target)  # sort errors surface here


def parse_privilege(text: str, vocabulary: Vocabulary) -> Privilege:
    """Parse a privilege expression against ``vocabulary``.

    Raises :class:`~repro.errors.GrammarError` on syntax errors and
    :class:`~repro.errors.PrivilegeError` on sort violations.
    """
    return _Parser(text, vocabulary).parse_privilege()


def format_privilege(privilege: Privilege, unicode_glyphs: bool = False) -> str:
    """Render a privilege in the concrete syntax.

    With ``unicode_glyphs=True`` the paper's ``¤``/``♦`` glyphs are used
    (the parser accepts both spellings).
    """
    if isinstance(privilege, UserPrivilege):
        return f"({privilege.action.name}, {privilege.obj.name})"
    if isinstance(privilege, AdminPrivilege):
        if unicode_glyphs:
            keyword = "¤" if isinstance(privilege, Grant) else "♦"
        else:
            keyword = "grant" if isinstance(privilege, Grant) else "revoke"
        target = privilege.target
        if isinstance(target, (UserPrivilege, AdminPrivilege)):
            rendered = format_privilege(target, unicode_glyphs)
        else:
            rendered = target.name
        return f"{keyword}({privilege.source.name}, {rendered})"
    raise GrammarError(f"not a privilege: {privilege!r}")


# ----------------------------------------------------------------------
# Policy documents
# ----------------------------------------------------------------------
def _strip_comment(line: str) -> str:
    cut = line.find("#")
    if cut >= 0:
        line = line[:cut]
    return line.strip()


def parse_policy_source(text: str):
    """Parse the line-oriented policy document format into a Policy.

    Returns a :class:`repro.core.policy.Policy` (imported lazily to
    avoid a module cycle).
    """
    from .policy import Policy

    vocabulary = Vocabulary()
    ua: list[tuple[User, Role]] = []
    rh: list[tuple[Role, Role]] = []
    pa: list[tuple[Role, Privilege]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        try:
            head, _, rest = line.partition(" ")
            rest = rest.strip()
            if head == "users":
                vocabulary.users.update(rest.split())
            elif head == "roles":
                vocabulary.roles.update(rest.split())
            elif head in {"user", "role", "priv"}:
                left_text, arrow, right_text = rest.partition("->")
                if not arrow:
                    raise GrammarError(f"missing '->' in {line!r}")
                left_text = left_text.strip()
                right_text = right_text.strip()
                if head == "user":
                    left = User(left_text)
                    if left_text not in vocabulary.users:
                        raise GrammarError(f"undeclared user {left_text!r}")
                    right = vocabulary.resolve(right_text)
                    if not isinstance(right, Role):
                        raise GrammarError(
                            f"user assignment target must be a role: {line!r}"
                        )
                    ua.append((left, right))
                elif head == "role":
                    if left_text not in vocabulary.roles:
                        raise GrammarError(f"undeclared role {left_text!r}")
                    right = vocabulary.resolve(right_text)
                    if not isinstance(right, Role):
                        raise GrammarError(
                            f"hierarchy edge target must be a role: {line!r}"
                        )
                    rh.append((Role(left_text), right))
                else:  # priv
                    if left_text not in vocabulary.roles:
                        raise GrammarError(f"undeclared role {left_text!r}")
                    privilege = parse_privilege(right_text, vocabulary)
                    pa.append((Role(left_text), privilege))
            else:
                raise GrammarError(f"unknown directive {head!r}")
        except GrammarError as error:
            raise GrammarError(f"line {line_number}: {error}") from error

    policy = Policy(ua=ua, rh=rh, pa=pa)
    for name in vocabulary.users:
        policy.add_user(User(name))
    for name in vocabulary.roles:
        policy.add_role(Role(name))
    return policy


def format_policy_source(policy) -> str:
    """Render a policy as a policy document (round-trips with the parser)."""
    lines: list[str] = []
    user_names = sorted(u.name for u in policy.users())
    role_names = sorted(r.name for r in policy.roles())
    if user_names:
        lines.append("users " + " ".join(user_names))
    if role_names:
        lines.append("roles " + " ".join(role_names))
    for left, right in sorted(policy.ua_edges(), key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"user {left.name} -> {right.name}")
    for left, right in sorted(policy.rh_edges(), key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"role {left.name} -> {right.name}")
    for left, privilege in sorted(
        policy.pa_edges(), key=lambda e: (str(e[0]), format_privilege(e[1]))
    ):
        lines.append(f"priv {left.name} -> {format_privilege(privilege)}")
    return "\n".join(lines) + "\n"


def parse_privileges(
    expressions: Iterable[str], vocabulary: Vocabulary
) -> Iterator[Privilege]:
    """Parse several privilege expressions with one vocabulary."""
    for expression in expressions:
        yield parse_privilege(expression, vocabulary)
