"""Versioned policy administration: command log, replay, rollback.

Real deployments of the paper's model need more than a transition
function — they need to answer "who changed what, when, and how do we
undo it".  :class:`PolicyHistory` wraps a policy with an append-only
log of executed commands plus periodic snapshots:

* every successful command is recorded with its authorizing privilege
  (including the Ã-stronger one in refined mode);
* ``state_at(version)`` reconstructs any historical policy by
  replaying from the nearest snapshot — replay is sound because
  Definition 5 is deterministic;
* ``rollback(version)`` rewinds the live policy;
* ``audit_diff(v1, v2)`` summarizes what changed between two versions
  using :mod:`repro.core.diff`, including the refinement direction —
  the review artifact a security officer signs off.

The log stores only *executed* commands: denied commands change
nothing and live in the reference monitor's audit trail instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError
from .commands import Command, ExecutionRecord, Mode, step
from .diff import PolicyDiff, diff_policies
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import Privilege


@dataclass(frozen=True)
class LogEntry:
    """One executed command at a given version."""

    version: int
    command: Command
    authorized_by: Privilege
    implicit: bool


@dataclass
class PolicyHistory:
    """A policy with an executed-command log and snapshots."""

    policy: Policy
    mode: Mode = Mode.STRICT
    snapshot_interval: int = 16
    log: list[LogEntry] = field(default_factory=list)
    _snapshots: dict[int, Policy] = field(default_factory=dict, repr=False)
    _oracle: OrderingOracle | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.snapshot_interval < 1:
            raise AnalysisError("snapshot interval must be positive")
        self._snapshots[0] = self.policy.copy()
        self._oracle = OrderingOracle(self.policy)

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of executed commands so far."""
        return len(self.log)

    def submit(self, command: Command) -> ExecutionRecord:
        """Execute a command against the live policy; log it if it ran."""
        record = step(self.policy, command, self.mode, self._oracle)
        if record.executed:
            self.log.append(
                LogEntry(
                    version=self.version + 1,
                    command=command,
                    authorized_by=record.authorized_by,
                    implicit=record.implicit,
                )
            )
            if self.version % self.snapshot_interval == 0:
                self._snapshots[self.version] = self.policy.copy()
        return record

    # ------------------------------------------------------------------
    def state_at(self, version: int) -> Policy:
        """The policy as of ``version`` (0 = initial), by replay."""
        if version < 0 or version > self.version:
            raise AnalysisError(
                f"version {version} out of range 0..{self.version}"
            )
        snapshot_version = max(
            v for v in self._snapshots if v <= version
        )
        state = self._snapshots[snapshot_version].copy()
        oracle = OrderingOracle(state)
        for entry in self.log[snapshot_version:version]:
            record = step(state, entry.command, self.mode, oracle)
            if not record.executed:
                raise AnalysisError(
                    f"replay divergence at version {entry.version}: "
                    f"{entry.command} no longer executes"
                )
        return state

    def rollback(self, version: int) -> Policy:
        """Rewind the live policy (and log) to ``version``."""
        target = self.state_at(version)
        self.log = self.log[:version]
        self._snapshots = {
            v: snapshot for v, snapshot in self._snapshots.items()
            if v <= version
        }
        # Mutate the live policy in place so monitors holding a
        # reference observe the rollback.
        for edge in list(self.policy.edge_set()):
            if edge not in target.edge_set():
                self.policy.remove_edge(*edge)
        for edge in target.edge_set():
            if not self.policy.has_edge(*edge):
                self.policy.add_edge(*edge)
        for vertex in target.vertex_set():
            self.policy.graph.add_vertex(vertex)
        return self.policy

    # ------------------------------------------------------------------
    def audit_diff(self, from_version: int, to_version: int) -> PolicyDiff:
        """What changed between two versions, with refinement direction."""
        return diff_policies(
            self.state_at(from_version), self.state_at(to_version)
        )

    def entries_by(self, user) -> list[LogEntry]:
        return [entry for entry in self.log if entry.command.user == user]

    def implicit_entries(self) -> list[LogEntry]:
        """Commands that ran on the strength of the ordering (§4.1)."""
        return [entry for entry in self.log if entry.implicit]
