"""The RBAC reference monitor.

Combines the pieces of §2–§4 into the component a system (such as the
:mod:`repro.dbms` engine) actually talks to:

* **session functions** — ``create_session``, ``add_active_role``,
  ``drop_active_role``, ``delete_session`` (ANSI RBAC);
* **access checks** — ``check_access(session, action, object)``: allowed
  iff some *currently authorized* active role reaches the user
  privilege.  (If a role membership is revoked mid-session, subsequent
  checks through that role fail; the standard leaves this choice open
  and this is the conservative reading.)
* **administrative functions** — ``submit(command)`` executes
  Definition 5's transition on the live policy.  In
  :attr:`~repro.core.commands.Mode.STRICT` mode the privilege must
  match exactly (the behaviour of prior administrative models); in
  :attr:`~repro.core.commands.Mode.REFINED` mode the monitor also
  accepts commands covered by a Ã-stronger privilege — the paper's
  implicit authorization (§4.1).  With ``use_index=True`` refined
  decisions come from the precomputed
  :class:`~repro.core.authz_index.AuthorizationIndex`, which repairs
  itself *incrementally* from the policy graph's change journal under
  churn (no full rebuild on the common path — see that module's
  docstring for the dirty-region maintenance).
* **batched queues** — ``submit_queue(commands, batched=True)`` treats
  a queue as one transaction: every command is authorized against the
  policy state at batch entry, the index is validated once for the
  whole batch, and only then are the authorized mutations applied in
  order (see :meth:`ReferenceMonitor.submit_queue` for exactly when
  this agrees with the sequential Definition-5 reading).
* **review functions** — ``assigned_users``, ``authorized_users``,
  ``role_privileges`` (ANSI review API, used by the examples).

Every decision — allowed or denied — is appended to the monitor's
audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import AccessDenied
from .commands import Command, CommandAction, ExecutionRecord, Mode, step
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import UserPrivilege, perm
from .sessions import Session


@dataclass(frozen=True)
class AccessDecision:
    """One entry of the monitor's audit trail."""

    kind: str  # "access" | "admin" | "session"
    subject: User
    detail: str
    allowed: bool


@dataclass
class ReferenceMonitor:
    """A reference monitor over a live (mutable) policy.

    ``use_index=True`` switches administrative authorization to the
    precomputed :class:`~repro.core.authz_index.AuthorizationIndex`
    (faster under query bursts; differentially tested against the
    oracle path — see ``tests/core/test_authz_index.py`` and the
    monitor fuzzer).  ``shards=N`` (with ``use_index=True``) partitions
    subjects across N index shards that repair independently under
    churn (:class:`~repro.core.authz_shard.ShardedAuthorizationIndex`);
    the default 1 preserves the single-index behaviour exactly.
    """

    policy: Policy
    mode: Mode = Mode.STRICT
    use_index: bool = False
    #: number of authorization-index shards; the default 1 keeps the
    #: original single AuthorizationIndex (only meaningful with
    #: ``use_index=True`` — see repro.core.authz_shard).
    shards: int = 1
    #: True (default): run the authorization index, rectangle pool and
    #: ordering-memo maintenance on the bitset-compiled kernel
    #: (bitmasks over interned vertex IDs).  False: the frozenset
    #: representation — the differential oracle, and the baseline the
    #: kernel benchmark compares against.
    compiled: bool = True
    audit_trail: list[AccessDecision] = field(default_factory=list)
    #: review snapshot captured by the most recent
    #: ``submit_queue(..., batched=True, snapshot=True)`` — pass its
    #: ``.version`` as ``at_version=`` to the index's review functions
    #: so an audit burst sees the batch-entry state.
    last_snapshot: object = field(default=None, repr=False)
    _sessions: dict[int, Session] = field(default_factory=dict)
    _oracle: OrderingOracle | None = field(default=None, repr=False)
    _index: object = field(default=None, repr=False)

    def __post_init__(self):
        self._oracle = OrderingOracle(self.policy, compiled=self.compiled)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.use_index:
            if self.shards > 1:
                from .authz_shard import ShardedAuthorizationIndex

                self._index = ShardedAuthorizationIndex(
                    self.policy, shards=self.shards, compiled=self.compiled
                )
            else:
                from .authz_index import AuthorizationIndex

                self._index = AuthorizationIndex(
                    self.policy, compiled=self.compiled
                )

    # ------------------------------------------------------------------
    # Session functions
    # ------------------------------------------------------------------
    def create_session(self, user: User) -> Session:
        session = Session(user)
        self._sessions[session.session_id] = session
        self._audit("session", user, f"create {session}", True)
        return session

    def delete_session(self, session: Session) -> None:
        self._sessions.pop(session.session_id, None)
        session.terminate()
        self._audit("session", session.user, f"delete session#{session.session_id}", True)

    def add_active_role(self, session: Session, role: Role) -> None:
        """Activate ``role`` — allowed iff ``user →φ role`` (§2)."""
        session.require_live()
        if not self.policy.reaches(session.user, role):
            self._audit("session", session.user, f"activate {role}", False)
            raise AccessDenied(
                session.user.name, f"cannot activate role {role.name}"
            )
        session.activate(role)
        self._audit("session", session.user, f"activate {role}", True)

    def drop_active_role(self, session: Session, role: Role) -> None:
        session.deactivate(role)
        self._audit("session", session.user, f"deactivate {role}", True)

    # ------------------------------------------------------------------
    # Access checks
    # ------------------------------------------------------------------
    def check_access(
        self, session: Session, action: str, obj: str
    ) -> bool:
        """True iff some active, still-authorized role reaches
        ``(action, obj)``."""
        session.require_live()
        privilege = perm(action, obj)
        allowed = any(
            self.policy.reaches(session.user, role)
            and self.policy.reaches(role, privilege)
            for role in session.active_roles
        )
        self._audit(
            "access", session.user, f"{action} {obj}", allowed
        )
        return allowed

    def require_access(self, session: Session, action: str, obj: str) -> None:
        """Like :meth:`check_access` but raises on denial."""
        if not self.check_access(session, action, obj):
            raise AccessDenied(session.user.name, f"{action} on {obj}")

    def session_privileges(self, session: Session) -> frozenset[UserPrivilege]:
        """All user privileges of the session (§2): the union over the
        activated roles of the privileges they reach."""
        session.require_live()
        privileges: set[UserPrivilege] = set()
        for role in session.active_roles:
            if self.policy.reaches(session.user, role):
                privileges |= self.policy.authorized_privileges(role)
        return frozenset(privileges)

    # ------------------------------------------------------------------
    # Administrative functions (Definition 5)
    # ------------------------------------------------------------------
    def submit(self, command: Command) -> ExecutionRecord:
        """Execute one administrative command on the live policy.

        Disallowed commands are consumed as no-ops (the Definition 5
        semantics); the outcome is recorded in the audit trail either
        way.
        """
        if self._index is not None and self.mode is Mode.REFINED:
            record = self._submit_via_index(command)
        else:
            record = step(self.policy, command, self.mode, self._oracle)
        self._audit_admin(record)
        return record

    def submit_queue(
        self,
        queue: Iterable[Command],
        batched: bool = False,
        snapshot: bool = False,
    ) -> list[ExecutionRecord]:
        """Execute a command queue.

        With ``batched=False`` (the default) this is exactly repeated
        :meth:`submit`: Definition 5 iterated, where a command may be
        authorized by an edge a previous command in the same queue just
        granted.

        With ``batched=True`` and an index-backed refined monitor, the
        queue is treated as one *transaction*: every command is
        authorized against the policy state at batch entry (so the
        authorization index is validated once for the whole batch, not
        once per command), and only then are the authorized mutations
        applied in order.  The two modes agree whenever no command's
        authorization depends on an edge granted or revoked earlier in
        the same batch — the overwhelmingly common case for bulk
        provisioning loads — and the batched reading is the natural one
        for a monitor fronting a transactional DBMS.  Monitors without
        an index (or in strict mode) fall back to the sequential path.

        ``snapshot=True`` (batched path only) additionally captures a
        review snapshot of the batch-entry state — the same state every
        command was authorized against — and retains it on the index
        and as :attr:`last_snapshot`: an audit burst run while or after
        the batch applies can pass ``at_version=last_snapshot.version``
        to ``grantable_pairs``/``revocable_pairs`` and see one
        consistent version.  Costs one policy copy per batch, which is
        why it is opt-in.
        """
        commands = list(queue)
        if not batched or self._index is None or self.mode is not Mode.REFINED:
            if snapshot:
                # Never silently hand an auditor a stale last_snapshot:
                # the sequential path has no single entry state to
                # capture.
                raise ValueError(
                    "snapshot=True requires the batched path (an "
                    "index-backed refined monitor with batched=True)"
                )
            return [self.submit(command) for command in commands]
        if snapshot:
            self.last_snapshot = self._index.snapshot()
        # Pre-authorize the whole read set in one batch sweep: the
        # packed-matrix kernel amortizes the rectangle scans across the
        # queue, and its verdicts are pinned element-for-element
        # identical to per-command ``authorizes`` (fuzz invariant 12),
        # so the transaction semantics are unchanged.
        verdicts = self._index.authorizes_batch(
            [(command.user, command) for command in commands]
        )
        records = []
        for command, authorized_by in zip(commands, verdicts):
            record = self._apply_decided(command, authorized_by)
            self._audit_admin(record)
            records.append(record)
        return records

    def _submit_via_index(self, command: Command) -> ExecutionRecord:
        """Index-backed authorization, then the Definition-5 effect."""
        authorized_by = self._index.authorizes(command.user, command)
        return self._apply_decided(command, authorized_by)

    def _apply_decided(
        self, command: Command, authorized_by
    ) -> ExecutionRecord:
        """The Definition-5 effect for an already-made decision.

        The apply step must tolerate mutations that no longer change
        anything: in a batched queue the decisions were all made
        against the batch-entry state, so a duplicated grant — or a
        revoke of an edge another command in the batch already removed
        (possibly garbage-collecting its privilege vertex) — reaches
        this point authorized but with nothing left to do.  Definition
        5 is a set union/difference, so the command still *executes*;
        the record marks it a no-op, exactly as the sequential
        :func:`repro.core.commands.step` path does.
        """
        if authorized_by is None:
            return ExecutionRecord(command, False)
        if command.action is CommandAction.GRANT:
            changed = self.policy.add_edge(command.source, command.target)
        else:
            changed = self.policy.remove_edge(command.source, command.target)
        implicit = authorized_by != command.requested_privilege()
        return ExecutionRecord(
            command, True, authorized_by, implicit, noop=not changed
        )

    def _audit_admin(self, record: ExecutionRecord) -> None:
        detail = str(record.command)
        if record.executed and record.implicit:
            detail += f" [implicitly authorized by {record.authorized_by}]"
        self._audit("admin", record.command.user, detail, record.executed)

    # ------------------------------------------------------------------
    # Review functions (ANSI RBAC)
    # ------------------------------------------------------------------
    def assigned_users(self, role: Role) -> frozenset[User]:
        """Users directly assigned to ``role`` (UA edges)."""
        return frozenset(
            user for user, assigned in self.policy.ua_edges() if assigned == role
        )

    def authorized_users(self, role: Role) -> frozenset[User]:
        """Users that may activate ``role`` (directly or via hierarchy)."""
        return frozenset(
            user for user in self.policy.users() if self.policy.reaches(user, role)
        )

    def role_privileges(self, role: Role) -> frozenset[UserPrivilege]:
        return self.policy.authorized_privileges(role)

    # ------------------------------------------------------------------
    def index_statistics(self) -> dict[str, int] | None:
        """The authorization index's counters (aggregated across
        shards when ``shards > 1``), or None for oracle-only monitors."""
        if self._index is None:
            return None
        return self._index.statistics()

    # ------------------------------------------------------------------
    def _audit(self, kind: str, subject: User, detail: str, allowed: bool) -> None:
        self.audit_trail.append(AccessDecision(kind, subject, detail, allowed))

    def denials(self) -> list[AccessDecision]:
        return [entry for entry in self.audit_trail if not entry.allowed]
