"""The privilege ordering ``Ã`` of Definition 8 and its decision
procedure (Lemma 1).

``p Ãφ q`` reads "q is weaker than (or equal to) p under policy φ":
giving a role the weaker privilege ``q`` instead of ``p`` yields an
administrative refinement of the policy (Theorem 1).

Semantics implemented
---------------------

Definition 8 lists three rules (reflexivity; rule (2) for grants over
user/role pairs; rule (3) for grants of nested privileges) and asserts
that the resulting relation is reflexive *and transitive*.  Two details
of the paper require care:

1. **Example 6** derives ``¤(r1, ¤(r1,r2))`` from ``¤(r1, r2)`` "by
   rule (2)" — this needs rule (2)'s premise ``v3 →φ v4`` to be read as
   plain graph reachability, where ``v4`` may be a *privilege vertex*
   (here the PA edge ``r2 → ¤(r1,r2)`` provides the path).  Under the
   narrow reading (``v4 ∈ U ∪ R`` only) the example's first step does
   not hold.
2. The continuation of Example 6 (``¤(r1, ¤(r1, ¤(r1,r2)))`` is again
   weaker than the original) additionally requires the relation to be
   **transitively closed**: the smallest relation satisfying the three
   rules alone is not transitive once rule (2) is generalized.

The default semantics here is therefore the *transitive closure of the
generalized rules*, which we show (in the docstring of
:meth:`OrderingOracle._holds`) admits an equivalent structural
characterization that is decidable by induction on the weaker term —
exactly the shape of the Lemma 1 proof.  The literal narrow rules are
available as ``strict_rules=True`` for ablation; under them Example 5
still goes through but Example 6 does not (tests pin down both).

Both semantics agree whenever the weaker privilege's target is a
user/role (the common case) and on all of Example 5.
"""

from __future__ import annotations

from typing import Iterator

from ..graph import dirty_region, dirty_region_bits, summarize_deltas
from .entities import Role, User
from .policy import Policy
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    UserPrivilege,
    is_privilege,
)
from .trace import Derivation, OrderingStatistics, ReachPremise

_Entity = (User, Role)


def _term_footprint(privilege: Privilege) -> set:
    """Every graph vertex a ``p Ã q`` decision can have touched through
    this term: the term itself, its privilege subterms, and every
    entity they mention."""
    vertices: set = {privilege}
    if isinstance(privilege, AdminPrivilege):
        vertices.update(privilege.subterms())
        vertices.update(privilege.mentioned_entities())
    return vertices


class OrderingOracle:
    """Decides ``p Ãφ q`` for a fixed policy, with memoization.

    The memo table tracks the policy graph's version counter, so an
    oracle may safely be kept alongside a policy that the reference
    monitor is mutating.  Invalidation is *churn-aware*: instead of
    clearing wholesale on every version bump, the oracle consults the
    graph's change journal and evicts only the entries whose vertices
    fall in the mutation's dirty region (see :meth:`_validate_memo`
    for the exact soundness argument), falling back to a full clear
    when the journal has expired or the delta burst exceeds
    ``MEMO_DELTA_LIMIT``.
    """

    #: delta bursts larger than this clear the memo wholesale — the
    #: per-entry footprint test costs O(memo × term size) and stops
    #: paying for itself on big bursts.
    MEMO_DELTA_LIMIT = 32

    __slots__ = ("policy", "strict_rules", "compiled", "stats", "_memo",
                 "_version")

    def __init__(
        self,
        policy: Policy,
        strict_rules: bool = False,
        compiled: bool = True,
    ):
        self.policy = policy
        self.strict_rules = strict_rules
        #: True: memo eviction tests term footprints against the dirty
        #: region as interned-ID bitmasks (one shift per footprint
        #: vertex); False: the frozenset footprint test, kept as the
        #: differential baseline.  Decisions are identical either way.
        self.compiled = compiled
        self.stats = OrderingStatistics()
        self._memo: dict[tuple[Privilege, Privilege], bool] = {}
        self._version = policy.graph.version

    # ------------------------------------------------------------------
    def is_weaker(self, stronger: Privilege, weaker: Privilege) -> bool:
        """True iff ``stronger Ãφ weaker`` (weaker is safe to substitute)."""
        self._validate_memo()
        self.stats.queries += 1
        return self._holds(stronger, weaker)

    def explain(self, stronger: Privilege, weaker: Privilege) -> Derivation | None:
        """A derivation tree if the judgement holds, else None."""
        self._validate_memo()
        return self._derive(stronger, weaker)

    # ------------------------------------------------------------------
    def _validate_memo(self) -> None:
        """Churn-aware memo maintenance.

        A memoized ``p Ã q`` decision is a function of (a) reach
        checks whose source side is always a subterm of ``q`` or whose
        target side is always a subterm of ``p``/``q``, and (b) — in
        the generalized rule-(2) hop — the *privilege vertices*
        reachable from an entity target.  A journaled edge mutation
        ``(s, t)`` can change a reach check only if its source side
        reaches ``s`` (is in the upstream region) or its target side
        is reached by ``t`` (downstream region), and can change a
        hop's candidate set membership only by moving a privilege
        vertex into or out of a descendant set — which puts that
        privilege vertex in the downstream region.  So an entry is
        provably unaffected when

        * neither term's footprint (term, subterms, mentioned
          entities) intersects the dirty region, and
        * the burst cannot have changed any hop candidate set, or the
          weaker term's target is an entity (the hop only fires while
          recursing into privilege-sorted targets).  A hop set is
          ``descendants(tp) ∩ privileges`` for an entity target
          ``tp`` — by the grammar's sorts always a *role* — so it can
          change only when the upstream region contains a role and
          the downstream region contains a privilege vertex.  UA
          churn (whose upstream region is just the assigned user)
          is therefore always hop-safe.

        Everything else is evicted; journal expiry or an oversized
        burst clears wholesale, as before.
        """
        version = self.policy.graph.version
        if self._version == version:
            return
        if not self._memo:
            self._version = version
            return
        deltas = self.policy.changes_since(self._version)
        self._version = version
        summary = None if deltas is None else summarize_deltas(deltas)
        if summary is not None and summary.weight == 0:
            return  # pure vertex additions touch no reachable set
        if summary is None or summary.weight > self.MEMO_DELTA_LIMIT:
            self._memo.clear()
            self.stats.memo_full_clears += 1
            return
        if self.compiled:
            self._evict_stale_bits(summary)
            return
        removed = summary.removed_vertices
        upstream, downstream = dirty_region(
            self.policy.graph, summary.edge_sources, summary.edge_targets
        )
        dirty = upstream | downstream | removed
        hop_unsafe = (
            not self.strict_rules
            and any(isinstance(vertex, Role) for vertex in upstream)
            and any(
                is_privilege(vertex) for vertex in (downstream | removed)
            )
        )
        stale = []
        for key in self._memo:
            stronger, weaker = key
            if not isinstance(stronger, Grant) or not isinstance(weaker, Grant):
                continue  # structurally False under every policy
            if hop_unsafe and not isinstance(weaker.target, _Entity):
                stale.append(key)
                continue
            if not dirty.isdisjoint(_term_footprint(stronger)) or (
                not dirty.isdisjoint(_term_footprint(weaker))
            ):
                stale.append(key)
        for key in stale:
            del self._memo[key]
        self.stats.memo_evictions += len(stale)

    def _evict_stale_bits(self, summary) -> None:
        """Compiled footprint eviction: the dirty region is two masks
        over interned vertex IDs, so testing an entry's footprint is
        one shift per footprint vertex instead of two frozenset
        intersections.  Vertices without an ID (removed within the
        burst, hence in the summary, or mentioned by a term but never
        registered) fall back to membership in the small ``dirty_extra``
        set, preserving the frozenset semantics exactly."""
        graph = self.policy.graph
        removed = summary.removed_vertices
        upstream, downstream, absent_sources, absent_targets = (
            dirty_region_bits(
                graph, summary.edge_sources, summary.edge_targets
            )
        )
        bits = self.policy.bits
        dirty_mask = upstream | downstream
        dirty_extra = absent_sources | absent_targets | removed
        hop_unsafe = (
            not self.strict_rules
            and bool(
                upstream & bits.roles_mask
                or any(isinstance(v, Role) for v in absent_sources)
            )
            and bool(
                downstream & bits.privileges_mask
                or any(
                    is_privilege(v)
                    for v in (absent_targets | removed)
                )
            )
        )
        vid = graph._vid

        def vertex_dirty(vertex) -> bool:
            index = vid.get(vertex)
            if index is not None and dirty_mask >> index & 1:
                return True
            return bool(dirty_extra) and vertex in dirty_extra

        def footprint_dirty(privilege) -> bool:
            if vertex_dirty(privilege):
                return True
            if isinstance(privilege, AdminPrivilege):
                for term in privilege.subterms():
                    if vertex_dirty(term):
                        return True
                for entity in privilege.mentioned_entities():
                    if vertex_dirty(entity):
                        return True
            return False

        stale = []
        for key in self._memo:
            stronger, weaker = key
            if not isinstance(stronger, Grant) or not isinstance(weaker, Grant):
                continue  # structurally False under every policy
            if hop_unsafe and not isinstance(weaker.target, _Entity):
                stale.append(key)
                continue
            if footprint_dirty(stronger) or footprint_dirty(weaker):
                stale.append(key)
        for key in stale:
            del self._memo[key]
        self.stats.memo_evictions += len(stale)

    def _reaches(self, source: object, target: object) -> bool:
        self.stats.reach_checks += 1
        return self.policy.reaches(source, target)

    def _reachable_privilege_vertices(self, source: object) -> Iterator[Privilege]:
        """Privilege vertices reachable from ``source`` in the graph."""
        from .privileges import is_privilege

        for vertex in self.policy.descendants(source):
            if is_privilege(vertex):
                yield vertex

    def _holds(self, p: Privilege, q: Privilege) -> bool:
        """Decision procedure, by structural induction on ``q``.

        Equivalent characterization of the transitively-closed
        generalized relation (proved in tests by comparison against a
        bounded rule-application oracle): for grants
        ``p = ¤(sp, tp)``, ``q = ¤(sq, tq)``, ``p Ã q`` iff
        ``sq →φ sp`` and ``weaker_target(tp, tq)``, where

        * ``weaker_target(t, t')`` with ``t' ∈ U∪R`` requires
          ``t ∈ U∪R`` and ``t →φ t'``  (rule 2);
        * ``weaker_target(t, t')`` with ``t'`` a privilege holds if
          either ``t`` is a privilege and ``t Ã t'``  (rule 3), or
          ``t ∈ U∪R`` and some privilege *vertex* ``w`` with
          ``t →φ w`` satisfies ``w Ã t'``  (generalized rule 2
          composed, via transitivity, with further weakening).

        Every recursive call descends into ``t'``, which is a strict
        subterm of ``q``, so the procedure terminates — this is the
        Lemma 1 argument, adapted to the closed relation.
        """
        if p == q:
            return True
        key = (p, q)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        result = self._holds_uncached(p, q)
        self._memo[key] = result
        return result

    def _holds_uncached(self, p: Privilege, q: Privilege) -> bool:
        # Base cases of Lemma 1: user privileges and revocations are
        # ordered only by reflexivity (handled in _holds).
        if not isinstance(q, Grant) or not isinstance(p, Grant):
            return False
        if not self._reaches(q.source, p.source):
            return False
        tp, tq = p.target, q.target
        if isinstance(tq, _Entity):
            # Rule (2), narrow form: both targets are users/roles.
            return isinstance(tp, _Entity) and self._reaches(tp, tq)
        # tq is a privilege term.
        if isinstance(tp, (AdminPrivilege, UserPrivilege)):
            # Rule (3).
            return self._holds(tp, tq)
        if self.strict_rules:
            # Literal Definition 8: rule (2) requires v4 in U+R, and no
            # transitive completion is applied.
            return False
        # Generalized rule (2) + transitivity: hop through a privilege
        # vertex reachable from the entity target.
        for w in self._reachable_privilege_vertices(tp):
            if self._holds(w, tq):
                return True
        return False

    # ------------------------------------------------------------------
    def _derive(self, p: Privilege, q: Privilege) -> Derivation | None:
        if p == q:
            self.stats.record_rule("reflexivity")
            return Derivation("reflexivity", p, q)
        if not isinstance(q, Grant) or not isinstance(p, Grant):
            return None
        if not self._reaches(q.source, p.source):
            return None
        source_premise = ReachPremise(q.source, p.source)
        tp, tq = p.target, q.target
        if isinstance(tq, _Entity):
            if isinstance(tp, _Entity) and self._reaches(tp, tq):
                self.stats.record_rule("rule2")
                return Derivation(
                    "rule2", p, q,
                    premises=(source_premise, ReachPremise(tp, tq)),
                )
            return None
        if isinstance(tp, (AdminPrivilege, UserPrivilege)):
            sub = self._derive(tp, tq)
            if sub is None:
                return None
            self.stats.record_rule("rule3")
            return Derivation("rule3", p, q, premises=(source_premise,), sub=sub)
        if self.strict_rules:
            return None
        for w in sorted(
            self._reachable_privilege_vertices(tp), key=str
        ):
            sub = self._derive(w, tq)
            if sub is not None:
                self.stats.record_rule("rule2+transitivity")
                return Derivation(
                    "rule2+transitivity", p, q,
                    premises=(source_premise, ReachPremise(tp, w)),
                    sub=sub,
                    via=w,
                )
        return None


def is_weaker(
    policy: Policy,
    stronger: Privilege,
    weaker: Privilege,
    strict_rules: bool = False,
) -> bool:
    """Convenience wrapper: one-shot ``stronger Ãφ weaker`` decision."""
    return OrderingOracle(policy, strict_rules=strict_rules).is_weaker(
        stronger, weaker
    )


def explain_weaker(
    policy: Policy,
    stronger: Privilege,
    weaker: Privilege,
    strict_rules: bool = False,
) -> Derivation | None:
    """Convenience wrapper returning a derivation tree (or None)."""
    return OrderingOracle(policy, strict_rules=strict_rules).explain(
        stronger, weaker
    )


def implicitly_authorized(
    policy: Policy,
    subject: User | Role,
    wanted: Privilege,
    strict_rules: bool = False,
) -> Privilege | None:
    """The paper's practical use of the ordering (§4.1): a subject is
    *implicitly authorized* for ``wanted`` if it reaches some assigned
    privilege ``p`` with ``p Ãφ wanted``.

    Returns an authorizing privilege, preferring an exact match, or
    None if the subject is not authorized.  This is the check the
    refined reference monitor performs before executing an
    administrative command.
    """
    oracle = OrderingOracle(policy, strict_rules=strict_rules)
    best: Privilege | None = None
    for vertex in policy.descendants(subject):
        from .privileges import is_privilege

        if not is_privilege(vertex):
            continue
        if vertex == wanted:
            return vertex
        if best is None and oracle.is_weaker(vertex, wanted):
            best = vertex
    return best
