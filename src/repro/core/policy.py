"""Administrative RBAC policies (Definitions 1 and 3).

A policy ``φ = (UA, RH, PA†)`` is, following the paper, treated as a
single directed graph whose edge set is ``UA ∪ RH ∪ PA†``:

* ``UA ⊆ U × R`` — user-to-role membership edges,
* ``RH ⊆ R × R`` — role-hierarchy edges (deliberately *not* required to
  be a partial order; cycles are legal, per the paper's footnote 3), and
* ``PA† ⊆ R × P†`` — privilege-assignment edges, where the privilege may
  be an ordinary user privilege or an administrative ``¤``/``♦`` term.

Privilege terms are graph *vertices*; their internal structure (the
users/roles they mention) induces no edges.  The paper's judgement
``v →φ v'`` is reflexive-transitive reachability in this graph.

The non-administrative policies of Definition 1 are exactly the
policies whose ``PA`` assigns only user privileges;
:meth:`Policy.is_non_administrative` tests for that subclass.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import PolicyError
from ..graph import Digraph, ReachabilityCache, longest_chain_length
from .entities import Role, User
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    Revoke,
    UserPrivilege,
    is_privilege,
)

PolicyEdge = tuple[object, object]


def check_edge_sorts(source: object, target: object) -> str:
    """Classify a policy edge; raise PolicyError if ill-sorted.

    Returns ``"ua"``, ``"rh"``, or ``"pa"``.
    """
    if isinstance(source, User) and isinstance(target, Role):
        return "ua"
    if isinstance(source, Role) and isinstance(target, Role):
        return "rh"
    if isinstance(source, Role) and is_privilege(target):
        return "pa"
    raise PolicyError(
        f"ill-sorted policy edge ({source!r}, {target!r}); legal edges are "
        "user->role, role->role, role->privilege"
    )


class PolicyBits:
    """Sort-classification bitmasks over the policy graph's interned
    vertex IDs — the compiled kernel's answer to ``isinstance`` sweeps.

    Filtering a reachability mask down to "the privileges among these
    vertices" or "the entity ancestors" is a single ``&`` against one
    of these masks, where the frozenset representation pays an
    ``isinstance`` per element.  Masks maintained:

    * ``users_mask`` / ``roles_mask`` / ``entities_mask`` — vertices by
      entity sort;
    * ``privileges_mask`` — every P† vertex;
    * ``grant_entity_mask`` / ``revoke_entity_mask`` — ¤/♦ vertices
      whose target is a user or role (the rectangle-bearing and
      exact-revocation privileges of the authorization index).

    Maintenance follows the change journal through a cursor: edge
    mutations never change a vertex's sort, vertex additions set bits
    incrementally, and any vertex *removal* triggers a full O(V)
    rescan — removal is the rare operation (user deprovisioning,
    privilege garbage collection), and the rescan also retires the
    bits of IDs the interner's free-list may hand out again.
    """

    __slots__ = ("_graph", "_cursor", "rebuilds", "users_mask",
                 "roles_mask", "entities_mask", "privileges_mask",
                 "grant_entity_mask", "revoke_entity_mask")

    def __init__(self, graph: Digraph):
        self._graph = graph
        self._cursor = graph.journal_cursor()
        self.rebuilds = 0
        self._rebuild()

    def _classify(self, vertex, index: int) -> None:
        bit = 1 << index
        if isinstance(vertex, User):
            self.users_mask |= bit
            self.entities_mask |= bit
        elif isinstance(vertex, Role):
            self.roles_mask |= bit
            self.entities_mask |= bit
        elif is_privilege(vertex):
            self.privileges_mask |= bit
            if isinstance(vertex, AdminPrivilege) and isinstance(
                vertex.target, (User, Role)
            ):
                if isinstance(vertex, Grant):
                    self.grant_entity_mask |= bit
                elif isinstance(vertex, Revoke):
                    self.revoke_entity_mask |= bit

    def _rebuild(self) -> None:
        self.users_mask = 0
        self.roles_mask = 0
        self.entities_mask = 0
        self.privileges_mask = 0
        self.grant_entity_mask = 0
        self.revoke_entity_mask = 0
        for vertex, index in self._graph._vid.items():
            self._classify(vertex, index)
        self._cursor.version = self._graph.version
        self.rebuilds += 1

    def validate(self) -> None:
        """Bring the masks up to date with the graph now."""
        if not self._cursor.pending:
            return
        deltas = self._cursor.take()
        if deltas is None or any(
            delta.kind == "remove-vertex" for delta in deltas
        ):
            self._rebuild()
            return
        vid = self._graph._vid
        for delta in deltas:
            if delta.kind == "add-vertex":
                # No removal in the window, so the vertex is still
                # present and its ID was not recycled mid-window.
                self._classify(delta.source, vid[delta.source])


class Policy:
    """A mutable administrative RBAC policy.

    The reference monitor mutates policies in place when executing
    administrative commands; analyses that must not disturb a policy
    take a :meth:`copy` first.  Reachability queries are served by a
    version-checked cache, so bursts of queries between mutations cost
    one BFS per distinct source.
    """

    __slots__ = ("_graph", "_cache", "_bits")

    def __init__(
        self,
        ua: Iterable[tuple[User, Role]] = (),
        rh: Iterable[tuple[Role, Role]] = (),
        pa: Iterable[tuple[Role, Privilege]] = (),
    ):
        self._graph = Digraph()
        self._cache = ReachabilityCache(self._graph)
        self._bits: PolicyBits | None = None
        for source, target in ua:
            self.assign_user(source, target)
        for source, target in rh:
            self.add_inheritance(source, target)
        for source, target in pa:
            self.assign_privilege(source, target)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_user(self, user: User) -> None:
        """Register a user with no memberships yet."""
        if not isinstance(user, User):
            raise PolicyError(f"not a user: {user!r}")
        self._graph.add_vertex(user)

    def add_role(self, role: Role) -> None:
        """Register a role with no edges yet."""
        if not isinstance(role, Role):
            raise PolicyError(f"not a role: {role!r}")
        self._graph.add_vertex(role)

    def assign_user(self, user: User, role: Role) -> bool:
        """Add a UA edge; returns True if the edge was new."""
        if not (isinstance(user, User) and isinstance(role, Role)):
            raise PolicyError(f"UA edge must be user->role: ({user!r}, {role!r})")
        return self._graph.add_edge(user, role)

    def add_inheritance(self, senior: Role, junior: Role) -> bool:
        """Add an RH edge ``senior -> junior`` (senior inherits junior)."""
        if not (isinstance(senior, Role) and isinstance(junior, Role)):
            raise PolicyError(f"RH edge must be role->role: ({senior!r}, {junior!r})")
        return self._graph.add_edge(senior, junior)

    def assign_privilege(self, role: Role, privilege: Privilege) -> bool:
        """Add a PA† edge ``role -> privilege``."""
        if not (isinstance(role, Role) and is_privilege(privilege)):
            raise PolicyError(
                f"PA edge must be role->privilege: ({role!r}, {privilege!r})"
            )
        return self._graph.add_edge(role, privilege)

    def add_edge(self, source: object, target: object) -> bool:
        """Add an edge of any legal sort (used by command execution)."""
        check_edge_sorts(source, target)
        return self._graph.add_edge(source, target)

    def remove_edge(self, source: object, target: object) -> bool:
        """Remove an edge; returns True if it was present.

        Users and roles stay registered when they lose their last
        edge (they are declared entities), but a privilege vertex
        with no remaining incoming edge is garbage-collected: an
        unassigned privilege term is not part of the policy (and
        would otherwise break serialization round-trips).
        """
        removed = self._graph.remove_edge(source, target)
        if (
            removed
            and is_privilege(target)
            and self._graph.in_degree(target) == 0
        ):
            self._graph.remove_vertex(target)
        return removed

    def remove_user(self, user: User) -> bool:
        """Deprovision a user: remove the vertex and every UA edge it
        carries; returns True if the user was registered.

        A user vertex only ever has outgoing user→role edges, so no
        privilege garbage collection can be triggered here (that is
        :meth:`remove_edge`'s concern).
        """
        if not isinstance(user, User):
            raise PolicyError(f"not a user: {user!r}")
        return self._graph.remove_vertex(user)

    def remove_role(self, role: Role) -> bool:
        """Deprovision a role: remove its PA† assignments (through
        :meth:`remove_edge`, so privileges the role solely assigned
        are garbage-collected with it), then the vertex with its
        remaining UA/RH edges; returns True if the role was
        registered.  The repair engine's ``dead-role`` planner is the
        main client."""
        if not isinstance(role, Role):
            raise PolicyError(f"not a role: {role!r}")
        if role not in self._graph:
            return False
        for target in sorted(self._graph.successors(role), key=str):
            if is_privilege(target):
                self.remove_edge(role, target)
        return self._graph.remove_vertex(role)

    def has_edge(self, source: object, target: object) -> bool:
        return self._graph.has_edge(source, target)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Digraph:
        """The underlying graph.  Mutate only through Policy methods."""
        return self._graph

    @property
    def version(self) -> int:
        """The graph's mutation counter — the staleness cursor every
        policy-level cache keys on."""
        return self._graph.version

    def changes_since(self, version: int):
        """The journaled mutations applied after ``version`` (see
        :meth:`repro.graph.Digraph.changes_since`): the seam incremental
        caches use to repair themselves under policy churn, rather than
        rebuilding on every version bump.  None means the journal
        window has passed and a full rebuild is required."""
        return self._graph.changes_since(version)

    def journal_cursor(self):
        """A registered per-consumer cursor into the change journal
        (see :meth:`repro.graph.Digraph.journal_cursor`): while the
        cursor is alive the journal retains what it still needs."""
        return self._graph.journal_cursor()

    def validate_caches(self) -> None:
        """Run the (mutating) eviction/maintenance steps of the
        reachability cache and the sort masks now.

        Call before fanning reads out to worker threads: afterwards,
        concurrent queries against an unchanged policy only add memo
        entries, they never restructure shared state."""
        self._cache.validate()
        if self._bits is not None:
            self._bits.validate()

    def users(self) -> Iterator[User]:
        for vertex in self._graph.vertices():
            if isinstance(vertex, User):
                yield vertex

    def roles(self) -> Iterator[Role]:
        for vertex in self._graph.vertices():
            if isinstance(vertex, Role):
                yield vertex

    def privileges(self) -> Iterator[Privilege]:
        """All privilege vertices (user and administrative)."""
        for vertex in self._graph.vertices():
            if is_privilege(vertex):
                yield vertex

    def user_privileges(self) -> Iterator[UserPrivilege]:
        for vertex in self._graph.vertices():
            if isinstance(vertex, UserPrivilege):
                yield vertex

    def admin_privileges(self) -> Iterator[AdminPrivilege]:
        for vertex in self._graph.vertices():
            if isinstance(vertex, AdminPrivilege):
                yield vertex

    def ua_edges(self) -> Iterator[tuple[User, Role]]:
        for source, target in self._graph.edges():
            if isinstance(source, User):
                yield (source, target)

    def rh_edges(self) -> Iterator[tuple[Role, Role]]:
        for source, target in self._graph.edges():
            if isinstance(source, Role) and isinstance(target, Role):
                yield (source, target)

    def pa_edges(self) -> Iterator[tuple[Role, Privilege]]:
        for source, target in self._graph.edges():
            if isinstance(source, Role) and is_privilege(target):
                yield (source, target)

    def is_non_administrative(self) -> bool:
        """True iff the policy is in the Definition-1 subclass
        (assigns no administrative privileges)."""
        return not any(True for _ in self.admin_privileges_assigned())

    def admin_privileges_assigned(self) -> Iterator[tuple[Role, AdminPrivilege]]:
        for role, privilege in self.pa_edges():
            if isinstance(privilege, AdminPrivilege):
                yield (role, privilege)

    # ------------------------------------------------------------------
    # Reachability (the paper's  v ->_phi v'  judgement)
    # ------------------------------------------------------------------
    def reaches(self, source: object, target: object) -> bool:
        """Reflexive-transitive reachability in the policy graph."""
        return self._cache.reaches(source, target)

    def descendants(self, source: object) -> frozenset:
        """All vertices reachable from ``source`` (including itself)."""
        return self._cache.descendants(source)

    def descendants_bits(self, source: object) -> int:
        """The compiled-kernel view of :meth:`descendants`: a memoized
        bitmask over interned vertex IDs (``0`` for a non-vertex —
        see :func:`repro.graph.descendants_bits`)."""
        return self._cache.descendants_bits(source)

    @property
    def bits(self) -> PolicyBits:
        """The policy's sort-classification masks (compiled kernel),
        built lazily and revalidated from the change journal."""
        bits = self._bits
        if bits is None:
            bits = self._bits = PolicyBits(self._graph)
        else:
            bits.validate()
        return bits

    def authorized_roles(self, user: User) -> frozenset[Role]:
        """Roles the user may activate: ``{r : u ->φ r}`` (§2)."""
        return frozenset(
            vertex for vertex in self.descendants(user) if isinstance(vertex, Role)
        )

    def authorized_privileges(self, subject: object) -> frozenset[UserPrivilege]:
        """User privileges reachable from ``subject``."""
        return frozenset(
            vertex
            for vertex in self.descendants(subject)
            if isinstance(vertex, UserPrivilege)
        )

    def reachable_admin_privileges(self, subject: object) -> frozenset[AdminPrivilege]:
        """Administrative privileges reachable from ``subject``."""
        return frozenset(
            vertex
            for vertex in self.descendants(subject)
            if isinstance(vertex, AdminPrivilege)
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def rh_subgraph(self) -> Digraph:
        """The role-hierarchy edges as a standalone graph."""
        sub = Digraph()
        for role in self.roles():
            sub.add_vertex(role)
        for senior, junior in self.rh_edges():
            sub.add_edge(senior, junior)
        return sub

    def longest_role_chain(self) -> int:
        """Length of the longest chain in RH — the Remark-2 bound ``n``."""
        return longest_chain_length(self.rh_subgraph())

    def subterm_closure(self) -> frozenset[Privilege]:
        """Every privilege occurring in the policy, including strict
        subterms of assigned administrative privileges.

        Key finiteness fact (used by the effective-command universe,
        see :mod:`repro.core.commands`): executing grant commands can
        only introduce privilege vertices drawn from this set, because
        a grant of ``(r, p)`` requires a reachable term ``¤(r, p)``
        whose target ``p`` is already a subterm of the policy.
        """
        closed: set[Privilege] = set()
        for privilege in self.privileges():
            if isinstance(privilege, AdminPrivilege):
                closed.update(privilege.subterms())
            else:
                closed.add(privilege)
        return frozenset(closed)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def copy(self) -> "Policy":
        clone = Policy()
        for vertex in self._graph.vertices():
            clone._graph.add_vertex(vertex)
        for source, target in self._graph.edges():
            clone._graph.add_edge(source, target)
        return clone

    def edge_set(self) -> frozenset[PolicyEdge]:
        return self._graph.edge_set()

    def vertex_set(self) -> frozenset:
        return frozenset(self._graph.vertices())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return (
            self.edge_set() == other.edge_set()
            and self.vertex_set() == other.vertex_set()
        )

    def __hash__(self):
        raise TypeError("Policy is mutable and unhashable; use edge_set()")

    def __repr__(self) -> str:
        users = sum(1 for _ in self.users())
        roles = sum(1 for _ in self.roles())
        privileges = sum(1 for _ in self.privileges())
        return (
            f"Policy(users={users}, roles={roles}, privileges={privileges}, "
            f"edges={self._graph.edge_count})"
        )


def union_with_edge(policy: Policy, edge: PolicyEdge) -> Policy:
    """``φ ∪ (v, v')`` as a new policy (Definition 5, grant case)."""
    clone = policy.copy()
    clone.add_edge(*edge)
    return clone


def minus_edge(policy: Policy, edge: PolicyEdge) -> Policy:
    """``φ \\ (v, v')`` as a new policy (Definition 5, revoke case)."""
    clone = policy.copy()
    clone.remove_edge(*edge)
    return clone
