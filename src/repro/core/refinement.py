"""Non-administrative refinement (Definition 6) and the Theorem-1
weakening transformation.

``φ º ψ`` ("ψ is a non-administrative refinement of φ") holds iff every
user privilege any user or role can reach in ψ is already reachable by
the same subject in φ — ψ grants *less*.  The relation is a preorder;
removing edges always refines (Example 3), and rearranging edges
refines exactly when the rearrangement does not create new
subject-to-privilege paths.

Theorem 1 states that replacing an assigned administrative privilege by
a Ã-weaker one yields an *administrative* refinement (Definition 7);
:func:`weaken_assignment` performs that substitution, and the tests
machine-check the theorem by running the bounded Definition-7 checker
over the substituted policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import PolicyError, PrivilegeError
from ..graph import ancestors
from .entities import Role, User
from .ordering import OrderingOracle
from .policy import Policy
from .privileges import Privilege, UserPrivilege

_Entity = (User, Role)


@dataclass(frozen=True)
class RefinementWitness:
    """A counterexample to ``φ º ψ``: subject ``v`` reaches user
    privilege ``p`` in ψ but not in φ."""

    subject: object
    privilege: UserPrivilege

    def __str__(self) -> str:
        return (
            f"{self.subject} reaches {self.privilege} in the candidate "
            "refinement but not in the original policy"
        )


def refinement_counterexample(
    phi: Policy, psi: Policy
) -> RefinementWitness | None:
    """The first witness violating ``φ º ψ``, or None if ψ refines φ.

    Deterministic: subjects and privileges are visited in sorted order.
    """
    for privilege in sorted(psi.user_privileges(), key=str):
        reaching = ancestors(psi.graph, privilege)
        for subject in sorted(reaching, key=str):
            if not isinstance(subject, _Entity):
                continue
            if not phi.reaches(subject, privilege):
                return RefinementWitness(subject, privilege)
    return None


def is_refinement(phi: Policy, psi: Policy) -> bool:
    """Definition 6: True iff ``φ º ψ``."""
    return refinement_counterexample(phi, psi) is None


def refines_strictly(phi: Policy, psi: Policy) -> bool:
    """True iff ``φ º ψ`` but not ``ψ º φ`` (ψ grants strictly less)."""
    return is_refinement(phi, psi) and not is_refinement(psi, phi)


def granted_pairs(policy: Policy) -> frozenset[tuple[object, UserPrivilege]]:
    """All ``(subject, user privilege)`` pairs the policy authorizes.

    ``φ º ψ`` is equivalent to ``granted_pairs(ψ) ⊆ granted_pairs(φ)``;
    the pair view is what the baseline-comparison metrics report.
    """
    pairs: set[tuple[object, UserPrivilege]] = set()
    for privilege in policy.user_privileges():
        for subject in ancestors(policy.graph, privilege):
            if isinstance(subject, _Entity):
                pairs.add((subject, privilege))
    return frozenset(pairs)


# ----------------------------------------------------------------------
# Example 3 helpers: refinement by edge surgery
# ----------------------------------------------------------------------
def without_edge(policy: Policy, source: object, target: object) -> Policy:
    """Remove one edge; always a refinement of ``policy`` (Example 3)."""
    clone = policy.copy()
    if not clone.remove_edge(source, target):
        raise PolicyError(f"edge ({source!r}, {target!r}) not in policy")
    return clone


def with_replaced_edge(
    policy: Policy,
    old_edge: tuple[object, object],
    new_edge: tuple[object, object],
) -> Policy:
    """Replace one edge with another (Example 3's rearrangement).

    The result may or may not be a refinement — check with
    :func:`is_refinement` (the Example 3 tests exercise both outcomes).
    """
    clone = policy.copy()
    if not clone.remove_edge(*old_edge):
        raise PolicyError(f"edge {old_edge!r} not in policy")
    clone.add_edge(*new_edge)
    return clone


# ----------------------------------------------------------------------
# Theorem 1: weakening an assigned administrative privilege
# ----------------------------------------------------------------------
def weaken_assignment(
    policy: Policy,
    role: Role,
    stronger: Privilege,
    weaker: Privilege,
    check_ordering: bool = True,
) -> Policy:
    """``ψ = (φ \\ (role, stronger)) ∪ (role, weaker)`` — the Theorem-1
    substitution.

    With ``check_ordering=True`` (default) the substitution is refused
    unless ``stronger Ãφ weaker`` actually holds, so every policy this
    function returns is an administrative refinement of the input by
    Theorem 1.
    """
    if not policy.has_edge(role, stronger):
        raise PolicyError(
            f"({role!r}, {stronger!r}) is not a privilege assignment of the policy"
        )
    if check_ordering:
        oracle = OrderingOracle(policy)
        if not oracle.is_weaker(stronger, weaker):
            raise PrivilegeError(
                f"{weaker} is not weaker than {stronger} under this policy; "
                "the substitution would not be a refinement"
            )
    clone = policy.copy()
    clone.remove_edge(role, stronger)
    clone.assign_privilege(role, weaker)
    return clone


def enumerate_weakenings(
    policy: Policy,
    max_depth: int = 1,
) -> Iterator[tuple[Role, Privilege, Privilege, Policy]]:
    """All single-assignment weakenings of a policy, up to a nesting
    depth bound.

    Yields ``(role, stronger, weaker, weakened_policy)`` for every
    assigned administrative privilege and every strictly weaker
    privilege enumerable within ``max_depth`` (see
    :func:`repro.core.weaker.weaker_set`).  Used by the Theorem-1
    property tests and the refinement benchmarks.
    """
    from .weaker import weaker_set

    for role, stronger in sorted(
        policy.admin_privileges_assigned(), key=lambda pair: str(pair)
    ):
        for weaker in sorted(
            weaker_set(policy, stronger, max_depth) - {stronger}, key=str
        ):
            yield (
                role,
                stronger,
                weaker,
                weaken_assignment(policy, role, stronger, weaker,
                                  check_ordering=False),
            )
