"""JSON serialization for policies, privileges, and commands.

The wire format is a plain ``dict`` tree (no custom classes), so
documents survive ``json.dumps``/``json.loads`` round-trips and can be
produced by other tools.  Every decoder validates shape and sorts and
raises :class:`~repro.errors.SerializationError` on malformed input.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SerializationError
from .commands import Command, CommandAction
from .entities import Action, Obj, Role, User
from .policy import Policy
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    Revoke,
    UserPrivilege,
)


# ----------------------------------------------------------------------
# Entities
# ----------------------------------------------------------------------
def entity_to_dict(entity: object) -> dict[str, str]:
    if isinstance(entity, User):
        return {"kind": "user", "name": entity.name}
    if isinstance(entity, Role):
        return {"kind": "role", "name": entity.name}
    raise SerializationError(f"not a serializable entity: {entity!r}")


def entity_from_dict(document: Any) -> User | Role:
    if not isinstance(document, dict):
        raise SerializationError(f"entity must be an object, got {document!r}")
    kind = document.get("kind")
    name = document.get("name")
    if not isinstance(name, str):
        raise SerializationError(f"entity name missing in {document!r}")
    if kind == "user":
        return User(name)
    if kind == "role":
        return Role(name)
    raise SerializationError(f"unknown entity kind {kind!r}")


# ----------------------------------------------------------------------
# Privileges
# ----------------------------------------------------------------------
def privilege_to_dict(privilege: Privilege) -> dict[str, Any]:
    if isinstance(privilege, UserPrivilege):
        return {
            "kind": "perm",
            "action": privilege.action.name,
            "object": privilege.obj.name,
        }
    if isinstance(privilege, AdminPrivilege):
        connective = "grant" if isinstance(privilege, Grant) else "revoke"
        target = privilege.target
        if isinstance(target, (UserPrivilege, AdminPrivilege)):
            target_document: Any = privilege_to_dict(target)
        else:
            target_document = entity_to_dict(target)
        return {
            "kind": connective,
            "source": entity_to_dict(privilege.source),
            "target": target_document,
        }
    raise SerializationError(f"not a privilege: {privilege!r}")


def privilege_from_dict(document: Any) -> Privilege:
    if not isinstance(document, dict):
        raise SerializationError(f"privilege must be an object, got {document!r}")
    kind = document.get("kind")
    if kind == "perm":
        action = document.get("action")
        obj = document.get("object")
        if not (isinstance(action, str) and isinstance(obj, str)):
            raise SerializationError(f"malformed perm: {document!r}")
        return UserPrivilege(Action(action), Obj(obj))
    if kind in ("grant", "revoke"):
        source = entity_from_dict(document.get("source"))
        target_document = document.get("target")
        if isinstance(target_document, dict) and target_document.get("kind") in (
            "perm",
            "grant",
            "revoke",
        ):
            target: Any = privilege_from_dict(target_document)
        else:
            target = entity_from_dict(target_document)
        constructor = Grant if kind == "grant" else Revoke
        return constructor(source, target)
    raise SerializationError(f"unknown privilege kind {kind!r}")


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def policy_to_dict(policy: Policy) -> dict[str, Any]:
    return {
        "users": sorted(user.name for user in policy.users()),
        "roles": sorted(role.name for role in policy.roles()),
        "ua": sorted(
            [user.name, role.name] for user, role in policy.ua_edges()
        ),
        "rh": sorted(
            [senior.name, junior.name] for senior, junior in policy.rh_edges()
        ),
        "pa": sorted(
            ([role.name, privilege_to_dict(privilege)]
             for role, privilege in policy.pa_edges()),
            key=lambda item: (item[0], json.dumps(item[1], sort_keys=True)),
        ),
    }


def policy_from_dict(document: Any) -> Policy:
    if not isinstance(document, dict):
        raise SerializationError(f"policy must be an object, got {document!r}")
    policy = Policy()
    try:
        for name in document.get("users", []):
            policy.add_user(User(name))
        for name in document.get("roles", []):
            policy.add_role(Role(name))
        for user_name, role_name in document.get("ua", []):
            policy.assign_user(User(user_name), Role(role_name))
        for senior_name, junior_name in document.get("rh", []):
            policy.add_inheritance(Role(senior_name), Role(junior_name))
        for role_name, privilege_document in document.get("pa", []):
            policy.assign_privilege(
                Role(role_name), privilege_from_dict(privilege_document)
            )
    except (TypeError, ValueError) as error:
        raise SerializationError(f"malformed policy document: {error}") from error
    return policy


def policy_to_json(policy: Policy, indent: int | None = 2) -> str:
    return json.dumps(policy_to_dict(policy), indent=indent, sort_keys=True)


def policy_from_json(text: str) -> Policy:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return policy_from_dict(document)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _vertex_to_dict(vertex: object) -> dict[str, Any]:
    if isinstance(vertex, (User, Role)):
        return entity_to_dict(vertex)
    return privilege_to_dict(vertex)  # raises on non-privileges


def _vertex_from_dict(document: Any) -> object:
    if isinstance(document, dict) and document.get("kind") in ("user", "role"):
        return entity_from_dict(document)
    return privilege_from_dict(document)


def command_to_dict(command: Command) -> dict[str, Any]:
    return {
        "user": command.user.name,
        "action": command.action.value,
        "source": _vertex_to_dict(command.source),
        "target": _vertex_to_dict(command.target),
    }


def command_from_dict(document: Any) -> Command:
    if not isinstance(document, dict):
        raise SerializationError(f"command must be an object, got {document!r}")
    user_name = document.get("user")
    action_name = document.get("action")
    if not isinstance(user_name, str):
        raise SerializationError(f"command user missing in {document!r}")
    try:
        action = CommandAction(action_name)
    except ValueError as error:
        raise SerializationError(f"unknown command action {action_name!r}") from error
    return Command(
        User(user_name),
        action,
        _vertex_from_dict(document.get("source")),
        _vertex_from_dict(document.get("target")),
    )


def queue_to_json(queue: list[Command], indent: int | None = 2) -> str:
    return json.dumps([command_to_dict(c) for c in queue], indent=indent)


def queue_from_json(text: str) -> list[Command]:
    try:
        documents = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(documents, list):
        raise SerializationError("command queue document must be a list")
    return [command_from_dict(document) for document in documents]
