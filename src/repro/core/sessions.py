"""RBAC sessions (ANSI INCITS 359-2004, §2 of the paper).

A session belongs to one user and carries a set of *activated* roles.
Sessions are the standard's least-privilege mechanism: a user may hold
many roles but activate only those needed for the task at hand — the
paper's Example 4 turns on exactly this point (Jane can only *hope*
Bob activates ``dbusr2`` rather than ``staff``).

The session object itself is a dumb record; all authorization checks
live in :class:`repro.core.monitor.ReferenceMonitor`, which owns the
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..errors import SessionError
from .entities import Role, User

_session_ids = count(1)


@dataclass
class Session:
    """One user session with its activated roles."""

    user: User
    session_id: int = field(default_factory=lambda: next(_session_ids))
    active_roles: set[Role] = field(default_factory=set)
    terminated: bool = False

    def require_live(self) -> None:
        if self.terminated:
            raise SessionError(f"session {self.session_id} is terminated")

    def activate(self, role: Role) -> None:
        self.require_live()
        self.active_roles.add(role)

    def deactivate(self, role: Role) -> None:
        self.require_live()
        if role not in self.active_roles:
            raise SessionError(
                f"role {role} is not active in session {self.session_id}"
            )
        self.active_roles.discard(role)

    def terminate(self) -> None:
        self.active_roles.clear()
        self.terminated = True

    def __str__(self) -> str:
        roles = ", ".join(sorted(role.name for role in self.active_roles))
        return f"session#{self.session_id}({self.user}; active: {roles or '-'})"
