"""Derivation traces for the privilege ordering.

The decision procedure of Lemma 1 is a structural induction; when asked
to *explain* a judgement ``p Ã q`` we record which rule of Definition 8
fired and with which premises, yielding a proof tree.  Example 5 of the
paper walks through two such derivations ("this follows from rule (1)",
"by using rule (3) first, and then rule (2)"); the formatted traces
reproduce those walk-throughs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .privileges import Privilege
from .grammar import format_privilege


@dataclass(frozen=True)
class ReachPremise:
    """A premise of the form ``v ->phi v'`` (graph reachability)."""

    source: object
    target: object

    def __str__(self) -> str:
        def render(vertex: object) -> str:
            try:
                return format_privilege(vertex)  # type: ignore[arg-type]
            except Exception:
                return str(vertex)

        return f"{render(self.source)} ->phi {render(self.target)}"


@dataclass(frozen=True)
class Derivation:
    """A proof tree for ``stronger Ã weaker``.

    ``rule`` is one of:

    * ``"reflexivity"`` — rule (1) of Definition 8;
    * ``"rule2"`` — rule (2), possibly in its generalized form where the
      weaker privilege's target is a privilege vertex reachable in the
      policy graph (required by the paper's Example 6);
    * ``"rule3"`` — rule (3), with a sub-derivation for the nested
      targets;
    * ``"rule2+transitivity"`` — the generalized-rule-2 step composed
      with a sub-derivation, i.e. ``p Ã ¤(s, w)`` by rule (2) followed
      by ``¤(s, w) Ã q`` where the sub-derivation shows ``w Ã target``.
    """

    rule: str
    stronger: Privilege
    weaker: Privilege
    premises: tuple[ReachPremise, ...] = ()
    sub: "Derivation | None" = None
    via: Privilege | None = None  # the intermediate vertex w, if any

    def rules_used(self) -> Iterator[str]:
        yield self.rule
        if self.sub is not None:
            yield from self.sub.rules_used()

    def depth(self) -> int:
        if self.sub is None:
            return 1
        return 1 + self.sub.depth()

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        head = (
            f"{pad}{format_privilege(self.stronger)} "
            f"~> {format_privilege(self.weaker)}   [{self.rule}]"
        )
        lines = [head]
        for premise in self.premises:
            lines.append(f"{pad}  premise: {premise}")
        if self.via is not None:
            lines.append(f"{pad}  via vertex: {format_privilege(self.via)}")
        if self.sub is not None:
            lines.append(self.sub.format(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


@dataclass
class OrderingStatistics:
    """Counters exposed by the ordering oracle (used by benchmarks)."""

    queries: int = 0
    memo_hits: int = 0
    reach_checks: int = 0
    #: churn-aware memo maintenance: entries evicted individually
    #: because the dirty region touched their footprint, vs. wholesale
    #: clears (journal expired or delta burst over the threshold).
    memo_evictions: int = 0
    memo_full_clears: int = 0
    rule_applications: dict[str, int] = field(
        default_factory=lambda: {
            "reflexivity": 0,
            "rule2": 0,
            "rule3": 0,
            "rule2+transitivity": 0,
        }
    )

    def record_rule(self, rule: str) -> None:
        self.rule_applications[rule] = self.rule_applications.get(rule, 0) + 1

    def reset(self) -> None:
        self.queries = 0
        self.memo_hits = 0
        self.reach_checks = 0
        self.memo_evictions = 0
        self.memo_full_clears = 0
        for key in self.rule_applications:
            self.rule_applications[key] = 0
