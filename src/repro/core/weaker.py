"""Forward enumeration of weaker privileges (§4.2, Example 6, Remark 2).

The decision procedure of Lemma 1 answers "is this particular q weaker
than p?" without ever enumerating the (possibly infinite) set of weaker
privileges.  This module implements the *forward* direction — "find all
q with p Ã q" — which the paper discusses in §4.2:

* the set can be **infinite** (Example 6: a policy with the assignment
  ``(r2, ¤(r1,r2))`` produces the chain ``¤(r1, ¤(r1,r2))``,
  ``¤(r1, ¤(r1, ¤(r1,r2)))``, …), so enumeration is exposed both as a
  lazy generator and as a depth-bounded set; and
* Remark 2 conjectures that for practical purposes one may stop after
  ``n`` nesting steps, where ``n`` is the length of the longest chain
  in RH — :func:`remark2_bound` computes that bound and
  :mod:`repro.analysis.conjecture` tests the conjecture empirically.

``naive forward search does not necessarily terminate`` (§4.2) — the
benchmarks contrast :func:`enumerate_weaker` (diverging, must be
truncated) against the Lemma-1 backward decision (always terminating).
"""

from __future__ import annotations

from itertools import count
from typing import Iterator

from .entities import Role, User
from .policy import Policy
from .privileges import (
    AdminPrivilege,
    Grant,
    Privilege,
    is_privilege,
)

_Entity = (User, Role)


def _grant_sources(policy: Policy, original_source, target_is_privilege: bool):
    """Legal replacement sources ``sq`` with ``sq ->phi sp``.

    These are the entities that reach the original source; when the new
    target is a privilege term the source must be a role (grammar sorts).
    """
    for vertex in policy.vertex_set():
        if target_is_privilege:
            if not isinstance(vertex, Role):
                continue
        elif not isinstance(vertex, _Entity):
            continue
        if policy.reaches(vertex, original_source):
            yield vertex


def weaker_set(
    policy: Policy,
    privilege: Privilege,
    depth: int,
    strict_rules: bool = False,
    _memo: dict | None = None,
) -> frozenset[Privilege]:
    """All privileges weaker than ``privilege`` derivable with at most
    ``depth`` nested recursions into privilege targets.

    ``depth=0`` permits only reflexivity and the narrow rule (2);
    each extra unit of depth allows one more descent through a nested
    privilege target (rule (3) or the generalized rule (2) hop).
    The full weaker set is the union over all depths — finite policies
    may still have an infinite union (Example 6).
    """
    if _memo is None:
        _memo = {}
    key = (privilege, depth)
    cached = _memo.get(key)
    if cached is not None:
        return cached
    # Seed the memo to cut cycles: a term may transitively depend on
    # its own weaker set (Example 6); the fixpoint is reached by the
    # depth stratification, so within one depth the seed is sound.
    _memo[key] = frozenset({privilege})

    results: set[Privilege] = {privilege}
    if isinstance(privilege, Grant):
        source, target = privilege.source, privilege.target
        if isinstance(target, _Entity):
            # Narrow rule (2): both targets entities.
            entity_targets = [
                vertex
                for vertex in policy.descendants(target)
                if isinstance(vertex, Role)
            ]
            for new_source in _grant_sources(policy, source, False):
                for new_target in entity_targets:
                    results.add(Grant(new_source, new_target))
            if not strict_rules and depth > 0:
                # Generalized rule (2) + transitivity: hop through a
                # privilege vertex reachable from the entity target.
                privilege_vertices = [
                    vertex
                    for vertex in policy.descendants(target)
                    if is_privilege(vertex)
                ]
                role_sources = list(_grant_sources(policy, source, True))
                for w in privilege_vertices:
                    for new_target in weaker_set(
                        policy, w, depth - 1, strict_rules, _memo
                    ):
                        for new_source in role_sources:
                            results.add(Grant(new_source, new_target))
        elif isinstance(target, (AdminPrivilege,)) or is_privilege(target):
            # Rule (3): weaken the nested privilege.
            if depth > 0:
                role_sources = list(_grant_sources(policy, source, True))
                for new_target in weaker_set(
                    policy, target, depth - 1, strict_rules, _memo
                ):
                    for new_source in role_sources:
                        results.add(Grant(new_source, new_target))
    frozen = frozenset(results)
    _memo[key] = frozen
    return frozen


def enumerate_weaker(
    policy: Policy,
    privilege: Privilege,
    max_depth: int | None = None,
    strict_rules: bool = False,
) -> Iterator[Privilege]:
    """Lazily enumerate privileges weaker than ``privilege``.

    Terms are produced stratified by derivation depth and deduplicated;
    within a stratum the order is deterministic (by term size, then
    text).  If the weaker set is finite the generator terminates at the
    first depth that adds nothing new; for Example-6-style policies it
    is infinite — bound it with ``max_depth`` or ``itertools.islice``.
    """
    seen: set[Privilege] = set()
    depths = range(max_depth + 1) if max_depth is not None else count()
    memo: dict = {}
    for depth in depths:
        stratum = weaker_set(policy, privilege, depth, strict_rules, memo)
        fresh = stratum - seen
        if not fresh and depth > 0:
            return
        for term in sorted(
            fresh,
            key=lambda t: (
                t.size() if isinstance(t, AdminPrivilege) else 1,
                str(t),
            ),
        ):
            yield term
        seen |= stratum


def frontier_sizes(
    policy: Policy,
    privilege: Privilege,
    max_depth: int,
    strict_rules: bool = False,
) -> list[int]:
    """``|weaker_set(depth d)|`` for d = 0..max_depth.

    Used by the Example-6 benchmark to exhibit the unbounded growth of
    the weaker set, and by the Remark-2 conjecture tests.
    """
    memo: dict = {}
    return [
        len(weaker_set(policy, privilege, depth, strict_rules, memo))
        for depth in range(max_depth + 1)
    ]


def remark2_bound(policy: Policy) -> int:
    """The paper's Remark-2 cutoff: the length of the longest chain in
    the role hierarchy."""
    return policy.longest_role_chain()
