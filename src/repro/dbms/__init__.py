"""The paper's database substrate: an RBAC-guarded in-memory DBMS."""

from .audit import AuditEntry, AuditLog
from .engine import GuardedDatabase, hospital_database
from .sql import QueryResult, execute_sql, parse_sql
from .tables import Row, Schema, Table, TableStore

__all__ = [
    "AuditEntry",
    "AuditLog",
    "GuardedDatabase",
    "hospital_database",
    "QueryResult",
    "execute_sql",
    "parse_sql",
    "Row",
    "Schema",
    "Table",
    "TableStore",
]
