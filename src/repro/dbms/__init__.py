"""The paper's database substrate: an RBAC-guarded DBMS over
pluggable storage backends (see :mod:`repro.dbms.backends`)."""

from .audit import AuditEntry, AuditLog
from .backends import (
    BACKENDS,
    Capability,
    KVLogBackend,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    create_backend,
)
from .engine import GuardedDatabase, hospital_database
from .sql import QueryResult, execute_sql, parse_sql
from .tables import Row, Schema, Table, TableStore

__all__ = [
    "AuditEntry",
    "AuditLog",
    "BACKENDS",
    "Capability",
    "GuardedDatabase",
    "KVLogBackend",
    "MemoryBackend",
    "SqliteBackend",
    "StorageBackend",
    "create_backend",
    "hospital_database",
    "QueryResult",
    "execute_sql",
    "parse_sql",
    "Row",
    "Schema",
    "Table",
    "TableStore",
]
