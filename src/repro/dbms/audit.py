"""Structured audit logging for the guarded database.

Every query and every administrative command that flows through
:class:`repro.dbms.engine.GuardedDatabase` leaves an entry here — who,
what, on which object, allowed or denied, and (for administrative
commands in refined mode) which stronger privilege implicitly
authorized it.  The hospital scenario of the paper is precisely a
setting where such trails matter.

The trail is storage-independent by construction: the engine records
the decision before any :class:`~repro.dbms.backends.StorageBackend`
method runs, and sequence numbers are per-log (not process-global), so
two databases replaying the same workload over different backends
produce byte-identical trails — the invariant the differential suite
(``tests/dbms/test_backend_differential.py``) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class AuditEntry:
    """One audited event."""

    sequence: int
    category: str        # "query" | "admin" | "session"
    subject: str         # user name
    operation: str       # e.g. "read t1", "grant (bob, staff)"
    allowed: bool
    detail: str = ""

    def __str__(self) -> str:
        verdict = "ALLOW" if self.allowed else "DENY"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"#{self.sequence} [{verdict}] {self.subject}: {self.operation}{suffix}"


@dataclass
class AuditLog:
    """An append-only audit trail with simple filters."""

    entries: list[AuditEntry] = field(default_factory=list)
    _next_sequence: int = field(default=1, repr=False)

    def record(
        self,
        category: str,
        subject: str,
        operation: str,
        allowed: bool,
        detail: str = "",
    ) -> AuditEntry:
        entry = AuditEntry(
            self._next_sequence, category, subject, operation, allowed, detail
        )
        self._next_sequence += 1
        self.entries.append(entry)
        return entry

    def canonical(self) -> tuple[tuple, ...]:
        """A hashable, backend-independent image of the whole trail —
        what the differential suite compares across storage engines."""
        return tuple(
            (entry.sequence, entry.category, entry.subject,
             entry.operation, entry.allowed, entry.detail)
            for entry in self.entries
        )

    def denials(self) -> list[AuditEntry]:
        return [entry for entry in self.entries if not entry.allowed]

    def by_subject(self, subject: str) -> list[AuditEntry]:
        return [entry for entry in self.entries if entry.subject == subject]

    def by_category(self, category: str) -> list[AuditEntry]:
        return [entry for entry in self.entries if entry.category == category]

    def implicit_authorizations(self) -> list[AuditEntry]:
        """Admin events that went through the privilege ordering."""
        return [
            entry
            for entry in self.entries
            if entry.category == "admin" and entry.allowed and entry.detail
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self.entries)
