"""Pluggable storage backends for the guarded DBMS.

The interface and its capability contract live in
:mod:`~repro.dbms.backends.base`; three engines ship in-tree:

========  ==============================================  =======================
name      engine                                          capabilities
========  ==============================================  =======================
memory    the original in-memory tables (the oracle)      —
sqlite    ``sqlite3``, in-memory or file                  pushdown, persistent
kvlog     append-only JSON log replayed into memory       replayable log
                                                          (+ persistent with path)
========  ==============================================  =======================

``create_backend("sqlite", path="ehr.db")`` is the factory the engine
and the CLI use; passing an already-constructed :class:`StorageBackend`
returns it unchanged, so custom engines plug in without registration.
"""

from __future__ import annotations

from ...errors import TableError
from .base import (
    PUSHDOWN_OPERATORS,
    Capability,
    Predicate,
    Row,
    StorageBackend,
    pushable,
)
from .kvlog import KVLogBackend
from .memory import MemoryBackend
from .sqlite import SqliteBackend

#: registry of in-tree engines, keyed by their CLI/`--backend` names.
BACKENDS: dict[str, type[StorageBackend]] = {
    MemoryBackend.name: MemoryBackend,
    SqliteBackend.name: SqliteBackend,
    KVLogBackend.name: KVLogBackend,
}


def create_backend(
    backend: str | StorageBackend = "memory", **options
) -> StorageBackend:
    """Resolve a backend name (or pass through an instance).

    ``options`` are forwarded to the engine's constructor (e.g.
    ``path=...`` for sqlite and kvlog).  Unknown names raise
    :class:`~repro.errors.TableError` listing the registry.
    """
    if isinstance(backend, StorageBackend):
        if options:
            raise TableError(
                "backend options are only valid with a backend name, "
                f"not an instance of {type(backend).__name__}"
            )
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise TableError(
            f"unknown storage backend {backend!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(**options)


__all__ = [
    "BACKENDS",
    "Capability",
    "KVLogBackend",
    "MemoryBackend",
    "Predicate",
    "PUSHDOWN_OPERATORS",
    "Row",
    "SqliteBackend",
    "StorageBackend",
    "create_backend",
    "pushable",
]
