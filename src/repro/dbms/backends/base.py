"""The storage-backend contract of the guarded DBMS.

:class:`~repro.dbms.engine.GuardedDatabase` decides *who* may touch
*which* table; a :class:`StorageBackend` decides *where* the rows live
and how they are scanned.  The split is the security boundary of the
paper's Example 1 made explicit: backends never see sessions, policies,
or the audit log.  A denied access raises inside the engine **before**
any backend method is called, so no storage engine — in-memory, sqlite,
or an external store behind the same interface — can bypass
``check_access`` or skip the audit trail.

The contract has three parts:

* **CRUD + scan semantics** — ``create_table`` / ``drop_table`` /
  ``insert`` / ``scan`` / ``update`` / ``delete``, with the exact error
  behaviour of the original in-memory tables (``TableError`` on unknown
  tables/columns and malformed rows) and **insertion-ordered scans**:
  ``scan`` returns rows in insertion order, updates preserve a row's
  position.  The differential suite pins every backend to the in-memory
  oracle row-for-row, so this ordering is normative, not cosmetic.

* **Snapshot semantics** — ``snapshot()`` returns a deep, immutable
  image of every table at the call point.  Later mutations must never
  show through a snapshot (the engine relies on this for batch
  isolation: a snapshot taken at batch entry stays the entry state).

* **Capability flags** — a backend declares what it can do *beyond* the
  core contract via :class:`Capability`.  The engine and the SQL layer
  only ever exploit a capability after checking the flag; every
  capability is optional and the fallback path (evaluate the Python
  predicate row-by-row) must always produce identical results.

Predicate pushdown
------------------

``scan`` / ``update`` / ``delete`` take an optional ``conditions``
sequence alongside the authoritative ``predicate`` callable.  The two
are semantically equivalent by contract (the SQL layer builds both from
the same WHERE clause); ``conditions`` is a *structured hint* — objects
with ``column`` / ``operator`` / ``literal`` attributes, operators
drawn from :data:`PUSHDOWN_OPERATORS` — that a backend with
:attr:`Capability.PREDICATE_PUSHDOWN` may compile into its native query
language.  A backend must push **all** conditions or **none**: if any
single condition cannot be compiled (unknown column, unsupported
operator or literal type), the backend falls back to the predicate for
the whole statement.  Backends without the capability ignore
``conditions`` entirely.
"""

from __future__ import annotations

import enum
import re
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Sequence

from ...errors import TableError

Row = dict[str, Any]
Predicate = Callable[[Row], bool]

#: comparison operators a pushdown-capable backend must understand;
#: anything else in a condition forces the predicate fallback.
PUSHDOWN_OPERATORS = frozenset({"=", "!=", "<", "<=", ">", ">="})

#: table and column names safe to embed in a native query.
IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


class Capability(enum.Flag):
    """What a backend can do beyond the core CRUD/snapshot contract."""

    NONE = 0
    #: can compile structured ``conditions`` into its native query
    #: language instead of evaluating the Python predicate per row.
    PREDICATE_PUSHDOWN = enum.auto()
    #: state survives process restart when constructed with a path.
    PERSISTENT = enum.auto()
    #: every mutation is journaled; ``replayed()`` rebuilds the store
    #: from the log alone (the seam for external/replicated stores).
    REPLAYABLE_LOG = enum.auto()


def pushable(conditions: Sequence[Any] | None, columns: Iterable[str]) -> bool:
    """True iff *every* condition can be compiled against ``columns``.

    Shared pre-flight check for pushdown-capable backends: operators
    must come from :data:`PUSHDOWN_OPERATORS`, columns must exist, and
    literals must be plain scalars (str/int/float, not bool).
    """
    if conditions is None:
        return False
    known = set(columns)
    for condition in conditions:
        operator = getattr(condition, "operator", None)
        column = getattr(condition, "column", None)
        literal = getattr(condition, "literal", None)
        if operator not in PUSHDOWN_OPERATORS or column not in known:
            return False
        if isinstance(literal, bool) or not isinstance(
            literal, (str, int, float)
        ):
            return False
    return True


def check_identifier(name: str, what: str = "identifier") -> str:
    """Reject names that cannot be safely embedded in a native query."""
    if not IDENTIFIER.match(name):
        raise TableError(f"invalid {what} {name!r}")
    return name


def validate_update_columns(columns: Iterable[str], changes: Row) -> None:
    """The oracle's ``update`` error behaviour, shared by all engines."""
    unknown = set(changes) - set(columns)
    if unknown:
        raise TableError(f"update sets unknown columns {sorted(unknown)}")


def check_scalar_values(values: Row, backend_name: str) -> None:
    """Restrict values to str/int/float/None — what SQLite stores
    natively and the KV log journals as JSON.  The SQL layer only
    produces these; direct-API callers get a clear error instead of a
    backend-specific one."""
    for column, value in values.items():
        if value is not None and not isinstance(value, (str, int, float)):
            raise TableError(
                f"backend {backend_name!r} cannot store "
                f"{type(value).__name__} value in column {column!r}"
            )


class StorageBackend(ABC):
    """Abstract storage engine behind :class:`GuardedDatabase`.

    Concrete backends: :class:`~repro.dbms.backends.memory.MemoryBackend`
    (the original in-memory tables),
    :class:`~repro.dbms.backends.sqlite.SqliteBackend` (``sqlite3`` with
    predicate pushdown), and
    :class:`~repro.dbms.backends.kvlog.KVLogBackend` (append-only log
    replayed into memory).  All three are pinned to each other by the
    conformance suite (``tests/dbms/test_backend_conformance.py``) and
    the differential suite (``tests/dbms/test_backend_differential.py``).
    """

    #: registry key and display name; set by each concrete backend.
    name: str = "abstract"
    #: optional capabilities this engine declares; see :class:`Capability`.
    capabilities: Capability = Capability.NONE

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    @abstractmethod
    def create_table(self, name: str, columns: Iterable[str]):
        """Create a table; ``TableError`` if it exists or the schema is
        malformed.  May return a backend-specific handle."""

    @abstractmethod
    def drop_table(self, name: str) -> None:
        """Drop a table; ``TableError`` if it does not exist."""

    @abstractmethod
    def table_names(self) -> list[str]:
        """Sorted names of all tables."""

    @abstractmethod
    def columns(self, name: str) -> tuple[str, ...]:
        """Column names of ``name`` in schema order; ``TableError`` if
        the table does not exist."""

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    @abstractmethod
    def scan(
        self,
        name: str,
        predicate: Predicate | None = None,
        conditions: Sequence[Any] | None = None,
    ) -> list[Row]:
        """Rows of ``name`` matching the predicate, in insertion order.

        ``conditions`` is the optional pushdown hint (see the module
        docstring); when both are given they are equivalent and the
        backend may use either.
        """

    @abstractmethod
    def insert(self, name: str, row: Row) -> None:
        """Append one row; ``TableError`` on schema mismatch."""

    @abstractmethod
    def update(
        self,
        name: str,
        predicate: Predicate,
        changes: Row,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        """Apply ``changes`` to matching rows in place (positions are
        preserved); returns the number of rows touched."""

    @abstractmethod
    def delete(
        self,
        name: str,
        predicate: Predicate,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        """Remove matching rows; returns the number removed."""

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @abstractmethod
    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        """A deep, immutable image of every table at this instant,
        keyed by table name (sorted).  Never aliases live rows."""

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------
    def supports(self, capability: Capability) -> bool:
        return bool(self.capabilities & capability)

    def count(self, name: str) -> int:
        return len(self.scan(name))

    def close(self) -> None:
        """Release external resources (connections, file handles)."""

    def __contains__(self, name: str) -> bool:
        return name in self.table_names()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tables={self.table_names()!r}, "
            f"capabilities={self.capabilities!r})"
        )
