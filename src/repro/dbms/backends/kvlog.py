"""An append-only log store that replays into memory.

Every mutation — DDL included — is one JSON-serializable record
appended to a log; the live table state is just the log folded left to
right.  ``update`` and ``delete`` journal their *effects* (the row
positions they touched), not their predicates, so a replay is
deterministic without ever serializing a Python callable.

This is the seam for future external stores: a replicated KV store, a
WAL shipped to another process, or an event-sourced service all consume
exactly this record stream.  With a ``path`` the records are written as
JSON lines and the constructor replays the file, so the store is also
persistent; without one the log lives in memory (still replayable —
``replayed()`` rebuilds a fresh state from the records alone, and the
conformance suite checks it matches ``snapshot()`` after every
workload).

No pushdown: conditions are ignored and the Python predicate filters a
materialized scan, exactly like the in-memory oracle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from ...errors import TableError
from ..tables import Predicate, Row, Schema
from .base import (
    Capability,
    StorageBackend,
    check_scalar_values,
    validate_update_columns,
)

_State = dict[str, list[Row]]
_Schemas = dict[str, Schema]


class KVLogBackend(StorageBackend):
    """Append-only log storage behind the guarded engine.

    ``path`` (optional) makes the log durable as a JSON-lines file;
    re-opening the same path replays it.  Values are restricted to the
    JSON scalars (str/int/float/None) so every record round-trips.
    """

    name = "kvlog"
    capabilities = Capability.REPLAYABLE_LOG

    def __init__(self, path: str | None = None):
        self.path = str(path) if path is not None else None
        self._records: list[dict] = []
        self._tables: _State = {}
        self._schemas: _Schemas = {}
        self._log_file = None
        if self.path is not None:
            # a file-backed log is also persistent storage
            self.capabilities = (
                KVLogBackend.capabilities | Capability.PERSISTENT
            )
            existing = Path(self.path)
            if existing.exists():
                for line in existing.read_text().splitlines():
                    if line.strip():
                        record = json.loads(line)
                        self._apply(record, self._tables, self._schemas)
                        self._records.append(record)
            # one append handle for the backend's lifetime, flushed per
            # record so concurrent readers (and reopens) see every write
            self._log_file = open(self.path, "a")

    # ------------------------------------------------------------------
    # The log
    # ------------------------------------------------------------------
    @staticmethod
    def _apply(record: dict, tables: _State, schemas: _Schemas) -> None:
        """Fold one record into ``tables``/``schemas`` (pure state
        transition — shared by live mutation and replay)."""
        op, table = record["op"], record.get("table")
        if op == "create":
            schemas[table] = Schema(tuple(record["columns"]))
            tables[table] = []
        elif op == "drop":
            del schemas[table], tables[table]
        elif op == "insert":
            tables[table].append(dict(record["row"]))
        elif op == "update":
            rows = tables[table]
            for position in record["positions"]:
                rows[position].update(record["changes"])
        elif op == "delete":
            doomed = set(record["positions"])
            tables[table] = [
                row for position, row in enumerate(tables[table])
                if position not in doomed
            ]
        else:  # pragma: no cover - log corruption
            raise TableError(f"unknown log record {op!r}")

    def _append(self, record: dict) -> None:
        self._apply(record, self._tables, self._schemas)
        self._records.append(record)
        if self._log_file is not None:
            # no sort_keys: row dicts must round-trip in schema column
            # order, and json preserves insertion order both ways
            self._log_file.write(json.dumps(record) + "\n")
            self._log_file.flush()

    def replayed(self) -> dict[str, tuple[Row, ...]]:
        """Materialize a *fresh* state purely from the log — the
        invariant that the record stream alone determines the store."""
        tables: _State = {}
        schemas: _Schemas = {}
        for record in self._records:
            self._apply(record, tables, schemas)
        return {
            name: tuple(dict(row) for row in tables[name])
            for name in sorted(tables)
        }

    @property
    def records(self) -> tuple[dict, ...]:
        """The log itself (read-only view), for tests and shipping."""
        return tuple(self._records)

    # ------------------------------------------------------------------
    def _schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise TableError(f"no such table {name!r}") from None

    # -- DDL ------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[str]) -> None:
        if name in self._schemas:
            raise TableError(f"table {name!r} already exists")
        schema = Schema(tuple(columns))
        self._append({"op": "create", "table": name,
                      "columns": list(schema.columns)})

    def drop_table(self, name: str) -> None:
        self._schema(name)
        self._append({"op": "drop", "table": name})

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def columns(self, name: str) -> tuple[str, ...]:
        return self._schema(name).columns

    # -- DML ------------------------------------------------------------
    def scan(
        self,
        name: str,
        predicate: Predicate | None = None,
        conditions: Sequence[Any] | None = None,
    ) -> list[Row]:
        self._schema(name)
        rows = self._tables[name]
        if predicate is None:
            return [dict(row) for row in rows]
        return [dict(row) for row in rows if predicate(row)]

    def insert(self, name: str, row: Row) -> None:
        schema = self._schema(name)
        schema.validate_row(row)
        check_scalar_values(row, self.name)
        # schema column order, so the journaled row round-trips with
        # the same items() order every other backend reports
        self._append({"op": "insert", "table": name,
                      "row": {c: row[c] for c in schema.columns}})

    def update(
        self,
        name: str,
        predicate: Predicate,
        changes: Row,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        schema = self._schema(name)
        validate_update_columns(schema.columns, changes)
        check_scalar_values(changes, self.name)
        positions = [
            position for position, row in enumerate(self._tables[name])
            if predicate(row)
        ]
        if positions:
            self._append({"op": "update", "table": name,
                          "changes": dict(changes), "positions": positions})
        return len(positions)

    def delete(
        self,
        name: str,
        predicate: Predicate,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        self._schema(name)
        positions = [
            position for position, row in enumerate(self._tables[name])
            if predicate(row)
        ]
        if positions:
            self._append({"op": "delete", "table": name,
                          "positions": positions})
        return len(positions)

    # -- Snapshots ------------------------------------------------------
    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        return {
            name: tuple(dict(row) for row in self._tables[name])
            for name in self.table_names()
        }

    def close(self) -> None:
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
