"""The in-memory backend: the original ``TableStore`` behind the
:class:`~repro.dbms.backends.base.StorageBackend` interface.

This is the reference implementation — the oracle the differential
suite pins the other engines to — and the default backend of
:class:`~repro.dbms.engine.GuardedDatabase`.  It declares no optional
capabilities: pushdown hints are ignored (a Python list scan *is* the
fastest plan it has) and nothing persists beyond the process.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable, Sequence

from ..tables import Predicate, Row, Table, TableStore
from .base import Capability, StorageBackend


class MemoryBackend(StorageBackend):
    """Adapter from :class:`~repro.dbms.tables.TableStore` to the
    backend contract.  The underlying :class:`Table` objects remain
    reachable via :meth:`table` for callers that predate the interface
    (tests, benchmarks poking at raw storage)."""

    name = "memory"
    capabilities = Capability.NONE

    __slots__ = ("_store",)

    def __init__(self):
        self._store = TableStore()

    # -- DDL ------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        return self._store.create_table(name, columns)

    def drop_table(self, name: str) -> None:
        self._store.drop_table(name)

    def table_names(self) -> list[str]:
        return self._store.table_names()

    def columns(self, name: str) -> tuple[str, ...]:
        return self._store.table(name).schema.columns

    def table(self, name: str) -> Table:
        """The live :class:`Table` object (in-memory only; not part of
        the backend contract)."""
        return self._store.table(name)

    # -- DML ------------------------------------------------------------
    def scan(
        self,
        name: str,
        predicate: Predicate | None = None,
        conditions: Sequence[Any] | None = None,
    ) -> list[Row]:
        return self._store.table(name).select(predicate)

    def insert(self, name: str, row: Row) -> None:
        self._store.table(name).insert(row)

    def update(
        self,
        name: str,
        predicate: Predicate,
        changes: Row,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        return self._store.table(name).update(predicate, changes)

    def delete(
        self,
        name: str,
        predicate: Predicate,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        return self._store.table(name).delete(predicate)

    # -- Snapshots ------------------------------------------------------
    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        # deep copies: memory is the one backend that accepts non-scalar
        # values, and the contract says mutations never show through a
        # snapshot — not even via a caller-held alias to a nested value
        return {
            name: tuple(copy.deepcopy(row) for row in self._store.table(name))
            for name in self.table_names()
        }
