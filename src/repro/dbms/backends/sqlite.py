"""A ``sqlite3``-backed storage engine with predicate pushdown.

Rows live in a SQLite database (in-memory by default, a file when a
path is given), columns are declared without type affinity so Python
``str`` / ``int`` / ``float`` values round-trip unchanged, and scans
are ordered by ``rowid`` — which equals insertion order and survives
updates, matching the in-memory oracle's ordering contract.

Pushdown: when the engine hands down structured conditions (see
:mod:`repro.dbms.backends.base`), this backend compiles them into a
parameterized ``WHERE`` clause instead of filtering Python-side.  Two
compilation details keep the results *identical* to the in-memory
semantics (``Comparison.matches``: cross-type ordering comparisons are
False, ``!=`` follows Python inequality):

* ordering operators are wrapped in a ``typeof`` guard, because SQLite
  otherwise orders values by storage class (every INTEGER sorts below
  every TEXT) where Python raises ``TypeError`` — which the oracle maps
  to "no match";
* ``!=`` is compiled as ``(col IS NULL OR col <> ?)``, because SQL
  three-valued logic drops NULL rows that Python's ``None != literal``
  keeps.

If *any* condition cannot be compiled (unknown column, unsupported
operator or literal), the whole statement falls back to the Python
predicate; ``pushed_statements`` / ``fallback_statements`` expose the
split to tests and benchmarks.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Sequence

from ...errors import TableError
from ..tables import Predicate, Row, Schema
from .base import (
    Capability,
    StorageBackend,
    check_identifier,
    check_scalar_values,
    pushable,
    validate_update_columns,
)


class SqliteBackend(StorageBackend):
    """SQLite storage behind the guarded engine.

    ``path`` defaults to ``":memory:"``; pass a filename to persist.
    Re-opening an existing file recovers the schemas from
    ``sqlite_master``, so a guarded database can be rebuilt over
    yesterday's rows (the policy and audit trail are engine state and
    are *not* stored here — storage never owns authorization).
    """

    name = "sqlite"
    capabilities = Capability.PREDICATE_PUSHDOWN | Capability.PERSISTENT

    __slots__ = ("path", "pushed_statements", "fallback_statements",
                 "_connection", "_schemas")

    def __init__(self, path: str = ":memory:"):
        self.path = str(path)
        self.pushed_statements = 0
        self.fallback_statements = 0
        self._connection = sqlite3.connect(self.path, isolation_level=None)
        self._schemas: dict[str, Schema] = {}
        self._recover_schemas()

    def _recover_schemas(self) -> None:
        rows = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall()
        for (table_name,) in rows:
            info = self._connection.execute(
                f'PRAGMA table_info("{check_identifier(table_name)}")'
            ).fetchall()
            columns = tuple(column[1] for column in sorted(info))
            self._schemas[table_name] = Schema(columns)

    def _schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise TableError(f"no such table {name!r}") from None

    # -- DDL ------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[str]) -> None:
        if name in self._schemas:
            raise TableError(f"table {name!r} already exists")
        schema = Schema(tuple(columns))
        check_identifier(name, "table name")
        column_list = ", ".join(
            f'"{check_identifier(column, "column name")}"'
            for column in schema.columns
        )
        self._connection.execute(f'CREATE TABLE "{name}" ({column_list})')
        self._schemas[name] = schema

    def drop_table(self, name: str) -> None:
        self._schema(name)
        self._connection.execute(f'DROP TABLE "{name}"')
        del self._schemas[name]

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def columns(self, name: str) -> tuple[str, ...]:
        return self._schema(name).columns

    # -- Pushdown compilation -------------------------------------------
    def _compile(
        self, schema: Schema, conditions: Sequence[Any]
    ) -> tuple[str, list] | None:
        """``(where_sql, params)`` for the whole condition list, or
        None when any condition forces the predicate fallback."""
        if not pushable(conditions, schema.columns):
            return None
        clauses: list[str] = []
        params: list = []
        for condition in conditions:
            quoted = f'"{condition.column}"'
            operator = condition.operator
            if operator == "=":
                clauses.append(f"{quoted} = ?")
            elif operator == "!=":
                clauses.append(f"({quoted} IS NULL OR {quoted} <> ?)")
            elif isinstance(condition.literal, str):
                clauses.append(
                    f"(typeof({quoted}) = 'text' AND {quoted} {operator} ?)"
                )
            else:
                clauses.append(
                    f"(typeof({quoted}) IN ('integer', 'real') "
                    f"AND {quoted} {operator} ?)"
                )
            params.append(condition.literal)
        return " AND ".join(clauses), params

    # -- DML ------------------------------------------------------------
    def _rows(self, name: str, where: str = "", params: Sequence = ()) -> list[Row]:
        schema = self._schema(name)
        column_list = ", ".join(f'"{c}"' for c in schema.columns)
        sql = f'SELECT {column_list} FROM "{name}"'
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY rowid"
        cursor = self._connection.execute(sql, tuple(params))
        return [dict(zip(schema.columns, values)) for values in cursor]

    def _matching_rowids(self, name: str, predicate: Predicate) -> list[int]:
        schema = self._schema(name)
        column_list = ", ".join(f'"{c}"' for c in schema.columns)
        cursor = self._connection.execute(
            f'SELECT rowid, {column_list} FROM "{name}" ORDER BY rowid'
        )
        return [
            values[0]
            for values in cursor
            if predicate(dict(zip(schema.columns, values[1:])))
        ]

    def scan(
        self,
        name: str,
        predicate: Predicate | None = None,
        conditions: Sequence[Any] | None = None,
    ) -> list[Row]:
        schema = self._schema(name)
        if conditions is not None:
            compiled = self._compile(schema, conditions)
            if compiled is not None:
                self.pushed_statements += 1
                return self._rows(name, *compiled)
            self.fallback_statements += 1
        rows = self._rows(name)
        if predicate is None:
            return rows
        return [row for row in rows if predicate(row)]

    def insert(self, name: str, row: Row) -> None:
        schema = self._schema(name)
        schema.validate_row(row)
        check_scalar_values(row, self.name)
        column_list = ", ".join(f'"{c}"' for c in schema.columns)
        placeholders = ", ".join("?" for _ in schema.columns)
        self._connection.execute(
            f'INSERT INTO "{name}" ({column_list}) VALUES ({placeholders})',
            tuple(row[column] for column in schema.columns),
        )

    def update(
        self,
        name: str,
        predicate: Predicate,
        changes: Row,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        schema = self._schema(name)
        validate_update_columns(schema.columns, changes)
        check_scalar_values(changes, self.name)
        if not changes:
            return len(self.scan(name, predicate, conditions))
        assignments = ", ".join(f'"{column}" = ?' for column in changes)
        values = list(changes.values())
        if conditions is not None:
            compiled = self._compile(schema, conditions)
            if compiled is not None:
                where, params = compiled
                self.pushed_statements += 1
                where_clause = f" WHERE {where}" if where else ""
                cursor = self._connection.execute(
                    f'UPDATE "{name}" SET {assignments}{where_clause}',
                    (*values, *params),
                )
                return cursor.rowcount
            self.fallback_statements += 1
        rowids = self._matching_rowids(name, predicate)
        if rowids:
            placeholders = ", ".join("?" for _ in rowids)
            self._connection.execute(
                f'UPDATE "{name}" SET {assignments} '
                f"WHERE rowid IN ({placeholders})",
                (*values, *rowids),
            )
        return len(rowids)

    def delete(
        self,
        name: str,
        predicate: Predicate,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        schema = self._schema(name)
        if conditions is not None:
            compiled = self._compile(schema, conditions)
            if compiled is not None:
                where, params = compiled
                self.pushed_statements += 1
                where_clause = f" WHERE {where}" if where else ""
                cursor = self._connection.execute(
                    f'DELETE FROM "{name}"{where_clause}', tuple(params)
                )
                return cursor.rowcount
            self.fallback_statements += 1
        rowids = self._matching_rowids(name, predicate)
        if rowids:
            placeholders = ", ".join("?" for _ in rowids)
            self._connection.execute(
                f'DELETE FROM "{name}" WHERE rowid IN ({placeholders})',
                tuple(rowids),
            )
        return len(rowids)

    # -- Snapshots ------------------------------------------------------
    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        return {name: tuple(self._rows(name)) for name in self.table_names()}

    def count(self, name: str) -> int:
        self._schema(name)
        (total,) = self._connection.execute(
            f'SELECT COUNT(*) FROM "{name}"'
        ).fetchone()
        return total

    def close(self) -> None:
        self._connection.close()
