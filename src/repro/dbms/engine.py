"""The RBAC-guarded database engine.

The paper's Example 1: "the system ``dbms`` uses the RBAC policy
depicted in Figure 1" to decide who may see or change the health
records.  :class:`GuardedDatabase` wires the pieces together:

* a :class:`~repro.dbms.backends.StorageBackend` holds the data — the
  in-memory oracle, ``sqlite3``, or an append-only KV log, selected by
  name or instance (see :mod:`repro.dbms.backends`);
* a :class:`~repro.core.monitor.ReferenceMonitor` holds the policy and
  the sessions;
* every read/write/print goes through ``check_access`` with the
  actions of the paper (``read``, ``write``, ``print``) and lands in
  the :class:`~repro.dbms.audit.AuditLog` — **before** any backend
  method runs, so no storage engine can bypass the monitor or dodge
  the trail;
* administrative commands are forwarded to the monitor (strict or
  refined mode) and audited.

The engine raises :class:`~repro.errors.AccessDenied` on denied
queries, after recording the denial — a denied access is an expected
runtime event, not a silent no-op (unlike Definition 5's treatment of
administrative commands, which the monitor handles).

Backends that declare
:attr:`~repro.dbms.backends.Capability.PREDICATE_PUSHDOWN` receive the
SQL layer's structured conditions alongside the Python predicate and
may evaluate them natively; the access decision is identical either
way because it is made here, on the *table*, before the plan is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.commands import Command, ExecutionRecord, Mode
from ..core.entities import User
from ..core.monitor import ReferenceMonitor
from ..core.policy import Policy
from ..core.sessions import Session
from ..errors import AccessDenied
from .audit import AuditLog
from .backends import Row, StorageBackend, create_backend

Predicate = Callable[[Row], bool]


@dataclass
class GuardedDatabase:
    """A DBMS whose every access is mediated by RBAC, over any
    :class:`~repro.dbms.backends.StorageBackend`."""

    monitor: ReferenceMonitor
    store: StorageBackend
    audit: AuditLog

    @classmethod
    def create(
        cls,
        policy: Policy,
        mode: Mode = Mode.STRICT,
        backend: str | StorageBackend = "memory",
        **backend_options,
    ) -> "GuardedDatabase":
        """Build a guarded database over ``backend`` (a registry name
        such as ``"memory"`` / ``"sqlite"`` / ``"kvlog"``, or a
        ready-made :class:`StorageBackend`); ``backend_options`` go to
        the engine's constructor (e.g. ``path=...``)."""
        return cls(
            monitor=ReferenceMonitor(policy, mode=mode),
            store=create_backend(backend, **backend_options),
            audit=AuditLog(),
        )

    # ------------------------------------------------------------------
    # Sessions (thin pass-through with auditing)
    # ------------------------------------------------------------------
    def login(self, user: User, *activate_roles) -> Session:
        session = self.monitor.create_session(user)
        for role in activate_roles:
            self.monitor.add_active_role(session, role)
        self.audit.record(
            "session",
            user.name,
            "login "
            + (", ".join(str(r) for r in activate_roles) or "(no roles)"),
            True,
        )
        return session

    def logout(self, session: Session) -> None:
        self.audit.record("session", session.user.name, "logout", True)
        self.monitor.delete_session(session)

    # ------------------------------------------------------------------
    # Guarded queries
    # ------------------------------------------------------------------
    def _guard(self, session: Session, action: str, table: str) -> None:
        allowed = self.monitor.check_access(session, action, table)
        self.audit.record("query", session.user.name, f"{action} {table}", allowed)
        if not allowed:
            raise AccessDenied(session.user.name, f"{action} on {table}")

    def select(
        self,
        session: Session,
        table: str,
        predicate: Predicate | None = None,
        conditions: Sequence[Any] | None = None,
    ) -> list[Row]:
        """Read rows — requires the ``(read, table)`` privilege.

        ``conditions`` is the optional structured form of the predicate
        for pushdown-capable backends (built by the SQL layer; see
        :mod:`repro.dbms.backends.base`)."""
        self._guard(session, "read", table)
        return self.store.scan(table, predicate, conditions)

    def insert(self, session: Session, table: str, row: Row) -> None:
        """Insert a row — requires ``(write, table)``."""
        self._guard(session, "write", table)
        self.store.insert(table, row)

    def update(
        self,
        session: Session,
        table: str,
        predicate: Predicate,
        changes: Row,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        """Update rows — requires ``(write, table)``."""
        self._guard(session, "write", table)
        return self.store.update(table, predicate, changes, conditions)

    def delete(
        self,
        session: Session,
        table: str,
        predicate: Predicate,
        conditions: Sequence[Any] | None = None,
    ) -> int:
        """Delete rows — requires ``(write, table)``."""
        self._guard(session, "write", table)
        return self.store.delete(table, predicate, conditions)

    def print_document(self, session: Session, printer: str, text: str) -> str:
        """Print — requires ``(print, printer)`` (the paper's
        ``(prnt, black)`` / ``(prnt, colorA4)`` privileges)."""
        allowed = self.monitor.check_access(session, "print", printer)
        self.audit.record(
            "query", session.user.name, f"print {printer}", allowed
        )
        if not allowed:
            raise AccessDenied(session.user.name, f"print on {printer}")
        return f"[{printer}] {text}"

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------
    def administer(self, command: Command) -> ExecutionRecord:
        """Submit an administrative command through the monitor."""
        record = self.monitor.submit(command)
        detail = ""
        if record.executed and record.implicit:
            detail = f"implicitly authorized by {record.authorized_by}"
        self.audit.record(
            "admin",
            command.user.name,
            str(command),
            record.executed,
            detail,
        )
        return record

    def close(self) -> None:
        """Release the backend's external resources (if any)."""
        self.store.close()


def hospital_database(
    mode: Mode = Mode.STRICT,
    backend: str | StorageBackend = "memory",
    **backend_options,
) -> GuardedDatabase:
    """The paper's hospital DBMS: Figure 2's policy guarding EHR tables
    t1–t3, pre-loaded with a few synthetic records, over any backend."""
    from ..papercases import figures

    database = GuardedDatabase.create(
        figures.figure2(), mode=mode, backend=backend, **backend_options
    )
    store = database.store
    if "t1" not in store:  # a persistent backend may already hold the data
        store.create_table("t1", ["patient", "ward", "status"])
        store.create_table("t2", ["patient", "medication", "dose"])
        store.create_table("t3", ["patient", "note", "author"])
        store.insert("t1", {"patient": "p-001", "ward": "cardiology",
                            "status": "stable"})
        store.insert("t1", {"patient": "p-002", "ward": "oncology",
                            "status": "critical"})
        store.insert("t2", {"patient": "p-001", "medication": "aspirin",
                            "dose": "75mg"})
        store.insert("t2", {"patient": "p-002", "medication": "cisplatin",
                            "dose": "20mg"})
        store.insert("t3", {"patient": "p-001", "note": "admitted",
                            "author": "diana"})
    return database
