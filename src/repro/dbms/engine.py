"""The RBAC-guarded database engine.

The paper's Example 1: "the system ``dbms`` uses the RBAC policy
depicted in Figure 1" to decide who may see or change the health
records.  :class:`GuardedDatabase` wires the pieces together:

* a :class:`~repro.dbms.tables.TableStore` holds the data;
* a :class:`~repro.core.monitor.ReferenceMonitor` holds the policy and
  the sessions;
* every read/write/print goes through ``check_access`` with the
  actions of the paper (``read``, ``write``, ``print``);
* administrative commands are forwarded to the monitor (strict or
  refined mode) and audited.

The engine raises :class:`~repro.errors.AccessDenied` on denied
queries, after recording the denial — a denied access is an expected
runtime event, not a silent no-op (unlike Definition 5's treatment of
administrative commands, which the monitor handles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.commands import Command, ExecutionRecord, Mode
from ..core.entities import User
from ..core.monitor import ReferenceMonitor
from ..core.policy import Policy
from ..core.sessions import Session
from ..errors import AccessDenied
from .audit import AuditLog
from .tables import Row, TableStore

Predicate = Callable[[Row], bool]


@dataclass
class GuardedDatabase:
    """An in-memory DBMS whose every access is mediated by RBAC."""

    monitor: ReferenceMonitor
    store: TableStore
    audit: AuditLog

    @classmethod
    def create(cls, policy: Policy, mode: Mode = Mode.STRICT) -> "GuardedDatabase":
        return cls(
            monitor=ReferenceMonitor(policy, mode=mode),
            store=TableStore(),
            audit=AuditLog(),
        )

    # ------------------------------------------------------------------
    # Sessions (thin pass-through with auditing)
    # ------------------------------------------------------------------
    def login(self, user: User, *activate_roles) -> Session:
        session = self.monitor.create_session(user)
        for role in activate_roles:
            self.monitor.add_active_role(session, role)
        self.audit.record(
            "session",
            user.name,
            "login "
            + (", ".join(str(r) for r in activate_roles) or "(no roles)"),
            True,
        )
        return session

    def logout(self, session: Session) -> None:
        self.audit.record("session", session.user.name, "logout", True)
        self.monitor.delete_session(session)

    # ------------------------------------------------------------------
    # Guarded queries
    # ------------------------------------------------------------------
    def _guard(self, session: Session, action: str, table: str) -> None:
        allowed = self.monitor.check_access(session, action, table)
        self.audit.record("query", session.user.name, f"{action} {table}", allowed)
        if not allowed:
            raise AccessDenied(session.user.name, f"{action} on {table}")

    def select(
        self, session: Session, table: str, predicate: Predicate | None = None
    ) -> list[Row]:
        """Read rows — requires the ``(read, table)`` privilege."""
        self._guard(session, "read", table)
        return self.store.table(table).select(predicate)

    def insert(self, session: Session, table: str, row: Row) -> None:
        """Insert a row — requires ``(write, table)``."""
        self._guard(session, "write", table)
        self.store.table(table).insert(row)

    def update(
        self, session: Session, table: str, predicate: Predicate, changes: Row
    ) -> int:
        """Update rows — requires ``(write, table)``."""
        self._guard(session, "write", table)
        return self.store.table(table).update(predicate, changes)

    def delete(self, session: Session, table: str, predicate: Predicate) -> int:
        """Delete rows — requires ``(write, table)``."""
        self._guard(session, "write", table)
        return self.store.table(table).delete(predicate)

    def print_document(self, session: Session, printer: str, text: str) -> str:
        """Print — requires ``(print, printer)`` (the paper's
        ``(prnt, black)`` / ``(prnt, colorA4)`` privileges)."""
        allowed = self.monitor.check_access(session, "print", printer)
        self.audit.record(
            "query", session.user.name, f"print {printer}", allowed
        )
        if not allowed:
            raise AccessDenied(session.user.name, f"print on {printer}")
        return f"[{printer}] {text}"

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------
    def administer(self, command: Command) -> ExecutionRecord:
        """Submit an administrative command through the monitor."""
        record = self.monitor.submit(command)
        detail = ""
        if record.executed and record.implicit:
            detail = f"implicitly authorized by {record.authorized_by}"
        self.audit.record(
            "admin",
            command.user.name,
            str(command),
            record.executed,
            detail,
        )
        return record


def hospital_database(mode: Mode = Mode.STRICT) -> GuardedDatabase:
    """The paper's hospital DBMS: Figure 2's policy guarding EHR tables
    t1–t3, pre-loaded with a few synthetic records."""
    from ..papercases import figures

    database = GuardedDatabase.create(figures.figure2(), mode=mode)
    t1 = database.store.create_table("t1", ["patient", "ward", "status"])
    t2 = database.store.create_table("t2", ["patient", "medication", "dose"])
    t3 = database.store.create_table("t3", ["patient", "note", "author"])
    t1.insert({"patient": "p-001", "ward": "cardiology", "status": "stable"})
    t1.insert({"patient": "p-002", "ward": "oncology", "status": "critical"})
    t2.insert({"patient": "p-001", "medication": "aspirin", "dose": "75mg"})
    t2.insert({"patient": "p-002", "medication": "cisplatin", "dose": "20mg"})
    t3.insert({"patient": "p-001", "note": "admitted", "author": "diana"})
    return database
