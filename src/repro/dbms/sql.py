"""A small SQL front-end for the guarded database.

The paper's scenario has hospital personnel querying a DBMS whose
accesses are mediated by the RBAC policy.  This module provides the
query surface a real such system exposes — a compact SQL subset —
executing through :class:`~repro.dbms.engine.GuardedDatabase`, so
every statement is subject to the reference monitor:

* ``SELECT col, ... | * FROM table [WHERE cond [AND cond]...]``
* ``INSERT INTO table (col, ...) VALUES (val, ...)``
* ``UPDATE table SET col = val [, ...] [WHERE ...]``
* ``DELETE FROM table [WHERE ...]``

Conditions are ``column OP literal`` with ``OP`` one of
``= != < <= > >=``; literals are single-quoted strings or numbers.
``SELECT`` requires the ``(read, table)`` privilege; the three
mutating statements require ``(write, table)`` — exactly the actions
of Figure 1.

This is a deliberately small, fully tested subset — no joins, no
subqueries — sufficient for the examples and benchmarks; the point is
the mediation, not the query planner.

The parsed ``WHERE`` conditions are handed down *twice*: compiled into
a Python predicate (the authoritative filter) and passed structurally
as a pushdown hint, so backends declaring
:attr:`~repro.dbms.backends.Capability.PREDICATE_PUSHDOWN` (sqlite)
can evaluate them natively.  Both paths produce identical rows by the
backend contract, and the access check happens before either runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

from ..core.sessions import Session
from ..errors import GrammarError
from .engine import GuardedDatabase
from .tables import Row

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')      # 'quoted string' ('' escapes ')
      | (?P<number>-?\d+(?:\.\d+)?)     # integer or decimal
      | (?P<op><=|>=|!=|=|<|>)          # comparison operators
      | (?P<punct>[(),*])               # punctuation
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)  # keyword / identifier
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "insert", "into", "values",
    "update", "set", "delete",
}

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "op" | "punct" | "word"
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        if sql[position].isspace():
            position += 1
            continue
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None or match.end() == position:
            raise GrammarError(f"bad SQL near {sql[position:position + 10]!r}",
                               position)
        kind = match.lastgroup
        tokens.append(_Token(kind, match.group(kind).strip(), match.start(kind)))
        position = match.end()
    return tokens


@dataclass(frozen=True)
class Comparison:
    """One ``column OP literal`` condition."""

    column: str
    operator: str
    literal: Any

    def matches(self, row: Row) -> bool:
        value = row.get(self.column)
        try:
            return _OPERATORS[self.operator](value, self.literal)
        except TypeError:
            return False  # e.g. comparing str with int: no match


@dataclass(frozen=True)
class SelectStatement:
    table: str
    columns: tuple[str, ...] | None  # None means *
    conditions: tuple[Comparison, ...]


@dataclass(frozen=True)
class InsertStatement:
    table: str
    row: tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    changes: tuple[tuple[str, Any], ...]
    conditions: tuple[Comparison, ...]


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    conditions: tuple[Comparison, ...]


Statement = SelectStatement | InsertStatement | UpdateStatement | DeleteStatement


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._cursor = 0

    def _peek(self) -> _Token | None:
        if self._cursor < len(self._tokens):
            return self._tokens[self._cursor]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise GrammarError(f"unexpected end of SQL in {self._sql!r}")
        self._cursor += 1
        return token

    def _expect_word(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "word" or token.text.lower() != keyword:
            raise GrammarError(
                f"expected {keyword.upper()!r}, found {token.text!r}",
                token.position,
            )

    def _expect_punct(self, text: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != text:
            raise GrammarError(
                f"expected {text!r}, found {token.text!r}", token.position
            )

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word" or token.text.lower() in _KEYWORDS:
            raise GrammarError(
                f"expected an identifier, found {token.text!r}", token.position
            )
        return token.text

    def _literal(self) -> Any:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        raise GrammarError(f"expected a literal, found {token.text!r}",
                           token.position)

    def _conditions(self) -> tuple[Comparison, ...]:
        token = self._peek()
        if token is None:
            return ()
        if not (token.kind == "word" and token.text.lower() == "where"):
            raise GrammarError(
                f"unexpected trailing input {token.text!r}", token.position
            )
        self._next()
        conditions = [self._comparison()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "word" and token.text.lower() == "and":
                self._next()
                conditions.append(self._comparison())
            else:
                raise GrammarError(
                    f"unexpected trailing input {token.text!r}", token.position
                )
        return tuple(conditions)

    def _comparison(self) -> Comparison:
        column = self._identifier()
        operator = self._next()
        if operator.kind != "op":
            raise GrammarError(
                f"expected a comparison operator, found {operator.text!r}",
                operator.position,
            )
        return Comparison(column, operator.text, self._literal())

    # ------------------------------------------------------------------
    def parse(self) -> Statement:
        head = self._next()
        if head.kind != "word":
            raise GrammarError(f"expected a statement, found {head.text!r}",
                               head.position)
        keyword = head.text.lower()
        if keyword == "select":
            return self._select()
        if keyword == "insert":
            return self._insert()
        if keyword == "update":
            return self._update()
        if keyword == "delete":
            return self._delete()
        raise GrammarError(f"unknown statement {head.text!r}", head.position)

    def _select(self) -> SelectStatement:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "*":
            self._next()
            columns = None
        else:
            columns = [self._identifier()]
            while (tok := self._peek()) is not None and tok.text == ",":
                self._next()
                columns.append(self._identifier())
            columns = tuple(columns)
        self._expect_word("from")
        table = self._identifier()
        return SelectStatement(table, columns, self._conditions())

    def _insert(self) -> InsertStatement:
        self._expect_word("into")
        table = self._identifier()
        self._expect_punct("(")
        columns = [self._identifier()]
        while (tok := self._peek()) is not None and tok.text == ",":
            self._next()
            columns.append(self._identifier())
        self._expect_punct(")")
        self._expect_word("values")
        self._expect_punct("(")
        values = [self._literal()]
        while (tok := self._peek()) is not None and tok.text == ",":
            self._next()
            values.append(self._literal())
        self._expect_punct(")")
        if (tok := self._peek()) is not None:
            raise GrammarError(f"unexpected trailing input {tok.text!r}",
                               tok.position)
        if len(columns) != len(values):
            raise GrammarError(
                f"{len(columns)} columns but {len(values)} values"
            )
        return InsertStatement(table, tuple(zip(columns, values)))

    def _update(self) -> UpdateStatement:
        table = self._identifier()
        self._expect_word("set")
        changes = [self._assignment()]
        while (tok := self._peek()) is not None and tok.text == ",":
            self._next()
            changes.append(self._assignment())
        return UpdateStatement(table, tuple(changes), self._conditions())

    def _assignment(self) -> tuple[str, Any]:
        column = self._identifier()
        token = self._next()
        if token.kind != "op" or token.text != "=":
            raise GrammarError(f"expected '=', found {token.text!r}",
                               token.position)
        return (column, self._literal())

    def _delete(self) -> DeleteStatement:
        self._expect_word("from")
        table = self._identifier()
        return DeleteStatement(table, self._conditions())


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement; raises GrammarError on syntax errors."""
    return _Parser(sql).parse()


@dataclass(frozen=True)
class QueryResult:
    """Rows for SELECT; affected-row count for the mutating statements."""

    rows: tuple[Row, ...] = ()
    affected: int = 0


def _predicate(conditions: tuple[Comparison, ...]) -> Callable[[Row], bool]:
    if not conditions:
        return lambda row: True
    return lambda row: all(cond.matches(row) for cond in conditions)


def execute_sql(
    database: GuardedDatabase, session: Session, sql: str
) -> QueryResult:
    """Parse and execute one statement through the guarded engine.

    Raises :class:`~repro.errors.GrammarError` on syntax errors,
    :class:`~repro.errors.AccessDenied` when the monitor denies the
    access, and :class:`~repro.errors.TableError` on schema mismatches.
    """
    statement = parse_sql(sql)
    if isinstance(statement, SelectStatement):
        rows = database.select(
            session,
            statement.table,
            _predicate(statement.conditions),
            conditions=statement.conditions,
        )
        if statement.columns is not None:
            wanted = statement.columns
            missing = set(wanted) - set(database.store.columns(statement.table))
            if missing:
                raise GrammarError(f"unknown columns {sorted(missing)}")
            rows = [{column: row[column] for column in wanted} for row in rows]
        return QueryResult(rows=tuple(rows))
    if isinstance(statement, InsertStatement):
        database.insert(session, statement.table, dict(statement.row))
        return QueryResult(affected=1)
    if isinstance(statement, UpdateStatement):
        touched = database.update(
            session,
            statement.table,
            _predicate(statement.conditions),
            dict(statement.changes),
            conditions=statement.conditions,
        )
        return QueryResult(affected=touched)
    removed = database.delete(
        session,
        statement.table,
        _predicate(statement.conditions),
        conditions=statement.conditions,
    )
    return QueryResult(affected=removed)
