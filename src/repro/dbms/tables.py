"""A tiny in-memory table store.

The paper's running scenario is a hospital DBMS (``dbms``) holding
electronic health records in tables ``t1``, ``t2``, ``t3``; the RBAC
policy mediates who may read or write them.  This module provides the
storage half: schemas, rows, and simple predicate queries.  The
RBAC-guarded access path lives in :mod:`repro.dbms.engine`, and these
tables are the substrate of the default (oracle) storage engine,
:class:`repro.dbms.backends.MemoryBackend` — the semantics implemented
here (insertion-ordered scans, ``TableError`` behaviour) define the
contract every other backend is differentially tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..errors import TableError

Row = dict[str, Any]
Predicate = Callable[[Row], bool]


@dataclass(frozen=True)
class Schema:
    """Column names of a table, order-preserving."""

    columns: tuple[str, ...]

    def __post_init__(self):
        if not self.columns:
            raise TableError("a schema needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise TableError(f"duplicate columns in schema {self.columns!r}")

    def validate_row(self, row: Row) -> None:
        missing = set(self.columns) - set(row)
        extra = set(row) - set(self.columns)
        if missing:
            raise TableError(f"row missing columns {sorted(missing)}")
        if extra:
            raise TableError(f"row has unknown columns {sorted(extra)}")


class Table:
    """One table: a schema and a list of rows."""

    __slots__ = ("name", "schema", "_rows")

    def __init__(self, name: str, columns: Iterable[str]):
        self.name = name
        self.schema = Schema(tuple(columns))
        self._rows: list[Row] = []

    def insert(self, row: Row) -> None:
        self.schema.validate_row(row)
        # Normalize column order to the schema so a row's items() are
        # identical however the caller ordered the keys — the backend
        # contract compares rows across engines entry-for-entry.
        self._rows.append({column: row[column] for column in self.schema.columns})

    def select(self, predicate: Predicate | None = None) -> list[Row]:
        if predicate is None:
            return [dict(row) for row in self._rows]
        return [dict(row) for row in self._rows if predicate(row)]

    def update(self, predicate: Predicate, changes: Row) -> int:
        unknown = set(changes) - set(self.schema.columns)
        if unknown:
            raise TableError(f"update sets unknown columns {sorted(unknown)}")
        touched = 0
        for row in self._rows:
            if predicate(row):
                row.update(changes)
                touched += 1
        return touched

    def delete(self, predicate: Predicate) -> int:
        before = len(self._rows)
        self._rows[:] = [row for row in self._rows if not predicate(row)]
        return before - len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.select())

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={self.schema.columns}, rows={len(self)})"


class TableStore:
    """A named collection of tables (the ``dbms`` of Example 1)."""

    __slots__ = ("_tables",)

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self._tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableError(f"no such table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no such table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
