"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library errors without
catching programming errors (``TypeError`` from misuse is still raised
directly where it indicates a bug in the caller).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EntityError(ReproError):
    """An entity (user, role, action, object) name is malformed."""


class PrivilegeError(ReproError):
    """A privilege term is malformed or used with the wrong sort."""


class PolicyError(ReproError):
    """A policy edge or policy operation violates the model's sorts."""


class GrammarError(ReproError):
    """The textual privilege/policy syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SessionError(ReproError):
    """A session operation was invalid (unknown session, bad activation)."""


class CommandError(ReproError):
    """An administrative command is malformed (not: disallowed).

    Disallowed-but-well-formed commands are *not* errors: per
    Definition 5 of the paper they are consumed as no-ops.
    """


class SerializationError(ReproError):
    """A policy/privilege document could not be (de)serialized."""


class AnalysisError(ReproError):
    """An analysis was configured inconsistently (bad bounds, ranges)."""


class TableError(ReproError):
    """A DBMS table operation failed (unknown table/column, bad row)."""


class AccessDenied(ReproError):
    """The reference monitor denied an access or administrative command.

    Attributes:
        subject: the user (or session owner) that was denied.
        detail: human-readable reason.
    """

    def __init__(self, subject: str, detail: str):
        super().__init__(f"access denied for {subject!r}: {detail}")
        self.subject = subject
        self.detail = detail
