"""Directed-graph substrate for RBAC policies.

Built from scratch (no third-party graph library in the core path):
RBAC policies are small, frequently mutated graphs, and the reference
monitor and ordering decision procedure need cheap, cache-friendly
reachability.
"""

from .digraph import (
    DeltaSummary,
    Digraph,
    GraphDelta,
    JournalCursor,
    Vertex,
    summarize_deltas,
)
from .reachability import (
    ReachabilityCache,
    ancestors,
    ancestors_bits,
    descendants,
    descendants_bits,
    iter_bits,
    lowest_bit,
    pack_bits,
    reachable_from_any,
    reaches,
)
from .closure import (
    condensation,
    dirty_region,
    dirty_region_bits,
    longest_chain_length,
    strongly_connected_components,
    topological_order,
    transitive_closure,
)
from .fingerprint import StateFingerprint
from .dot import digraph_to_dot, policy_to_dot
from .paths import (
    all_simple_paths,
    explain_reachability,
    format_path,
    shortest_path,
)

__all__ = [
    "DeltaSummary",
    "Digraph",
    "GraphDelta",
    "JournalCursor",
    "Vertex",
    "summarize_deltas",
    "ReachabilityCache",
    "ancestors",
    "ancestors_bits",
    "descendants",
    "descendants_bits",
    "iter_bits",
    "lowest_bit",
    "pack_bits",
    "reachable_from_any",
    "reaches",
    "condensation",
    "dirty_region",
    "dirty_region_bits",
    "longest_chain_length",
    "strongly_connected_components",
    "topological_order",
    "transitive_closure",
    "StateFingerprint",
    "digraph_to_dot",
    "policy_to_dot",
    "all_simple_paths",
    "explain_reachability",
    "format_path",
    "shortest_path",
]
