"""Transitive closure, strongly connected components, and chain lengths.

The paper deliberately does *not* assume the role hierarchy is a partial
order (footnote 3, following Li et al.'s critique of the ANSI standard),
so policies may contain cycles.  Analyses that need acyclicity — most
importantly the longest-chain bound of Remark 2 — therefore operate on
the condensation DAG produced by Tarjan's SCC algorithm.
"""

from __future__ import annotations

from typing import Iterable

from .digraph import Digraph, Vertex
from .reachability import _sweep_bits, reachable_from_any


def transitive_closure(graph: Digraph) -> Digraph:
    """A new graph with an edge ``u -> v`` whenever ``v`` is reachable
    from ``u`` by a non-empty path in ``graph``.

    Reflexive edges are only present when the original graph contains a
    cycle through the vertex (matching the usual closure of a relation,
    not its reflexive closure).
    """
    closure = Digraph()
    for vertex in graph.vertices():
        closure.add_vertex(vertex)
    for vertex in graph.vertices():
        # A BFS from each successor keeps u -> u out unless cyclic.
        seen: set[Vertex] = set()
        stack = list(graph.successors(vertex))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.successors(current))
        for reachable in seen:
            closure.add_edge(vertex, reachable)
    return closure


def strongly_connected_components(graph: Digraph) -> list[frozenset[Vertex]]:
    """Tarjan's algorithm, iterative to survive deep hierarchies.

    Components are returned in reverse topological order of the
    condensation (a component appears before any component it can
    reach), which is Tarjan's natural output order.
    """
    index_counter = 0
    index: dict[Vertex, int] = {}
    lowlink: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    components: list[frozenset[Vertex]] = []

    for root in list(graph.vertices()):
        if root in index:
            continue
        # Iterative Tarjan: work items are (vertex, iterator over succs).
        work: list[tuple[Vertex, list[Vertex]]] = [
            (root, list(graph.successors(root)))
        ]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            while successors:
                succ = successors.pop()
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, list(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component: set[Vertex] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                components.append(frozenset(component))
    return components


def condensation(
    graph: Digraph,
) -> tuple[Digraph, dict[Vertex, frozenset[Vertex]]]:
    """Collapse each SCC to a single vertex.

    Returns the condensation DAG (vertices are the frozensets returned
    by :func:`strongly_connected_components`) and a map from original
    vertex to its component.
    """
    components = strongly_connected_components(graph)
    component_of: dict[Vertex, frozenset[Vertex]] = {}
    for component in components:
        for vertex in component:
            component_of[vertex] = component
    dag = Digraph()
    for component in components:
        dag.add_vertex(component)
    for source, target in graph.edges():
        if component_of[source] != component_of[target]:
            dag.add_edge(component_of[source], component_of[target])
    return dag, component_of


def topological_order(dag: Digraph) -> list[Vertex]:
    """Kahn's algorithm; raises ValueError if the graph has a cycle."""
    in_degree = {vertex: dag.in_degree(vertex) for vertex in dag.vertices()}
    ready = [vertex for vertex, degree in in_degree.items() if degree == 0]
    order: list[Vertex] = []
    while ready:
        vertex = ready.pop()
        order.append(vertex)
        for successor in dag.successors(vertex):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != len(in_degree):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def dirty_region(
    graph: Digraph,
    edge_sources: Iterable[Vertex],
    edge_targets: Iterable[Vertex],
) -> tuple[frozenset[Vertex], frozenset[Vertex]]:
    """The vertices whose reachability a batch of edge mutations can
    have changed, computed on the condensation DAG.

    For each mutated edge ``(s, t)`` — added *or* removed — the
    descendant sets that may differ belong exactly to the ancestors of
    ``s``, and the ancestor sets that may differ belong exactly to the
    descendants of ``t``; both are the same before and after the
    mutation, because a simple path ending at ``s`` (or starting at
    ``t``) cannot use the edge ``(s, t)`` itself.  So both regions are
    computable on the *current* graph, which is all an incrementally
    maintained cache has.

    Returns ``(upstream, downstream)``: the union of ancestors of all
    ``edge_sources`` and the union of descendants of all
    ``edge_targets``.  Seeds no longer present in the graph (e.g. a
    garbage-collected privilege vertex) are included as themselves.

    The sweep is reachability on the SCC condensation evaluated
    without materializing it: a multi-source BFS whose seen-set dedup
    visits every member of a strongly connected component exactly once,
    so it touches only the dirty region — reaching into a cycle pulls
    in the whole component, exactly as a BFS over the condensation DAG
    would, but a localized delta never pays for a whole-graph Tarjan
    pass (measured: the eager :func:`condensation` variant made
    incremental maintenance *slower* than full rebuilds on shallow
    1k-user policies).
    """
    upstream = reachable_from_any(graph, edge_sources, graph.predecessors)
    downstream = reachable_from_any(graph, edge_targets)
    return upstream, downstream


def dirty_region_bits(
    graph: Digraph,
    edge_sources: Iterable[Vertex],
    edge_targets: Iterable[Vertex],
) -> tuple[int, int, frozenset, frozenset]:
    """Compiled :func:`dirty_region`: the same sweep expressed as
    bitmasks over the graph's interned vertex IDs, so that consumers
    can test "is this vertex in the region" with one shift and filter
    whole candidate sets with one ``&``.

    Returns ``(upstream_mask, downstream_mask, absent_sources,
    absent_targets)``.  The masks cover the in-graph region members;
    seeds no longer present in the graph (which the frozenset variant
    includes as themselves — e.g. a garbage-collected privilege vertex)
    cannot carry a bit and are returned in the two ``absent`` sets, so
    callers preserve the frozenset semantics exactly by checking
    membership there for vertices without an ID.  Every absent seed
    was necessarily removed within the delta window that produced the
    seeds, so the sets are tiny (usually empty).
    """
    vid = graph._vid
    upstream, up_seeds, absent_sources = 0, [], []
    for vertex in edge_sources:
        index = vid.get(vertex)
        if index is None:
            absent_sources.append(vertex)
        elif not upstream >> index & 1:
            upstream |= 1 << index
            up_seeds.append(index)
    downstream, down_seeds, absent_targets = 0, [], []
    for vertex in edge_targets:
        index = vid.get(vertex)
        if index is None:
            absent_targets.append(vertex)
        elif not downstream >> index & 1:
            downstream |= 1 << index
            down_seeds.append(index)
    upstream = _sweep_bits(graph._pred_bits, upstream, up_seeds)
    downstream = _sweep_bits(graph._succ_bits, downstream, down_seeds)
    return (
        upstream,
        downstream,
        frozenset(absent_sources),
        frozenset(absent_targets),
    )


def longest_chain_length(
    graph: Digraph, restrict_to: Iterable[Vertex] | None = None
) -> int:
    """Length (number of edges) of the longest simple chain.

    Cycles are collapsed first, so the result is the longest path in the
    condensation DAG, counting a whole SCC as one link.  This is the
    bound ``n`` of the paper's Remark 2 ("the length of the longest
    chain in RH") when called with the role-hierarchy subgraph.

    ``restrict_to`` limits the computation to an induced subgraph.
    """
    if restrict_to is not None:
        allowed = set(restrict_to)
        sub = Digraph()
        for vertex in graph.vertices():
            if vertex in allowed:
                sub.add_vertex(vertex)
        for source, target in graph.edges():
            if source in allowed and target in allowed:
                sub.add_edge(source, target)
        graph = sub
    dag, _ = condensation(graph)
    order = topological_order(dag)
    longest: dict[Vertex, int] = {vertex: 0 for vertex in order}
    best = 0
    for vertex in order:
        for successor in dag.successors(vertex):
            candidate = longest[vertex] + 1
            if candidate > longest[successor]:
                longest[successor] = candidate
                if candidate > best:
                    best = candidate
    return best
