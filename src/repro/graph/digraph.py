"""A small directed-graph data structure used as the policy substrate.

The library does not depend on :mod:`networkx` for its core path; RBAC
policies are tiny graphs mutated frequently by the reference monitor,
and the operations we need (edge add/remove, successor iteration,
reachability with caching) are simpler and faster on a purpose-built
adjacency-set representation.

Vertices may be any hashable value.  The graph stores vertices
explicitly so that isolated vertices (e.g. a role with no assignments
yet) are representable.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Hashable, Iterable, Iterator, NamedTuple

Vertex = Hashable


class GraphDelta(NamedTuple):
    """One journaled mutation of a :class:`Digraph`.

    ``kind`` is one of ``"add-edge"``, ``"remove-edge"``,
    ``"add-vertex"``, ``"remove-vertex"``; ``target`` is None for the
    vertex kinds.  ``version`` is the graph version *after* the
    mutation, so replaying all deltas with ``version > v`` transforms
    the graph state at version ``v`` into the current state.
    """

    version: int
    kind: str
    source: Vertex
    target: Vertex | None = None

    @property
    def is_edge(self) -> bool:
        return self.kind in ("add-edge", "remove-edge")


class DeltaSummary(NamedTuple):
    """Classification of a journaled delta burst (:func:`summarize_deltas`)."""

    edge_sources: frozenset
    edge_targets: frozenset
    removed_vertices: frozenset
    #: deltas that can change a reachable set: edge mutations and
    #: vertex removals.  Vertex additions are free (a fresh vertex has
    #: no edges), so they count toward no consumer's fallback
    #: threshold.
    weight: int


def summarize_deltas(deltas: Iterable[GraphDelta]) -> DeltaSummary:
    """Classify a delta burst for dirty-region cache maintenance.

    Every incrementally repaired structure (reachability cache,
    authorization index, rectangle pool, ordering memo) needs the same
    decomposition of a burst: the mutated-edge endpoints to seed
    :func:`repro.graph.dirty_region`, the removed vertices to evict
    directly, and the burst *weight* to compare against its
    full-rebuild threshold.  Centralizing it keeps those consumers
    from drifting on which deltas count.
    """
    edge_sources = set()
    edge_targets = set()
    removed = set()
    weight = 0
    for delta in deltas:
        if delta.is_edge:
            edge_sources.add(delta.source)
            edge_targets.add(delta.target)
            weight += 1
        elif delta.kind == "remove-vertex":
            removed.add(delta.source)
            weight += 1
    return DeltaSummary(
        frozenset(edge_sources),
        frozenset(edge_targets),
        frozenset(removed),
        weight,
    )


class JournalCursor:
    """A per-consumer staleness cursor into a graph's change journal.

    Every incrementally maintained cache used to track its own
    ``version`` integer and call :meth:`Digraph.changes_since`
    directly; that works for a single consumer, but with several
    independent consumers (the shards of a sharded authorization
    index, the shared rectangle pool) the journal has no idea who is
    still behind, and a fixed-size window silently expires under the
    slowest reader.  A cursor makes the consumer visible: the graph
    holds cursors weakly and, when trimming the journal, keeps the
    entries the laggiest registered cursor still needs (up to a hard
    cap — see :attr:`Digraph.JOURNAL_HARD_LIMIT`).

    ``version`` is the graph version this consumer has fully absorbed;
    :meth:`take` returns the pending deltas and advances the cursor.
    """

    __slots__ = ("graph", "version", "__weakref__")

    def __init__(self, graph: "Digraph"):
        self.graph = graph
        self.version = graph.version

    @property
    def pending(self) -> bool:
        """True iff mutations happened since this cursor last caught up."""
        return self.version != self.graph.version

    def take(self) -> tuple[GraphDelta, ...] | None:
        """The deltas since this cursor's version (oldest first), or
        None when the journal no longer reaches back; either way the
        cursor advances to the current version."""
        deltas = self.graph.changes_since(self.version)
        self.version = self.graph.version
        return deltas

    def __repr__(self) -> str:
        return f"JournalCursor(version={self.version}, graph={self.graph!r})"


class Digraph:
    """A mutable directed graph over hashable vertices.

    The graph keeps both successor and predecessor adjacency so that
    ancestor queries (used by the refinement checker) are as cheap as
    descendant queries (used by the reference monitor).

    A monotonically increasing ``version`` counter is bumped on every
    mutation; caches layered on top (see
    :class:`repro.graph.reachability.ReachabilityCache`) use it to
    detect staleness without registering callbacks.

    Mutations are additionally recorded in a bounded *change journal*
    so that those caches can repair themselves incrementally instead of
    discarding everything: :meth:`changes_since` returns the exact
    delta sequence between an old version and the current one, or None
    when the journal no longer reaches back that far (the caller must
    then fall back to a full rebuild).  The journal keeps at most
    ``JOURNAL_LIMIT`` entries; policy-churn bursts larger than that are
    rare and a full rebuild amortizes them.

    Consumers that repair lazily and independently (e.g. the shards of
    a sharded authorization index) register a :class:`JournalCursor`
    via :meth:`journal_cursor`; trimming then preserves the entries the
    slowest live cursor still needs, up to ``JOURNAL_HARD_LIMIT``.
    """

    JOURNAL_LIMIT = 4096
    #: absolute journal cap: even with registered cursors lagging, the
    #: journal never holds more than this many entries (a consumer that
    #: falls further behind simply pays a full rebuild).
    JOURNAL_HARD_LIMIT = 4 * JOURNAL_LIMIT

    __slots__ = ("_succ", "_pred", "_edge_count", "_journal",
                 "_journal_base", "_cursors", "version")

    def __init__(self, edges: Iterable[tuple[Vertex, Vertex]] = ()):
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        self._edge_count = 0
        self.version = 0
        self._journal: deque[GraphDelta] = deque()
        self._journal_base = 0  # deltas with version > base are journaled
        self._cursors: weakref.WeakSet[JournalCursor] = weakref.WeakSet()
        for source, target in edges:
            self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _record(self, kind: str, source: Vertex,
                target: Vertex | None = None) -> None:
        if len(self._journal) >= self.JOURNAL_LIMIT:
            floor = min(
                (cursor.version for cursor in self._cursors),
                default=self.version,
            )
            while len(self._journal) >= self.JOURNAL_LIMIT and (
                self._journal[0].version <= floor
                or len(self._journal) >= self.JOURNAL_HARD_LIMIT
            ):
                self._journal_base = self._journal.popleft().version
        self._journal.append(GraphDelta(self.version, kind, source, target))

    def add_vertex(self, vertex: Vertex) -> bool:
        """Add ``vertex``; return True if it was not already present."""
        if vertex in self._succ:
            return False
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        self.version += 1
        self._record("add-vertex", vertex)
        return True

    def add_edge(self, source: Vertex, target: Vertex) -> bool:
        """Add the edge ``source -> target``; return True if new.

        Both endpoints are added as vertices if missing.
        """
        self.add_vertex(source)
        self.add_vertex(target)
        if target in self._succ[source]:
            return False
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._edge_count += 1
        self.version += 1
        self._record("add-edge", source, target)
        return True

    def remove_edge(self, source: Vertex, target: Vertex) -> bool:
        """Remove the edge ``source -> target``; return True if present."""
        if source not in self._succ or target not in self._succ[source]:
            return False
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._edge_count -= 1
        self.version += 1
        self._record("remove-edge", source, target)
        return True

    def remove_vertex(self, vertex: Vertex) -> bool:
        """Remove ``vertex`` and all incident edges; return True if present."""
        if vertex not in self._succ:
            return False
        for target in list(self._succ[vertex]):
            self.remove_edge(vertex, target)
        for source in list(self._pred[vertex]):
            self.remove_edge(source, vertex)
        del self._succ[vertex]
        del self._pred[vertex]
        self.version += 1
        self._record("remove-vertex", vertex)
        return True

    # ------------------------------------------------------------------
    # Change journal
    # ------------------------------------------------------------------
    def changes_since(self, version: int) -> tuple[GraphDelta, ...] | None:
        """The mutations applied after ``version``, oldest first.

        Returns None when ``version`` predates the journal window (the
        caller cannot reconstruct the diff and must rebuild from
        scratch).  Returns an empty tuple when ``version`` is current.
        """
        if version >= self.version:
            return ()
        if version < self._journal_base:
            return None
        # Versions are monotone along the journal, so walk back from
        # the newest entry — a typical delta burst is a tiny suffix of
        # a journal dominated by construction history.
        collected = []
        for delta in reversed(self._journal):
            if delta.version <= version:
                break
            collected.append(delta)
        collected.reverse()
        return tuple(collected)

    def journal_cursor(self) -> JournalCursor:
        """Register (weakly) and return a new consumer cursor at the
        current version.  While a cursor is alive the journal retains
        the entries it still needs, up to ``JOURNAL_HARD_LIMIT``."""
        cursor = JournalCursor(self)
        self._cursors.add(cursor)
        return cursor

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def has_edge(self, source: Vertex, target: Vertex) -> bool:
        return source in self._succ and target in self._succ[source]

    def successors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Direct successors of ``vertex`` (empty if unknown vertex)."""
        return frozenset(self._succ.get(vertex, ()))

    def predecessors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Direct predecessors of ``vertex`` (empty if unknown vertex)."""
        return frozenset(self._pred.get(vertex, ()))

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def out_degree(self, vertex: Vertex) -> int:
        return len(self._succ.get(vertex, ()))

    def in_degree(self, vertex: Vertex) -> int:
        return len(self._pred.get(vertex, ()))

    def copy(self) -> "Digraph":
        """An independent copy sharing no mutable state."""
        clone = Digraph()
        for vertex in self._succ:
            clone.add_vertex(vertex)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self._succ == other._succ

    def __hash__(self):  # Digraphs are mutable; identity hashing is a trap.
        raise TypeError("Digraph is unhashable; use edge_set() snapshots")

    def edge_set(self) -> frozenset[tuple[Vertex, Vertex]]:
        """An immutable snapshot of the edges, usable as a dict key."""
        return frozenset(self.edges())

    def __repr__(self) -> str:
        return (
            f"Digraph(vertices={len(self)}, edges={self._edge_count})"
        )
