"""A small directed-graph data structure used as the policy substrate.

The library does not depend on :mod:`networkx` for its core path; RBAC
policies are tiny graphs mutated frequently by the reference monitor,
and the operations we need (edge add/remove, successor iteration,
reachability with caching) are simpler and faster on a purpose-built
adjacency-set representation.

Vertices may be any hashable value.  The graph stores vertices
explicitly so that isolated vertices (e.g. a role with no assignments
yet) are representable.
"""

from __future__ import annotations

import weakref
from collections import Counter, deque
from typing import Hashable, Iterable, Iterator, NamedTuple

Vertex = Hashable


class GraphDelta(NamedTuple):
    """One journaled mutation of a :class:`Digraph`.

    ``kind`` is one of ``"add-edge"``, ``"remove-edge"``,
    ``"add-vertex"``, ``"remove-vertex"``; ``target`` is None for the
    vertex kinds.  ``version`` is the graph version *after* the
    mutation, so replaying all deltas with ``version > v`` transforms
    the graph state at version ``v`` into the current state.
    """

    version: int
    kind: str
    source: Vertex
    target: Vertex | None = None

    @property
    def is_edge(self) -> bool:
        return self.kind in ("add-edge", "remove-edge")


class DeltaSummary(NamedTuple):
    """Classification of a journaled delta burst (:func:`summarize_deltas`)."""

    edge_sources: frozenset
    edge_targets: frozenset
    removed_vertices: frozenset
    #: deltas that can change a reachable set: edge mutations and
    #: vertex removals.  Vertex additions are free (a fresh vertex has
    #: no edges), so they count toward no consumer's fallback
    #: threshold.
    weight: int
    #: vertices added within the window (a vertex both added and
    #: removed appears in both sets).  Additions change no reachable
    #: *set*, but the compiled kernel needs them: a rectangle holding
    #: an off-graph endpoint in its extras must migrate it into the
    #: bitmask when the vertex (re)joins the graph and gets an ID.
    added_vertices: frozenset = frozenset()


def summarize_deltas(deltas: Iterable[GraphDelta]) -> DeltaSummary:
    """Classify a delta burst for dirty-region cache maintenance.

    Every incrementally repaired structure (reachability cache,
    authorization index, rectangle pool, ordering memo) needs the same
    decomposition of a burst: the mutated-edge endpoints to seed
    :func:`repro.graph.dirty_region`, the removed vertices to evict
    directly, and the burst *weight* to compare against its
    full-rebuild threshold.  Centralizing it keeps those consumers
    from drifting on which deltas count.
    """
    edge_sources = set()
    edge_targets = set()
    removed = set()
    added = set()
    weight = 0
    for delta in deltas:
        if delta.is_edge:
            edge_sources.add(delta.source)
            edge_targets.add(delta.target)
            weight += 1
        elif delta.kind == "remove-vertex":
            removed.add(delta.source)
            weight += 1
        elif delta.kind == "add-vertex":
            added.add(delta.source)
    return DeltaSummary(
        frozenset(edge_sources),
        frozenset(edge_targets),
        frozenset(removed),
        weight,
        frozenset(added),
    )


def _compact_deltas(deltas: list[GraphDelta]) -> tuple[GraphDelta, ...]:
    """Coalesce add/remove pairs of the same edge out of a delta window.

    Edge mutations of one edge alternate (an edge cannot be added
    twice without a removal in between), so an even occurrence count
    nets to zero — all of that edge's deltas are dropped — and an odd
    count keeps exactly the final occurrence, whose kind is by
    construction the net effect.  Vertex deltas pass through in place.

    Edges incident to a vertex that was itself added or removed in
    the window are **exempt** from coalescing: the compiled kernel's
    ID-recycling safety argument ("a surviving mask containing a
    removed vertex also intersects the journaled edge sources of its
    removal") depends on exactly those deltas, and a vertex removed
    and re-assigned within one window (privilege garbage collection
    followed by a re-grant) would otherwise come back under a
    recycled ID with no delta telling any cache to evict.
    """
    churned = {
        delta.source for delta in deltas if not delta.is_edge
    }
    totals = Counter(
        (delta.source, delta.target)
        for delta in deltas
        if delta.is_edge
        and delta.source not in churned
        and delta.target not in churned
    )
    if not totals or all(count == 1 for count in totals.values()):
        return tuple(deltas)
    seen: Counter = Counter()
    compacted = []
    for delta in deltas:
        if delta.is_edge:
            key = (delta.source, delta.target)
            total = totals.get(key)
            if total is not None:  # exempt edges have no entry
                seen[key] += 1
                if total % 2 == 0 or seen[key] != total:
                    continue
        compacted.append(delta)
    return tuple(compacted)


class JournalCursor:
    """A per-consumer staleness cursor into a graph's change journal.

    Every incrementally maintained cache used to track its own
    ``version`` integer and call :meth:`Digraph.changes_since`
    directly; that works for a single consumer, but with several
    independent consumers (the shards of a sharded authorization
    index, the shared rectangle pool) the journal has no idea who is
    still behind, and a fixed-size window silently expires under the
    slowest reader.  A cursor makes the consumer visible: the graph
    holds cursors weakly and, when trimming the journal, keeps the
    entries the laggiest registered cursor still needs (up to a hard
    cap — see :attr:`Digraph.JOURNAL_HARD_LIMIT`).

    ``version`` is the graph version this consumer has fully absorbed;
    :meth:`take` returns the pending deltas and advances the cursor.
    """

    __slots__ = ("graph", "version", "__weakref__")

    def __init__(self, graph: "Digraph"):
        self.graph = graph
        self.version = graph.version

    @property
    def pending(self) -> bool:
        """True iff mutations happened since this cursor last caught up."""
        return self.version != self.graph.version

    def take(self) -> tuple[GraphDelta, ...] | None:
        """The deltas since this cursor's version (oldest first), or
        None when the journal no longer reaches back; either way the
        cursor advances to the current version."""
        deltas = self.graph.changes_since(self.version)
        self.version = self.graph.version
        return deltas

    def __repr__(self) -> str:
        return f"JournalCursor(version={self.version}, graph={self.graph!r})"


class Digraph:
    """A mutable directed graph over hashable vertices.

    The graph keeps both successor and predecessor adjacency so that
    ancestor queries (used by the refinement checker) are as cheap as
    descendant queries (used by the reference monitor).

    A monotonically increasing ``version`` counter is bumped on every
    mutation; caches layered on top (see
    :class:`repro.graph.reachability.ReachabilityCache`) use it to
    detect staleness without registering callbacks.

    Mutations are additionally recorded in a bounded *change journal*
    so that those caches can repair themselves incrementally instead of
    discarding everything: :meth:`changes_since` returns the exact
    delta sequence between an old version and the current one, or None
    when the journal no longer reaches back that far (the caller must
    then fall back to a full rebuild).  The journal keeps at most
    ``JOURNAL_LIMIT`` entries; policy-churn bursts larger than that are
    rare and a full rebuild amortizes them.

    Consumers that repair lazily and independently (e.g. the shards of
    a sharded authorization index) register a :class:`JournalCursor`
    via :meth:`journal_cursor`; trimming then preserves the entries the
    slowest live cursor still needs, up to ``JOURNAL_HARD_LIMIT``.

    Vertices are additionally *interned*: every vertex gets a stable
    small-integer ID (:meth:`vid` / :meth:`vertex_of`) assigned on
    insertion and recycled through a free-list on removal, and the
    graph maintains per-vertex successor/predecessor *bitmasks* over
    those IDs alongside the adjacency sets.  The bitmasks are what the
    compiled reachability kernel (:func:`repro.graph.descendants_bits`
    and friends) operates on: a BFS step becomes a handful of big-int
    ``|``/``&`` operations instead of per-element set algebra.  An ID
    is only ever reused after its vertex was removed, and every
    journal-driven cache evicts entries that could mention a removed
    vertex before it revalidates, so a recycled ID can never be
    misread by a cache that follows the dirty-region rules (see
    ``docs/ARCHITECTURE.md``, "The compiled bitset kernel").
    """

    JOURNAL_LIMIT = 4096
    #: absolute journal cap: even with registered cursors lagging, the
    #: journal never holds more than this many entries (a consumer that
    #: falls further behind simply pays a full rebuild).
    JOURNAL_HARD_LIMIT = 4 * JOURNAL_LIMIT

    __slots__ = ("_succ", "_pred", "_edge_count", "_journal",
                 "_journal_base", "_cursors", "version",
                 "_vid", "_vertex_of", "_free_vids",
                 "_succ_bits", "_pred_bits")

    def __init__(self, edges: Iterable[tuple[Vertex, Vertex]] = ()):
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        self._edge_count = 0
        self.version = 0
        self._journal: deque[GraphDelta] = deque()
        self._journal_base = 0  # deltas with version > base are journaled
        self._cursors: weakref.WeakSet[JournalCursor] = weakref.WeakSet()
        #: dense vertex interner (read directly by the bitset kernel in
        #: repro.graph.reachability and repro.core — treat as read-only
        #: outside this class).
        self._vid: dict[Vertex, int] = {}
        self._vertex_of: list[Vertex | None] = []
        self._free_vids: list[int] = []
        self._succ_bits: list[int] = []
        self._pred_bits: list[int] = []
        for source, target in edges:
            self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _record(self, kind: str, source: Vertex,
                target: Vertex | None = None) -> None:
        if len(self._journal) >= self.JOURNAL_LIMIT:
            floor = min(
                (cursor.version for cursor in self._cursors),
                default=self.version,
            )
            while len(self._journal) >= self.JOURNAL_LIMIT and (
                self._journal[0].version <= floor
                or len(self._journal) >= self.JOURNAL_HARD_LIMIT
            ):
                self._journal_base = self._journal.popleft().version
        self._journal.append(GraphDelta(self.version, kind, source, target))

    def add_vertex(self, vertex: Vertex) -> bool:
        """Add ``vertex``; return True if it was not already present."""
        if vertex in self._succ:
            return False
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        if self._free_vids:
            index = self._free_vids.pop()
            self._vertex_of[index] = vertex
        else:
            index = len(self._vertex_of)
            self._vertex_of.append(vertex)
            self._succ_bits.append(0)
            self._pred_bits.append(0)
        self._vid[vertex] = index
        self.version += 1
        self._record("add-vertex", vertex)
        return True

    def add_edge(self, source: Vertex, target: Vertex) -> bool:
        """Add the edge ``source -> target``; return True if new.

        Both endpoints are added as vertices if missing.
        """
        self.add_vertex(source)
        self.add_vertex(target)
        if target in self._succ[source]:
            return False
        self._succ[source].add(target)
        self._pred[target].add(source)
        source_id, target_id = self._vid[source], self._vid[target]
        self._succ_bits[source_id] |= 1 << target_id
        self._pred_bits[target_id] |= 1 << source_id
        self._edge_count += 1
        self.version += 1
        self._record("add-edge", source, target)
        return True

    def remove_edge(self, source: Vertex, target: Vertex) -> bool:
        """Remove the edge ``source -> target``; return True if present."""
        if source not in self._succ or target not in self._succ[source]:
            return False
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        source_id, target_id = self._vid[source], self._vid[target]
        self._succ_bits[source_id] &= ~(1 << target_id)
        self._pred_bits[target_id] &= ~(1 << source_id)
        self._edge_count -= 1
        self.version += 1
        self._record("remove-edge", source, target)
        return True

    def remove_vertex(self, vertex: Vertex) -> bool:
        """Remove ``vertex`` and all incident edges; return True if present."""
        if vertex not in self._succ:
            return False
        for target in list(self._succ[vertex]):
            self.remove_edge(vertex, target)
        for source in list(self._pred[vertex]):
            self.remove_edge(source, vertex)
        del self._succ[vertex]
        del self._pred[vertex]
        index = self._vid.pop(vertex)
        self._vertex_of[index] = None
        self._succ_bits[index] = 0  # already zero: all incident edges gone
        self._pred_bits[index] = 0
        self._free_vids.append(index)
        self.version += 1
        self._record("remove-vertex", vertex)
        return True

    def fast_forward_version(self, version: int) -> None:
        """Jump the version counter forward to ``version`` without
        recording a journal delta.

        The recovery seam: a graph rebuilt by deterministic replay
        (``repro.serve.wal``) reaches a *structurally* identical state
        in fewer mutations than the original took (construction order
        is denser than live history), so its counter lags the version
        the WAL recorded.  Fast-forwarding re-aligns the counter so
        version-pinned consumers (snapshots, decision caches, journal
        cursors) compare equal across the crash.  Sound because no
        structural change happens: ``changes_since(v)`` for any ``v``
        in the skipped range correctly reports no deltas.  Rewinding
        is refused — a backwards jump would alias distinct states.
        """
        if version < self.version:
            raise ValueError(
                f"cannot rewind graph version {self.version} to "
                f"{version}: fast-forward is monotone"
            )
        self.version = version

    # ------------------------------------------------------------------
    # Change journal
    # ------------------------------------------------------------------
    def changes_since(
        self, version: int, compact: bool = True
    ) -> tuple[GraphDelta, ...] | None:
        """The mutations applied after ``version``, oldest first.

        Returns None when ``version`` predates the journal window (the
        caller cannot reconstruct the diff and must rebuild from
        scratch).  Returns an empty tuple when ``version`` is current.

        With ``compact=True`` (the default) add/remove pairs of the
        *same edge* inside the window are coalesced away: bursty
        provisioning frequently grants and revokes the same edge
        within one delta window, and replaying both sides only inflates
        every consumer's burst weight and dirty region.  An edge
        mutated an even number of times nets to no change at all and
        is dropped entirely; an odd number of times keeps only the
        last (net-effect) delta in place.  Vertex deltas are never
        coalesced — consumers replay them order-sensitively (a user
        removed and re-added must end up fresh).  Compaction preserves
        the replay semantics: reachability between the window's
        endpoints is a function of the *net* edge difference only.
        """
        if version >= self.version:
            return ()
        if version < self._journal_base:
            return None
        # Versions are monotone along the journal, so walk back from
        # the newest entry — a typical delta burst is a tiny suffix of
        # a journal dominated by construction history.
        collected = []
        for delta in reversed(self._journal):
            if delta.version <= version:
                break
            collected.append(delta)
        collected.reverse()
        if compact:
            return _compact_deltas(collected)
        return tuple(collected)

    def journal_cursor(self) -> JournalCursor:
        """Register (weakly) and return a new consumer cursor at the
        current version.  While a cursor is alive the journal retains
        the entries it still needs, up to ``JOURNAL_HARD_LIMIT``."""
        cursor = JournalCursor(self)
        self._cursors.add(cursor)
        return cursor

    # ------------------------------------------------------------------
    # Vertex interner
    # ------------------------------------------------------------------
    def vid(self, vertex: Vertex) -> int:
        """The interned ID of ``vertex``; raises KeyError if absent.

        IDs are stable for the lifetime of the vertex and recycled via
        a free-list after removal, so masks stay dense under churn.
        """
        return self._vid[vertex]

    def vertex_of(self, vid: int) -> Vertex:
        """The vertex owning interned ID ``vid``; raises LookupError
        for IDs that are out of range or currently on the free-list."""
        vertex = self._vertex_of[vid] if 0 <= vid < len(self._vertex_of) \
            else None
        if vertex is None:
            raise LookupError(f"no vertex interned at id {vid}")
        return vertex

    @property
    def vid_capacity(self) -> int:
        """Number of interner slots ever allocated (live + free-list):
        every live vertex ID is strictly below this bound."""
        return len(self._vertex_of)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def has_edge(self, source: Vertex, target: Vertex) -> bool:
        return source in self._succ and target in self._succ[source]

    def successors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Direct successors of ``vertex`` (empty if unknown vertex)."""
        return frozenset(self._succ.get(vertex, ()))

    def predecessors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Direct predecessors of ``vertex`` (empty if unknown vertex)."""
        return frozenset(self._pred.get(vertex, ()))

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def out_degree(self, vertex: Vertex) -> int:
        return len(self._succ.get(vertex, ()))

    def in_degree(self, vertex: Vertex) -> int:
        return len(self._pred.get(vertex, ()))

    def copy(self) -> "Digraph":
        """An independent copy sharing no mutable state."""
        clone = Digraph()
        for vertex in self._succ:
            clone.add_vertex(vertex)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self._succ == other._succ

    def __hash__(self):  # Digraphs are mutable; identity hashing is a trap.
        raise TypeError("Digraph is unhashable; use edge_set() snapshots")

    def edge_set(self) -> frozenset[tuple[Vertex, Vertex]]:
        """An immutable snapshot of the edges, usable as a dict key."""
        return frozenset(self.edges())

    def __repr__(self) -> str:
        return (
            f"Digraph(vertices={len(self)}, edges={self._edge_count})"
        )
