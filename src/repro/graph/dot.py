"""Graphviz DOT export for digraphs and policies.

The paper's Figures 1-3 are policy drawings; :func:`policy_to_dot`
regenerates them as ``.dot`` documents with the same visual grammar:
users as boxes, roles as ellipses, user privileges as plain text, and
administrative privileges as diamonds.
"""

from __future__ import annotations

from typing import Callable

from .digraph import Digraph, Vertex


def _quote(label: str) -> str:
    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def digraph_to_dot(
    graph: Digraph,
    name: str = "G",
    label_of: Callable[[Vertex], str] = str,
) -> str:
    """Render a plain digraph as a DOT document."""
    lines = [f"digraph {name} {{"]
    ids: dict[Vertex, str] = {}
    for number, vertex in enumerate(sorted(graph.vertices(), key=str)):
        ids[vertex] = f"n{number}"
        lines.append(f"  n{number} [label={_quote(label_of(vertex))}];")
    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"  {ids[source]} -> {ids[target]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def policy_to_dot(policy, name: str = "policy") -> str:
    """Render an RBAC policy in the paper's figure style.

    Accepts a :class:`repro.core.policy.Policy`; imported lazily to keep
    the graph package free of core dependencies.
    """
    from ..core.entities import User, Role
    from ..core.privileges import Privilege, UserPrivilege
    from ..core.grammar import format_privilege

    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    ids: dict[Vertex, str] = {}

    def vertex_id(vertex: Vertex) -> str:
        if vertex not in ids:
            ids[vertex] = f"n{len(ids)}"
        return ids[vertex]

    for vertex in sorted(policy.graph.vertices(), key=str):
        node = vertex_id(vertex)
        if isinstance(vertex, User):
            shape, label = "box", vertex.name
        elif isinstance(vertex, Role):
            shape, label = "ellipse", vertex.name
        elif isinstance(vertex, UserPrivilege):
            shape, label = "plaintext", format_privilege(vertex)
        elif isinstance(vertex, Privilege):
            shape, label = "diamond", format_privilege(vertex)
        else:
            shape, label = "plaintext", str(vertex)
        lines.append(f"  {node} [shape={shape}, label={_quote(label)}];")
    for source, target in sorted(
        policy.graph.edges(), key=lambda e: (str(e[0]), str(e[1]))
    ):
        lines.append(f"  {vertex_id(source)} -> {vertex_id(target)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
