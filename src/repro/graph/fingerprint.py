"""Canonical state fingerprints for state-space exploration.

The bounded analyses (Definition-5 safety runs, administrative
reachability, the HRU encodings) deduplicate explored policy states.
The frozenset representation hashes a full ``edge_set()`` snapshot per
candidate state — O(state) time and allocation on every probe.  The
compiled representation maintained here is a **big-int bitmask**: every
distinct state *atom* (a vertex, an edge, an access-matrix cell) is
assigned one bit on first sight, a state's fingerprint is the OR of its
atoms' bits, and a single mutation updates the fingerprint with one
XOR.  ``seen``-set membership then costs an int hash instead of a
frozenset hash.

Canonicalization and interner ID recycling
------------------------------------------

The slot table is keyed by the atom **values** themselves (entities
hash by name, privilege terms structurally), *not* by the graph's
interned vertex IDs (:meth:`~repro.graph.digraph.Digraph.vid`).  The
interner recycles IDs through a free-list: a privilege vertex
garbage-collected by a revoke and re-introduced by a later grant — or a
user deprovisioned and re-provisioned — may come back under a
*different* ID, and two states that are equal as (vertex set, edge set)
pairs could then carry different ID-indexed masks.  The value-keyed
slot table is the remap that makes the fingerprint stable across such
recycling: equal states always map to equal fingerprints, and distinct
states to distinct fingerprints (each atom owns exactly one bit — the
fingerprint is an exact set encoding, not a hash, so there are no
collisions to reason about).

Two states that differ only in an *isolated* vertex (a user
deprovisioned and re-added with no memberships) differ in their vertex
atoms, so the fingerprint distinguishes them — matching
:meth:`repro.core.policy.Policy.__eq__`, which compares vertex sets as
well as edge sets.  (The pre-compilation explorers deduplicated on
``edge_set()`` alone and collapsed such states; see the regression
tests in ``tests/analysis/test_explore.py``.)
"""

from __future__ import annotations

from typing import Hashable

from .digraph import Digraph


class StateFingerprint:
    """An incrementally maintained exact bitmask over state atoms.

    ``value`` is the current fingerprint.  :meth:`toggle` flips one
    atom in or out (the caller toggles exactly the atoms its mutation
    changed); an undo restores a previously read ``value`` directly.
    Slots are never recycled — the table grows to the set of atoms ever
    seen, which for bounded exploration is the candidate universe plus
    the initial state.
    """

    __slots__ = ("_slots", "value")

    def __init__(self):
        self._slots: dict[Hashable, int] = {}
        self.value = 0

    @classmethod
    def of_graph(cls, graph: Digraph) -> "StateFingerprint":
        """A fingerprint seeded with a graph's vertices and edges.

        Vertex atoms are the vertex values; edge atoms are ``(source,
        target)`` pairs.  (Policy vertices are entities and privilege
        terms, never tuples, so the two atom kinds cannot collide.)
        """
        fingerprint = cls()
        for vertex in graph.vertices():
            fingerprint.toggle(vertex)
        for edge in graph.edges():
            fingerprint.toggle(edge)
        return fingerprint

    def bit(self, atom: Hashable) -> int:
        """The bit owned by ``atom``, assigned on first sight."""
        slot = self._slots.get(atom)
        if slot is None:
            slot = self._slots[atom] = 1 << len(self._slots)
        return slot

    def toggle(self, atom: Hashable) -> None:
        """Flip ``atom``'s presence in the fingerprint."""
        self.value ^= self.bit(atom)

    @property
    def atoms_interned(self) -> int:
        """Number of distinct atoms ever assigned a slot (diagnostic)."""
        return len(self._slots)

    def __repr__(self) -> str:
        return (
            f"StateFingerprint(atoms={len(self._slots)}, "
            f"bits={bin(self.value).count('1')})"
        )
