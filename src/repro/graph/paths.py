"""Path extraction: *why* does ``v`` reach ``w``?

The ordering derivations (:mod:`repro.core.trace`) and refinement
witnesses justify their verdicts with reachability premises
``v ->phi w``; for audits one level deeper, this module produces the
actual path — the chain of UA/RH/PA edges substantiating the premise.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .digraph import Digraph, Vertex


def shortest_path(
    graph: Digraph, source: Vertex, target: Vertex
) -> tuple[Vertex, ...] | None:
    """A shortest path from ``source`` to ``target`` as a vertex tuple
    (both endpoints included), or None if unreachable.

    The empty path ``(source,)`` is returned when source == target —
    matching the reflexive reading of the reachability judgement.
    """
    if source == target:
        return (source,)
    parent: dict[Vertex, Vertex] = {}
    seen = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor in seen:
                continue
            parent[successor] = vertex
            if successor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return tuple(reversed(path))
            seen.add(successor)
            queue.append(successor)
    return None


def all_simple_paths(
    graph: Digraph,
    source: Vertex,
    target: Vertex,
    max_length: int = 16,
) -> Iterator[tuple[Vertex, ...]]:
    """All simple paths up to ``max_length`` edges, DFS order.

    Bounded by construction: policies may contain cycles (footnote 3),
    so path enumeration needs a cap.
    """
    if source == target:
        yield (source,)
        return
    stack: list[tuple[Vertex, tuple[Vertex, ...]]] = [(source, (source,))]
    while stack:
        vertex, path = stack.pop()
        if len(path) > max_length:
            continue
        for successor in sorted(graph.successors(vertex), key=str):
            if successor in path:
                continue
            extended = path + (successor,)
            if successor == target:
                yield extended
            else:
                stack.append((successor, extended))


def format_path(path: tuple[Vertex, ...]) -> str:
    """Render a path as ``a -> b -> c`` using each vertex's str()."""
    return " -> ".join(str(vertex) for vertex in path)


def explain_reachability(
    graph: Digraph, source: Vertex, target: Vertex
) -> str:
    """One-line human explanation of a reachability premise."""
    path = shortest_path(graph, source, target)
    if path is None:
        return f"{source} does not reach {target}"
    if len(path) == 1:
        return f"{source} reaches itself (reflexivity)"
    return format_path(path)
