"""Reachability queries over :class:`~repro.graph.digraph.Digraph`.

The paper's judgement ``v ->_phi w`` ("there is a path from v to w") is
implemented here as *reflexive*-transitive reachability: ``reaches(v, v)``
is true for every vertex, including vertices not present in the graph.
Example 5 of the paper relies on this (``bob ->_phi bob`` holds with no
self-edge in the policy).

Two entry points are provided:

* module-level functions (:func:`reaches`, :func:`descendants`,
  :func:`ancestors`) that walk the graph directly; and
* :class:`ReachabilityCache`, which memoizes descendant sets per source
  vertex and invalidates itself automatically using the graph's
  ``version`` counter.  The privilege-ordering decision procedure issues
  many reachability queries against a policy that changes rarely, which
  is exactly the access pattern the cache targets.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .digraph import Digraph, Vertex


def descendants(graph: Digraph, source: Vertex) -> frozenset[Vertex]:
    """All vertices reachable from ``source`` including ``source`` itself."""
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)


def ancestors(graph: Digraph, target: Vertex) -> frozenset[Vertex]:
    """All vertices that reach ``target``, including ``target`` itself."""
    seen: set[Vertex] = {target}
    queue: deque[Vertex] = deque([target])
    while queue:
        vertex = queue.popleft()
        for predecessor in graph.predecessors(vertex):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    return frozenset(seen)


def reaches(graph: Digraph, source: Vertex, target: Vertex) -> bool:
    """True iff there is a (possibly empty) path from source to target.

    Uses an early-exit BFS rather than materializing the full
    descendant set.
    """
    if source == target:
        return True
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False


def reachable_from_any(
    graph: Digraph, sources: Iterable[Vertex]
) -> frozenset[Vertex]:
    """Union of descendant sets of all ``sources``."""
    seen: set[Vertex] = set()
    queue: deque[Vertex] = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)


class ReachabilityCache:
    """Memoized descendant sets over a mutable :class:`Digraph`.

    The cache is *pull-based*: every query compares the graph's current
    ``version`` against the version at which the cache was filled, and
    drops all memoized sets when they differ.  This keeps the graph
    itself free of observer plumbing while remaining correct under
    arbitrary mutation.
    """

    __slots__ = ("_graph", "_version", "_descendants")

    def __init__(self, graph: Digraph):
        self._graph = graph
        self._version = graph.version
        self._descendants: dict[Vertex, frozenset[Vertex]] = {}

    def _validate(self) -> None:
        if self._version != self._graph.version:
            self._descendants.clear()
            self._version = self._graph.version

    def descendants(self, source: Vertex) -> frozenset[Vertex]:
        self._validate()
        cached = self._descendants.get(source)
        if cached is None:
            cached = descendants(self._graph, source)
            self._descendants[source] = cached
        return cached

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        if source == target:
            return True
        return target in self.descendants(source)

    @property
    def cached_sources(self) -> int:
        """Number of memoized descendant sets (diagnostic)."""
        self._validate()
        return len(self._descendants)
