"""Reachability queries over :class:`~repro.graph.digraph.Digraph`.

The paper's judgement ``v ->_phi w`` ("there is a path from v to w") is
implemented here as *reflexive*-transitive reachability: ``reaches(v, v)``
is true for every vertex, including vertices not present in the graph.
Example 5 of the paper relies on this (``bob ->_phi bob`` holds with no
self-edge in the policy).

Two entry points are provided:

* module-level functions (:func:`reaches`, :func:`descendants`,
  :func:`ancestors`) that walk the graph directly; and
* :class:`ReachabilityCache`, which memoizes descendant sets per source
  vertex and invalidates itself automatically using the graph's
  ``version`` counter.  The privilege-ordering decision procedure issues
  many reachability queries against a policy that changes rarely, which
  is exactly the access pattern the cache targets.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from .digraph import Digraph, Vertex, summarize_deltas


def descendants(graph: Digraph, source: Vertex) -> frozenset[Vertex]:
    """All vertices reachable from ``source`` including ``source`` itself."""
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)


def ancestors(graph: Digraph, target: Vertex) -> frozenset[Vertex]:
    """All vertices that reach ``target``, including ``target`` itself."""
    seen: set[Vertex] = {target}
    queue: deque[Vertex] = deque([target])
    while queue:
        vertex = queue.popleft()
        for predecessor in graph.predecessors(vertex):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    return frozenset(seen)


def reaches(graph: Digraph, source: Vertex, target: Vertex) -> bool:
    """True iff there is a (possibly empty) path from source to target.

    Uses an early-exit BFS rather than materializing the full
    descendant set.
    """
    if source == target:
        return True
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False


def reachable_from_any(
    graph: Digraph,
    sources: Iterable[Vertex],
    neighbors: Callable[[Vertex], Iterable[Vertex]] | None = None,
) -> frozenset[Vertex]:
    """Union of descendant sets of all ``sources``.

    ``neighbors`` overrides the traversal direction (pass
    ``graph.predecessors`` for the union of ancestor sets).
    """
    if neighbors is None:
        neighbors = graph.successors
    seen: set[Vertex] = set()
    queue: deque[Vertex] = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        for neighbor in neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return frozenset(seen)


class ReachabilityCache:
    """Memoized descendant sets over a mutable :class:`Digraph`.

    The cache is *pull-based*: every query compares the graph's current
    ``version`` against the version at which the cache was filled.
    When they differ it consults the graph's change journal and evicts
    only the entries a mutation can actually have touched, instead of
    dropping everything:

    * adding or removing the edge ``(s, t)`` changes the descendant set
      of exactly the vertices that reach ``s`` — and a cached set that
      was accurate before the mutation contains ``s`` iff its key
      reaches ``s`` (the ancestor set of ``s`` is invariant under
      mutations of ``s``'s own out-edges: any path ending at ``s`` that
      used the edge ``(s, t)`` already visited ``s`` earlier), so one
      membership test per entry suffices;
    * adding a vertex changes nothing (it has no edges yet);
    * removing a vertex only evicts the entry keyed by it — its
      incident edges were removed (and journaled) first.

    When the journal no longer reaches back to the cache's version, or
    the delta burst is larger than ``DELTA_LIMIT``, the cache falls
    back to the old clear-everything behaviour.
    """

    DELTA_LIMIT = 64

    __slots__ = ("_graph", "_version", "_descendants", "evictions",
                 "full_invalidations")

    def __init__(self, graph: Digraph):
        self._graph = graph
        self._version = graph.version
        self._descendants: dict[Vertex, frozenset[Vertex]] = {}
        #: diagnostic counters (read by benchmarks and tests)
        self.evictions = 0
        self.full_invalidations = 0

    def _validate(self) -> None:
        if self._version == self._graph.version:
            return
        deltas = (
            self._graph.changes_since(self._version)
            if self._descendants else None
        )
        summary = None if deltas is None else summarize_deltas(deltas)
        if summary is None or summary.weight > self.DELTA_LIMIT:
            if self._descendants:
                self._descendants.clear()
                self.full_invalidations += 1
        else:
            # An entry accurate at the old version is affected by some
            # delta iff its set intersects the delta sources — a path
            # to a source created *mid-batch* starts with a pre-batch
            # prefix to the first added edge's source, which is itself
            # in the source set.  Removed vertices evict their own
            # entry (their incident edges were journaled first).
            for vertex in summary.removed_vertices:
                if self._descendants.pop(vertex, None) is not None:
                    self.evictions += 1
            if summary.edge_sources:
                stale = [
                    key for key, seen in self._descendants.items()
                    if not seen.isdisjoint(summary.edge_sources)
                ]
                for key in stale:
                    del self._descendants[key]
                self.evictions += len(stale)
        self._version = self._graph.version

    def validate(self) -> None:
        """Bring the eviction bookkeeping up to date now.

        Queries validate lazily anyway; this exists so that code about
        to share the cache across worker threads (parallel shard
        repair) can run the single mutating validation step up front —
        after it, concurrent readers only ever *add* memo entries.
        """
        self._validate()

    def descendants(self, source: Vertex) -> frozenset[Vertex]:
        self._validate()
        cached = self._descendants.get(source)
        if cached is None:
            cached = descendants(self._graph, source)
            self._descendants[source] = cached
        return cached

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        if source == target:
            return True
        return target in self.descendants(source)

    @property
    def cached_sources(self) -> int:
        """Number of memoized descendant sets (diagnostic)."""
        self._validate()
        return len(self._descendants)
