"""Reachability queries over :class:`~repro.graph.digraph.Digraph`.

The paper's judgement ``v ->_phi w`` ("there is a path from v to w") is
implemented here as *reflexive*-transitive reachability: ``reaches(v, v)``
is true for every vertex, including vertices not present in the graph.
Example 5 of the paper relies on this (``bob ->_phi bob`` holds with no
self-edge in the policy).

Two entry points are provided:

* module-level functions (:func:`reaches`, :func:`descendants`,
  :func:`ancestors`) that walk the graph directly; and
* :class:`ReachabilityCache`, which memoizes descendant sets per source
  vertex and invalidates itself automatically using the graph's
  ``version`` counter.  The privilege-ordering decision procedure issues
  many reachability queries against a policy that changes rarely, which
  is exactly the access pattern the cache targets.

Both come in two representations.  The *frozenset* functions return
sets of vertex objects and are the semantic oracle.  The *compiled*
functions (:func:`descendants_bits`, :func:`ancestors_bits`,
:meth:`ReachabilityCache.descendants_bits`) return Python big-int
bitmasks over the graph's interned vertex IDs
(:meth:`~repro.graph.digraph.Digraph.vid`): a BFS step unions whole
precomputed successor masks with ``|`` instead of hashing vertices one
by one, and downstream consumers intersect, test and filter masks with
single integer operations.  A vertex absent from the graph has no ID,
so the compiled functions return ``0`` for it — callers that need the
reflexive ``{source}`` semantics of the frozenset variants handle the
absent seed explicitly (see the rectangle "extras" in
:mod:`repro.core.authz_index`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from .digraph import Digraph, Vertex, summarize_deltas


def descendants(graph: Digraph, source: Vertex) -> frozenset[Vertex]:
    """All vertices reachable from ``source`` including ``source`` itself."""
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)


def ancestors(graph: Digraph, target: Vertex) -> frozenset[Vertex]:
    """All vertices that reach ``target``, including ``target`` itself."""
    seen: set[Vertex] = {target}
    queue: deque[Vertex] = deque([target])
    while queue:
        vertex = queue.popleft()
        for predecessor in graph.predecessors(vertex):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    return frozenset(seen)


def reaches(
    graph: Digraph,
    source: Vertex,
    target: Vertex,
    cache: "ReachabilityCache | None" = None,
) -> bool:
    """True iff there is a (possibly empty) path from source to target.

    Uses an early-exit BFS rather than materializing the full
    descendant set.  When a ``cache`` is supplied and already holds a
    warm entry for ``source`` (either representation), the answer
    comes from the memo instead of re-walking the graph; a cold cache
    is *not* populated — the early-exit BFS stays cheaper than a full
    materialization for one-shot queries.
    """
    if source == target:
        return True
    if cache is not None:
        warm = cache.peek_reaches(source, target)
        if warm is not None:
            return warm
    seen: set[Vertex] = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False


def iter_bits(mask: int):
    """Yield the set-bit indices of ``mask``, lowest first.

    The workhorse for decoding kernel bitmasks back into vertices:
    ``(graph.vertex_of(i) for i in iter_bits(mask))``.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def pack_bits(graph: Digraph, vertices: Iterable[Vertex]) -> int:
    """Pack ``vertices`` into a bitmask over the graph's interned IDs.

    The inverse of :func:`iter_bits` decoding: members that are graph
    vertices contribute their ID bit; off-graph members are skipped
    (they have no ID — callers needing them must track extras
    explicitly, as the rectangle representation does).  This is the
    batch-authorization primitive: a query population packed once, then
    matched against per-privilege rectangle masks with single ``&``
    operations.
    """
    vid = graph._vid
    mask = 0
    for vertex in vertices:
        index = vid.get(vertex)
        if index is not None:
            mask |= 1 << index
    return mask


def lowest_bit(mask: int) -> int:
    """Index of the lowest set bit of ``mask``, or ``-1`` when empty.

    Rectangle rows are built in ascending privilege-ID order, so the
    lowest set bit of an ``eligible & held`` intersection is exactly
    the first-match verdict the scalar scan would return.
    """
    return (mask & -mask).bit_length() - 1


def descendants_bits(graph: Digraph, source: Vertex) -> int:
    """Bitmask over interned vertex IDs of every vertex reachable from
    ``source``, including ``source`` itself; ``0`` if ``source`` is not
    a graph vertex (no ID exists for it — see the module docstring)."""
    source_id = graph._vid.get(source)
    if source_id is None:
        return 0
    return _sweep_bits(graph._succ_bits, 1 << source_id, [source_id])


def ancestors_bits(graph: Digraph, target: Vertex) -> int:
    """Bitmask of every vertex that reaches ``target``, including
    ``target`` itself; ``0`` if ``target`` is not a graph vertex."""
    target_id = graph._vid.get(target)
    if target_id is None:
        return 0
    return _sweep_bits(graph._pred_bits, 1 << target_id, [target_id])


def _sweep_bits(adjacency: list[int], seen: int, frontier: list[int]) -> int:
    """Multi-source BFS over per-vertex adjacency masks: each round ORs
    whole neighbour masks together (word-parallel), then expands only
    the genuinely new bits."""
    while frontier:
        gathered = 0
        for index in frontier:
            gathered |= adjacency[index]
        gathered &= ~seen
        seen |= gathered
        frontier = list(iter_bits(gathered))
    return seen


def reachable_from_any(
    graph: Digraph,
    sources: Iterable[Vertex],
    neighbors: Callable[[Vertex], Iterable[Vertex]] | None = None,
) -> frozenset[Vertex]:
    """Union of descendant sets of all ``sources``.

    ``neighbors`` overrides the traversal direction (pass
    ``graph.predecessors`` for the union of ancestor sets).
    """
    if neighbors is None:
        neighbors = graph.successors
    seen: set[Vertex] = set()
    queue: deque[Vertex] = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        for neighbor in neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return frozenset(seen)


class ReachabilityCache:
    """Memoized descendant sets over a mutable :class:`Digraph`.

    The cache is *pull-based*: every query compares the graph's current
    ``version`` against the version at which the cache was filled.
    When they differ it consults the graph's change journal and evicts
    only the entries a mutation can actually have touched, instead of
    dropping everything:

    * adding or removing the edge ``(s, t)`` changes the descendant set
      of exactly the vertices that reach ``s`` — and a cached set that
      was accurate before the mutation contains ``s`` iff its key
      reaches ``s`` (the ancestor set of ``s`` is invariant under
      mutations of ``s``'s own out-edges: any path ending at ``s`` that
      used the edge ``(s, t)`` already visited ``s`` earlier), so one
      membership test per entry suffices;
    * adding a vertex changes nothing (it has no edges yet);
    * removing a vertex only evicts the entry keyed by it — its
      incident edges were removed (and journaled) first.

    When the journal no longer reaches back to the cache's version, or
    the delta burst is larger than ``DELTA_LIMIT``, the cache falls
    back to the old clear-everything behaviour.

    The cache holds two memo tables over the same facts: frozensets
    (:meth:`descendants`) and interned-ID bitmasks
    (:meth:`descendants_bits`, the compiled kernel's representation).
    Both follow identical eviction rules; an entry surviving eviction
    provably contains no removed vertex, which is what makes interner
    ID reuse safe for retained masks.
    """

    DELTA_LIMIT = 64

    __slots__ = ("_graph", "_version", "_descendants", "_bits",
                 "_bits_by_vid", "evictions", "full_invalidations")

    def __init__(self, graph: Digraph):
        self._graph = graph
        self._version = graph.version
        self._descendants: dict[Vertex, frozenset[Vertex]] = {}
        #: vertex -> (vid at fill time, mask); the vid makes the mirror
        #: below evictable even after the vertex has left the graph.
        self._bits: dict[Vertex, tuple[int, int]] = {}
        #: vid -> mask mirror of ``_bits`` — absorption lookups during
        #: the BFS are per frontier *bit*, and int keys skip the
        #: Python-level entity ``__hash__`` calls entirely.
        self._bits_by_vid: dict[int, int] = {}
        #: diagnostic counters (read by benchmarks and tests)
        self.evictions = 0
        self.full_invalidations = 0

    def _validate(self) -> None:
        if self._version == self._graph.version:
            return
        deltas = (
            self._graph.changes_since(self._version)
            if (self._descendants or self._bits) else None
        )
        summary = None if deltas is None else summarize_deltas(deltas)
        if summary is None or summary.weight > self.DELTA_LIMIT:
            if self._descendants or self._bits:
                self._descendants.clear()
                self._bits.clear()
                self._bits_by_vid.clear()
                self.full_invalidations += 1
        else:
            # An entry accurate at the old version is affected by some
            # delta iff its set intersects the delta sources — a path
            # to a source created *mid-batch* starts with a pre-batch
            # prefix to the first added edge's source, which is itself
            # in the source set.  Removed vertices evict their own
            # entry (their incident edges were journaled first).
            for vertex in summary.removed_vertices:
                if self._descendants.pop(vertex, None) is not None:
                    self.evictions += 1
                dropped = self._bits.pop(vertex, None)
                if dropped is not None:
                    del self._bits_by_vid[dropped[0]]
                    self.evictions += 1
            if summary.edge_sources:
                stale = [
                    key for key, seen in self._descendants.items()
                    if not seen.isdisjoint(summary.edge_sources)
                ]
                for key in stale:
                    del self._descendants[key]
                self.evictions += len(stale)
                if self._bits:
                    # Same rule, word-parallel: a mask entry is stale
                    # iff it intersects the source mask.  An absent
                    # edge source was removed this burst, and any mask
                    # containing it also contains a still-present
                    # source (walk the path back) or is keyed by a
                    # removed vertex — both already caught.
                    vid = self._graph._vid
                    source_mask = 0
                    for vertex in summary.edge_sources:
                        index = vid.get(vertex)
                        if index is not None:
                            source_mask |= 1 << index
                    stale_bits = [
                        key for key, (_, mask) in self._bits.items()
                        if mask & source_mask
                    ]
                    for key in stale_bits:
                        del self._bits_by_vid[self._bits.pop(key)[0]]
                    self.evictions += len(stale_bits)
        self._version = self._graph.version

    def validate(self) -> None:
        """Bring the eviction bookkeeping up to date now.

        Queries validate lazily anyway; this exists so that code about
        to share the cache across worker threads (parallel shard
        repair) can run the single mutating validation step up front —
        after it, concurrent readers only ever *add* memo entries.
        """
        self._validate()

    def descendants(self, source: Vertex) -> frozenset[Vertex]:
        self._validate()
        cached = self._descendants.get(source)
        if cached is None:
            cached = descendants(self._graph, source)
            self._descendants[source] = cached
        return cached

    def descendants_bits(self, source: Vertex) -> int:
        """Memoized bitmask of the descendants of ``source`` (``0`` for
        a vertex absent from the graph).

        The BFS *absorbs* warm sibling entries: when the frontier
        reaches a vertex whose mask is already memoized, that whole
        mask is OR-ed into the result and the vertex is not expanded.
        Fanning out over a user population whose members share role
        subtrees (the authorization-index build) therefore pays the
        deep traversal once per role, not once per user.
        """
        self._validate()
        cached = self._bits.get(source)
        if cached is not None:
            return cached[1]
        graph = self._graph
        source_id = graph._vid.get(source)
        if source_id is None:
            return 0
        memo_vid = self._bits_by_vid
        succ_bits = graph._succ_bits
        seen = 1 << source_id
        frontier = [source_id]
        while frontier:
            gathered = 0
            for index in frontier:
                gathered |= succ_bits[index]
            gathered &= ~seen
            frontier = []
            while gathered:
                low = gathered & -gathered
                gathered ^= low
                index = low.bit_length() - 1
                warm = memo_vid.get(index)
                if warm is None:
                    seen |= low
                    frontier.append(index)
                else:
                    seen |= warm
                    gathered &= ~warm
        self._bits[source] = (source_id, seen)
        memo_vid[source_id] = seen
        return seen

    def peek_descendants(self, source: Vertex) -> frozenset[Vertex] | None:
        """The memoized frozenset descendant set, or None when cold —
        never triggers a build (evicts stale entries first)."""
        self._validate()
        return self._descendants.get(source)

    def peek_reaches(self, source: Vertex, target: Vertex) -> bool | None:
        """Answer ``reaches`` purely from warm memo entries (either
        representation); None when the source is cold."""
        if source == target:
            return True
        self._validate()
        cached = self._descendants.get(source)
        if cached is not None:
            return target in cached
        warm = self._bits.get(source)
        if warm is not None:
            index = self._graph._vid.get(target)
            return index is not None and bool(warm[1] >> index & 1)
        return None

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        if source == target:
            return True
        self._validate()
        # A warm mask entry (the compiled kernel's representation)
        # already answers the membership question — don't materialize
        # a duplicate frozenset of the same facts.
        warm = self._bits.get(source)
        if warm is not None and source not in self._descendants:
            index = self._graph._vid.get(target)
            return index is not None and bool(warm[1] >> index & 1)
        return target in self.descendants(source)

    @property
    def cached_sources(self) -> int:
        """Number of memoized descendant sets, both representations
        (diagnostic)."""
        self._validate()
        return len(self._descendants) + len(self._bits)
