"""The paper's figures and worked examples as executable artifacts."""

from . import figures
from .examples import (
    example1,
    example2,
    example3,
    example4,
    example5,
    example6,
    example6_policy,
)

__all__ = [
    "figures",
    "example1",
    "example2",
    "example3",
    "example4",
    "example5",
    "example6",
    "example6_policy",
]
