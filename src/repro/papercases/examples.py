"""The paper's Examples 1–6 as executable scenarios.

Each ``exampleN`` function runs the example on the reconstructed
figures and returns a small result record; the test suite asserts every
claim the paper makes about them, and the examples/ scripts print them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.commands import Mode, grant_cmd, revoke_cmd, run_queue
from ..core.entities import Role
from ..core.monitor import ReferenceMonitor
from ..core.ordering import OrderingOracle, explain_weaker
from ..core.policy import Policy
from ..core.privileges import Grant, Privilege, perm
from ..core.refinement import is_refinement, with_replaced_edge, without_edge
from ..core.trace import Derivation
from ..core.weaker import enumerate_weaker
from . import figures


@dataclass(frozen=True)
class Example1Result:
    """Diana's accesses in the two sessions of Example 1."""

    nurse_reads_t1: bool
    nurse_reads_t2: bool
    nurse_writes_t3: bool
    staff_writes_t3: bool


def example1() -> Example1Result:
    """Basic RBAC: as nurse Diana reads t1/t2; as staff she also
    writes t3."""
    monitor = ReferenceMonitor(figures.figure1())
    nurse_session = monitor.create_session(figures.DIANA)
    monitor.add_active_role(nurse_session, figures.NURSE)
    staff_session = monitor.create_session(figures.DIANA)
    monitor.add_active_role(staff_session, figures.STAFF)
    return Example1Result(
        nurse_reads_t1=monitor.check_access(nurse_session, "read", "t1"),
        nurse_reads_t2=monitor.check_access(nurse_session, "read", "t2"),
        nurse_writes_t3=monitor.check_access(nurse_session, "write", "t3"),
        staff_writes_t3=monitor.check_access(staff_session, "write", "t3"),
    )


@dataclass(frozen=True)
class Example2Result:
    """HR's delegated administration from Example 2."""

    jane_appoints_bob_staff: bool
    jane_appoints_joe_nurse: bool
    jane_revokes_joe_nurse: bool
    jane_cannot_appoint_bob_nurse_strict: bool
    diana_cannot_appoint: bool


def example2() -> Example2Result:
    """Members of HR can appoint new staff members or nurses without
    recurring to Alice; others cannot."""
    policy = figures.figure2()
    final, records = run_queue(
        policy,
        [
            grant_cmd(figures.JANE, figures.BOB, figures.STAFF),
            grant_cmd(figures.JANE, figures.JOE, figures.NURSE),
            revoke_cmd(figures.JANE, figures.JOE, figures.NURSE),
            grant_cmd(figures.JANE, figures.BOB, figures.NURSE),
            grant_cmd(figures.DIANA, figures.BOB, figures.STAFF),
        ],
        Mode.STRICT,
    )
    return Example2Result(
        jane_appoints_bob_staff=records[0].executed,
        jane_appoints_joe_nurse=records[1].executed,
        jane_revokes_joe_nurse=records[2].executed,
        jane_cannot_appoint_bob_nurse_strict=not records[3].executed,
        diana_cannot_appoint=not records[4].executed,
    )


@dataclass(frozen=True)
class Example3Result:
    """The three refinement claims of Example 3."""

    removing_diana_staff_refines: bool
    moving_diana_staff_to_nurse_refines: bool
    moving_nurse_dbusr1_to_dbusr2_refines: bool  # the paper: it does NOT


def example3() -> Example3Result:
    phi = figures.figure1()
    removed = without_edge(phi, figures.DIANA, figures.STAFF)
    moved_down = with_replaced_edge(
        phi,
        (figures.DIANA, figures.STAFF),
        (figures.DIANA, figures.NURSE),
    )
    moved_sideways = with_replaced_edge(
        phi,
        (figures.NURSE, figures.DBUSR1),
        (figures.NURSE, figures.DBUSR2),
    )
    return Example3Result(
        removing_diana_staff_refines=is_refinement(phi, removed),
        moving_diana_staff_to_nurse_refines=is_refinement(phi, moved_down),
        moving_nurse_dbusr1_to_dbusr2_refines=is_refinement(phi, moved_sideways),
    )


@dataclass(frozen=True)
class Example4Result:
    """The flexworker scenario (Example 4)."""

    strict_allows_direct_dbusr2: bool       # False: not explicitly held
    refined_allows_direct_dbusr2: bool      # True: via the ordering
    bob_staff_gets_medical: bool            # staff assignment over-grants
    bob_dbusr2_gets_medical: bool           # direct dbusr2 does not
    bob_dbusr2_can_maintain_db: bool        # but suffices for the job


def example4() -> Example4Result:
    policy = figures.figure3()
    direct = grant_cmd(figures.JANE, figures.BOB, figures.DBUSR2)

    _, strict_records = run_queue(policy, [direct], Mode.STRICT)
    refined_policy, refined_records = run_queue(policy, [direct], Mode.REFINED)

    over_granted = figures.figure3_after_strict_assignment()
    medical = perm("print", "black")  # a nurse-only privilege
    bob_staff_medical = over_granted.reaches(figures.BOB, medical)

    bob_dbusr2_medical = refined_policy.reaches(figures.BOB, medical)
    monitor = ReferenceMonitor(refined_policy)
    session = monitor.create_session(figures.BOB)
    monitor.add_active_role(session, figures.DBUSR2)
    can_maintain = (
        monitor.check_access(session, "read", "t1")
        and monitor.check_access(session, "read", "t2")
        and monitor.check_access(session, "write", "t3")
    )
    return Example4Result(
        strict_allows_direct_dbusr2=strict_records[0].executed,
        refined_allows_direct_dbusr2=refined_records[0].executed,
        bob_staff_gets_medical=bob_staff_medical,
        bob_dbusr2_gets_medical=bob_dbusr2_medical,
        bob_dbusr2_can_maintain_db=can_maintain,
    )


@dataclass(frozen=True)
class Example5Result:
    """The three ordering decisions walked through in Example 5."""

    simple: Derivation | None          # ¤(bob,staff) Ã ¤(bob,dbusr2): rule 2
    nested: Derivation | None          # ¤(staff,¤(bob,staff)) Ã ¤(staff,¤(bob,dbusr2)): rule 3 then 2
    nested_after_edge_removed: Derivation | None  # must be None


def example5() -> Example5Result:
    policy = figures.figure2()
    simple_strong = Grant(figures.BOB, figures.STAFF)
    simple_weak = Grant(figures.BOB, figures.DBUSR2)
    nested_strong = Grant(figures.STAFF, Grant(figures.BOB, figures.STAFF))
    nested_weak = Grant(figures.STAFF, Grant(figures.BOB, figures.DBUSR2))

    simple = explain_weaker(policy, simple_strong, simple_weak)
    nested = explain_weaker(policy, nested_strong, nested_weak)

    # "Now, for the sake of exposition, let us remove the edge between
    # the staff and the dbusr2 role" — the relation must stop holding.
    broken = policy.copy()
    broken.remove_edge(figures.STAFF, figures.DBUSR2)
    nested_after = explain_weaker(broken, nested_strong, nested_weak)
    return Example5Result(simple, nested, nested_after)


@dataclass(frozen=True)
class Example6Result:
    """The infinite weaker-privilege chain of Example 6."""

    first_terms: tuple[Privilege, ...]
    chain_confirmed: bool  # each listed deeper term is weaker than the seed


def example6(chain_length: int = 4) -> Example6Result:
    """Policy with ``(r2, ¤(r1, r2))``: members of r2 can make members
    of r1 members too; the weaker set of ``¤(r1, r2)`` is infinite."""
    r1, r2 = Role("r1"), Role("r2")
    seed = Grant(r1, r2)
    policy = Policy(rh=[], pa=[(r2, seed)])
    policy.add_role(r1)

    # The paper's chain: ¤(r1,¤(r1,r2)), ¤(r1,¤(r1,¤(r1,r2))), ...
    chain: list[Privilege] = []
    term: Privilege = seed
    for _ in range(chain_length):
        term = Grant(r1, term)
        chain.append(term)

    oracle = OrderingOracle(policy)
    confirmed = all(oracle.is_weaker(seed, deeper) for deeper in chain)
    first_terms = tuple(
        enumerate_weaker(policy, seed, max_depth=chain_length)
    )
    return Example6Result(first_terms=first_terms, chain_confirmed=confirmed)


def example6_policy() -> tuple[Policy, Grant]:
    """The Example 6 policy and its seed privilege (for benchmarks)."""
    r1, r2 = Role("r1"), Role("r2")
    seed = Grant(r1, r2)
    policy = Policy(pa=[(r2, seed)])
    policy.add_role(r1)
    return policy, seed
