"""The paper's Figures 1–3 as exact policy values.

The figure drawings in the available text are OCR-garbled; the
reconstruction below (documented in DESIGN.md) is the unique-ish
reading consistent with every statement in the prose:

* Example 1: as *nurse* Diana reads t1 and t2; as *staff* she can
  additionally write t3.
* Example 2: HR can appoint staff members and nurses; revoking
  ``dbusr2`` membership protects tables t2 and t3; role ``dbusr3``
  holds that revocation privilege.
* Example 4: ``nurse`` is below ``staff``; ``dbusr2`` is also below
  ``staff`` and suffices for database maintenance.
* Example 5: the staff role holds ``¤(bob, staff)``; Alice (security
  officer) holds ``¤(staff, ¤(bob, staff))``.

Hierarchy used (senior → junior)::

    staff → nurse        staff → dbusr2       staff → prntusr
    nurse → dbusr1       dbusr2 → dbusr1

Privileges::

    dbusr1 → (read, t1), (read, t2)
    dbusr2 → (write, t3)
    nurse  → (print, black)
    prntusr→ (print, color)
"""

from __future__ import annotations

from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant, Revoke, perm

# Entities (module-level so tests and examples can import them).
DIANA = User("diana")
BOB = User("bob")
JOE = User("joe")
JANE = User("jane")
ALICE = User("alice")

NURSE = Role("nurse")
STAFF = Role("staff")
PRNTUSR = Role("prntusr")
DBUSR1 = Role("dbusr1")
DBUSR2 = Role("dbusr2")
DBUSR3 = Role("dbusr3")
HR = Role("HR")
SO = Role("SO")

READ_T1 = perm("read", "t1")
READ_T2 = perm("read", "t2")
WRITE_T3 = perm("write", "t3")
PRINT_BLACK = perm("print", "black")
PRINT_COLOR = perm("print", "color")


def figure1() -> Policy:
    """Figure 1: the sample non-administrative RBAC policy."""
    policy = Policy(
        ua=[(DIANA, NURSE), (DIANA, STAFF)],
        rh=[
            (STAFF, NURSE),
            (STAFF, DBUSR2),
            (STAFF, PRNTUSR),
            (NURSE, DBUSR1),
            (DBUSR2, DBUSR1),
        ],
        pa=[
            (DBUSR1, READ_T1),
            (DBUSR1, READ_T2),
            (DBUSR2, WRITE_T3),
            (NURSE, PRINT_BLACK),
            (PRNTUSR, PRINT_COLOR),
        ],
    )
    return policy


def figure2() -> Policy:
    """Figure 2: Alice's administrative policy on top of Figure 1.

    Members of HR can appoint (and partly revoke) staff and nurses;
    ``dbusr3`` holds revocation privileges over ``dbusr2`` membership
    (the figure's wildcard ``♦(dbusr?, ·)``, rendered concretely over
    the users that appear in the scenario); the security-officer role
    holds the nested privilege Example 5 attributes to Alice.
    """
    policy = figure1()
    policy.add_user(BOB)
    policy.add_user(JOE)
    policy.assign_user(JANE, HR)
    policy.assign_user(ALICE, SO)
    policy.add_inheritance(SO, HR)
    policy.add_role(DBUSR3)

    # HR's administrative privileges (the figure's box labels).
    policy.assign_privilege(HR, Grant(BOB, STAFF))
    policy.assign_privilege(HR, Grant(JOE, NURSE))
    policy.assign_privilege(HR, Revoke(JOE, NURSE))

    # dbusr3's revocation privileges over dbusr2 membership (Example 2:
    # "to protect the confidentiality of health records in the tables
    # t2 and t3 Alice delegated a revocation privilege about the role
    # dbusr2 to the role dbusr3").
    policy.assign_privilege(DBUSR3, Revoke(BOB, DBUSR2))
    policy.assign_privilege(DBUSR3, Revoke(DIANA, DBUSR2))

    # The security officer's nested privilege from Example 5.
    policy.assign_privilege(SO, Grant(STAFF, Grant(BOB, STAFF)))
    return policy


def figure3() -> Policy:
    """Figure 3: the flexworker scenario — identical policy to Figure 2
    (the dashed/dotted edges are the two *possible* assignments for
    Bob, not part of the policy; see
    :func:`figure3_after_strict_assignment` and
    :func:`figure3_after_refined_assignment`).
    """
    return figure2()


def figure3_after_strict_assignment() -> Policy:
    """Figure 3's dashed edge: Jane exercised ``¤(bob, staff)``
    literally — Bob is a staff member with excessive privileges."""
    policy = figure3()
    policy.assign_user(BOB, STAFF)
    return policy


def figure3_after_refined_assignment() -> Policy:
    """Figure 3's dotted edge: Jane used the privilege ordering to
    assign Bob directly to ``dbusr2`` — least privilege applied for
    him."""
    policy = figure3()
    policy.assign_user(BOB, DBUSR2)
    return policy


def revocation_wildcard(policy: Policy, role: Role, target_role: Role) -> None:
    """Expand the figures' ``♦(·, target_role)`` wildcard: assign to
    ``role`` a revocation privilege over every currently known user's
    membership of ``target_role``.

    The paper's grammar has no wildcard privileges; this helper is the
    documented encoding (DESIGN.md, "Reconstruction decisions").
    """
    for user in sorted(policy.users(), key=str):
        policy.assign_privilege(role, Revoke(user, target_role))
