"""The serving layer: an asyncio policy-decision-point over the
reference monitor.

Single-writer micro-batched mutations (`submit_queue(batched=True,
snapshot=True)` transactions), lock-free snapshot reads batched
through ``authorizes_batch``, a journal-invalidated decision cache,
per-principal token-bucket rate limiting and a metrics surface — see
:mod:`repro.serve.pdp` for the architecture and
``docs/ARCHITECTURE.md`` ("The serving layer") for the contract.

Fault tolerance rides on top: a hash-chained policy write-ahead log
(:mod:`repro.serve.wal`) makes every acknowledged batch durable and
crash recovery a deterministic replay
(:meth:`PolicyDecisionPoint.recover`), while the supervised writer
(:mod:`repro.serve.supervisor`) turns failures into typed errors,
backoff, and a degraded read-only mode — see ``docs/ARCHITECTURE.md``
("Fault tolerance & durability").
"""

from .cache import DecisionCache, cacheable
from .metrics import LatencyHistogram, PdpMetrics
from .pdp import Decision, PolicyDecisionPoint, as_command
from .ratelimit import RateLimited, RateLimiter, TokenBucket
from .supervisor import (
    DeadlineExceeded,
    QueueFull,
    ServiceStopped,
    SnapshotTooStale,
    WriterFailed,
    WriterSupervisor,
)
from .wal import (
    GENESIS_PREV,
    PolicyWal,
    WalError,
    WalRecord,
    read_wal,
    repair_torn_tail,
    replay_wal,
    verify_chain,
)

__all__ = [
    "DecisionCache",
    "cacheable",
    "LatencyHistogram",
    "PdpMetrics",
    "Decision",
    "PolicyDecisionPoint",
    "as_command",
    "RateLimited",
    "RateLimiter",
    "TokenBucket",
    "DeadlineExceeded",
    "QueueFull",
    "ServiceStopped",
    "SnapshotTooStale",
    "WriterFailed",
    "WriterSupervisor",
    "GENESIS_PREV",
    "PolicyWal",
    "WalError",
    "WalRecord",
    "read_wal",
    "repair_torn_tail",
    "replay_wal",
    "verify_chain",
]
