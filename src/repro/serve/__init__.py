"""The serving layer: an asyncio policy-decision-point over the
reference monitor.

Single-writer micro-batched mutations (`submit_queue(batched=True,
snapshot=True)` transactions), lock-free snapshot reads batched
through ``authorizes_batch``, a journal-invalidated decision cache,
per-principal token-bucket rate limiting and a metrics surface — see
:mod:`repro.serve.pdp` for the architecture and
``docs/ARCHITECTURE.md`` ("The serving layer") for the contract.
"""

from .cache import DecisionCache, cacheable
from .metrics import LatencyHistogram, PdpMetrics
from .pdp import Decision, PolicyDecisionPoint, as_command
from .ratelimit import RateLimited, RateLimiter, TokenBucket

__all__ = [
    "DecisionCache",
    "cacheable",
    "LatencyHistogram",
    "PdpMetrics",
    "Decision",
    "PolicyDecisionPoint",
    "as_command",
    "RateLimited",
    "RateLimiter",
    "TokenBucket",
]
