"""Version-keyed decision cache with journal-driven invalidation.

The PDP answers reads from the latest published
:class:`~repro.core.authz_index.ReviewSnapshot`; this cache sits in
front of it, keyed by subject and requested edge, and is advanced —
not cleared — on every publication by consuming the cache's own
:meth:`~repro.core.policy.Policy.journal_cursor` and classifying the
delta burst with the same :func:`~repro.graph.summarize_deltas` /
:func:`~repro.graph.dirty_region` machinery the incremental indexes
repair themselves with.

Soundness of the selective eviction, in the terms of
``repro.graph.closure.dirty_region``: a cached verdict for
``(subject, a, v, v')`` can only change when

* the subject's reachable set changed — ``subject`` is in the
  *upstream* region (ancestors of mutated-edge sources);
* some held rectangle's source side ``ancestors(p.source) ∋ v``
  changed — then ``descendants(v)`` changed, so ``v`` is upstream;
* some rectangle's target side ``descendants(p.target) ∋ v'``
  changed — then ``ancestors(v')`` changed, so ``v'`` is in the
  *downstream* region (descendants of mutated-edge targets); or
* a vertex was removed or (re-)added in the window — removals can
  garbage-collect privilege terms and additions can migrate an
  off-graph extra into a rectangle mask, so both sets evict anything
  they touch (the same special-casing the compiled index applies).

Exact revocations are a degenerate case of the first bullet (they
depend only on the subject's held set).  Commands whose target is
itself a privilege term take the ordering-oracle path in the kernel;
they are **not cached** (``cacheable`` returns False) rather than
reasoned about here.  A wholesale clear happens only when the journal
no longer reaches back to the cache's version — never as a shortcut.
"""

from __future__ import annotations

from ..core.commands import Command
from ..core.privileges import is_privilege
from ..graph import dirty_region, summarize_deltas

_ABSENT = object()


def cacheable(command: Command) -> bool:
    """True when a verdict for ``command`` may be cached: well-sorted
    edge, entity target (nested privilege-term targets ride the
    ordering oracle and are excluded from the soundness argument)."""
    return (
        command.requested_privilege() is not None
        and not is_privilege(command.target)
    )


class DecisionCache:
    """Subject-bucketed verdict cache pinned to one policy version.

    ``get``/``put`` are only meaningful at the cache's current
    ``version``; ``advance()`` moves it to the policy's version by
    selective eviction.  ``max_entries`` bounds memory: once full, new
    verdicts are simply not inserted (the snapshot answers them
    anyway) until eviction makes room.
    """

    def __init__(self, policy, max_entries: int = 65536):
        self._cursor = policy.journal_cursor()
        self._graph = policy.graph
        self._buckets: dict[object, dict[tuple, object]] = {}
        self.version = policy.version
        self.max_entries = max_entries
        self.entries = 0
        self.hits = 0
        self.misses = 0
        self.evicted_subjects = 0
        self.evicted_entries = 0
        self.full_clears = 0
        self.advances = 0

    @staticmethod
    def _key(command: Command) -> tuple:
        return (command.action, command.source, command.target)

    def get(self, subject, command: Command):
        """The cached verdict, or ``None`` on a miss.  Verdicts are
        ``(privilege-or-None,)`` 1-tuples so a cached denial is
        distinguishable from a miss."""
        bucket = self._buckets.get(subject)
        if bucket is not None:
            verdict = bucket.get(self._key(command), _ABSENT)
            if verdict is not _ABSENT:
                self.hits += 1
                return (verdict,)
        self.misses += 1
        return None

    def put(self, subject, command: Command, verdict, version: int) -> None:
        """Insert a verdict decided at ``version`` — ignored unless it
        matches the cache's version (a publication may land between a
        read's decision and its insertion) or the command is not
        cacheable or the cache is full."""
        if version != self.version or not cacheable(command):
            return
        if self.entries >= self.max_entries:
            return
        bucket = self._buckets.get(subject)
        if bucket is None:
            bucket = self._buckets[subject] = {}
        key = self._key(command)
        if key not in bucket:
            self.entries += 1
        bucket[key] = verdict

    def advance(self, version: int) -> None:
        """Move the cache to ``version`` by consuming the journal and
        evicting exactly the entries the delta burst can have changed
        (see the module docstring for the soundness argument)."""
        if version == self.version:
            return
        self.advances += 1
        deltas = self._cursor.take()
        if deltas is None:
            # Journal expired under us: the one case we cannot evict
            # selectively.
            self._clear()
            self.version = version
            return
        summary = summarize_deltas(deltas)
        churned = summary.removed_vertices | summary.added_vertices
        if summary.weight == 0 and not churned:
            self.version = version
            return
        upstream, downstream = dirty_region(
            self._graph, summary.edge_sources, summary.edge_targets
        )
        source_dirty = upstream | churned
        target_dirty = downstream | churned
        buckets = self._buckets
        for subject in list(buckets):
            if subject in source_dirty:
                self.entries -= len(buckets[subject])
                self.evicted_entries += len(buckets[subject])
                del buckets[subject]
                self.evicted_subjects += 1
                continue
            bucket = buckets[subject]
            stale = [
                key for key in bucket
                if key[1] in source_dirty or key[2] in target_dirty
            ]
            for key in stale:
                del bucket[key]
            self.entries -= len(stale)
            self.evicted_entries += len(stale)
            if not bucket:
                del buckets[subject]
        self.version = version

    def _clear(self) -> None:
        self.evicted_entries += self.entries
        self._buckets.clear()
        self.entries = 0
        self.full_clears += 1

    def statistics(self) -> dict[str, int]:
        return {
            "version": self.version,
            "entries": self.entries,
            "subjects": len(self._buckets),
            "hits": self.hits,
            "misses": self.misses,
            "evicted_subjects": self.evicted_subjects,
            "evicted_entries": self.evicted_entries,
            "full_clears": self.full_clears,
            "advances": self.advances,
        }
