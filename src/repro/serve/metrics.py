"""Metrics surface for the serving layer.

Counters, gauges and log-bucketed latency histograms, all plain
in-process objects: the PDP increments them on its hot paths and
``snapshot()`` renders one JSON-able dict for the CLI, the bench and
the tests.  Latency percentiles (p50/p99) come from the histogram's
cumulative bucket walk — the production idiom (fixed memory, no sample
retention) — with the reported value being the geometric midpoint of
the bucket containing the requested quantile.
"""

from __future__ import annotations

import math


class LatencyHistogram:
    """Log-spaced latency buckets over seconds.

    Bucket ``i`` covers ``[start * factor**i, start * factor**(i+1))``;
    observations below ``start`` land in bucket 0 and observations past
    the last boundary land in the overflow bucket.  With the defaults
    (1 µs start, x2 factor, 36 buckets) the range spans 1 µs to ~68 s,
    ample for an in-process decision path.
    """

    __slots__ = ("start", "factor", "_log_factor", "_counts", "count",
                 "total", "max")

    def __init__(
        self, start: float = 1e-6, factor: float = 2.0, buckets: int = 36
    ):
        if start <= 0 or factor <= 1 or buckets < 1:
            raise ValueError("histogram needs start>0, factor>1, buckets>=1")
        self.start = start
        self.factor = factor
        self._log_factor = math.log(factor)
        self._counts = [0] * (buckets + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if seconds < self.start:
            index = 0
        else:
            index = int(
                math.log(seconds / self.start) / self._log_factor
            ) + 1
            if index >= len(self._counts):
                index = len(self._counts) - 1
        self._counts[index] += 1

    def _bucket_value(self, index: int) -> float:
        if index == 0:
            return self.start / 2
        low = self.start * self.factor ** (index - 1)
        return low * math.sqrt(self.factor)  # geometric midpoint

    def percentile(self, q: float) -> float:
        """The latency at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= rank and bucket:
                return min(self._bucket_value(index), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class PdpMetrics:
    """The PDP's metric registry: one instance per decision point.

    Counters are monotone; gauges reflect the most recent observation
    (plus a high-water mark for queue depth and batch size).
    """

    __slots__ = (
        "decisions", "mutations", "cache_hits", "cache_misses",
        "rate_limited", "batches", "read_batches", "reviews",
        "queue_depth", "queue_depth_peak", "last_batch_size",
        "max_batch_size", "decision_latency", "mutation_latency",
        "writer_failures", "writer_shed", "queue_shed",
        "deadline_expired", "wal_appends",
        "batch_apply_latency", "wal_append_latency",
    )

    def __init__(self):
        self.decisions = 0
        self.mutations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.rate_limited = 0
        self.batches = 0
        self.read_batches = 0
        self.reviews = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.last_batch_size = 0
        self.max_batch_size = 0
        self.decision_latency = LatencyHistogram()
        self.mutation_latency = LatencyHistogram()
        # Fault-tolerance surface: per-batch writer failures, writes
        # shed while the breaker is open, submits rejected by the
        # bounded queue, expired per-request deadlines, and the WAL's
        # append count/latency alongside the writer's apply latency.
        self.writer_failures = 0
        self.writer_shed = 0
        self.queue_shed = 0
        self.deadline_expired = 0
        self.wal_appends = 0
        self.batch_apply_latency = LatencyHistogram()
        self.wal_append_latency = LatencyHistogram()

    def observe_write_batch(self, size: int, depth: int) -> None:
        self.batches += 1
        self.mutations += size
        self.last_batch_size = size
        if size > self.max_batch_size:
            self.max_batch_size = size
        self.queue_depth = depth
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def snapshot(self) -> dict[str, object]:
        return {
            "decisions": self.decisions,
            "mutations": self.mutations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "rate_limited": self.rate_limited,
            "batches": self.batches,
            "read_batches": self.read_batches,
            "reviews": self.reviews,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "last_batch_size": self.last_batch_size,
            "max_batch_size": self.max_batch_size,
            "decision_latency": self.decision_latency.snapshot(),
            "mutation_latency": self.mutation_latency.snapshot(),
            "writer_failures": self.writer_failures,
            "writer_shed": self.writer_shed,
            "queue_shed": self.queue_shed,
            "deadline_expired": self.deadline_expired,
            "wal_appends": self.wal_appends,
            "batch_apply_latency": self.batch_apply_latency.snapshot(),
            "wal_append_latency": self.wal_append_latency.snapshot(),
        }
