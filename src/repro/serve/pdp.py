"""The asyncio policy-decision-point (PDP).

The serving layer the ROADMAP calls for: one
:class:`~repro.core.monitor.ReferenceMonitor` behind an asyncio
front, split into a **single writer** and **lock-free readers**.

Writer side
    Every mutation goes through :meth:`PolicyDecisionPoint.submit`,
    which enqueues the command and returns a future.  One writer task
    drains the queue into micro-batches — closed by a size watermark
    (``max_batch``) or a time watermark (``max_delay``), whichever
    trips first — and executes each batch as one
    ``submit_queue(batched=True, snapshot=True)`` transaction, so the
    packed-matrix kernel authorizes the whole batch in one sweep and
    the audit contract (batch-entry snapshot retained as
    ``last_snapshot``) is exactly the monitor's.  The per-request
    futures resolve to the returned :class:`ExecutionRecord`\\ s in
    queue order.

Reader side
    :meth:`check` / :meth:`check_many` never touch the writer's index.
    After each batch the writer *publishes* a fresh
    :class:`~repro.core.authz_index.ReviewSnapshot`; readers decide
    against whatever snapshot is currently published — an immutable
    object, so no locks — and requests arriving within one event-loop
    tick accumulate into a read window answered by a single
    ``authorizes_batch`` sweep.  A read is therefore pinned to one
    policy version, reported on its :class:`Decision` along with the
    snapshot's age (``staleness``).

Fault tolerance
    With a :class:`~repro.serve.wal.PolicyWal` attached, every
    accepted batch is hash-chained to disk and fsync'd **before** its
    futures resolve, and :meth:`PolicyDecisionPoint.recover` rebuilds
    policy + index + snapshot from the log alone by deterministic
    replay.  The writer runs supervised
    (:class:`~repro.serve.supervisor.WriterSupervisor`): a per-batch
    failure fails only that batch's futures with a typed
    :class:`~repro.serve.supervisor.WriterFailed` and the writer
    retries under exponential backoff; a crash loop opens a circuit
    breaker and the service degrades to read-only — snapshot reads
    keep answering at the pinned stale version (staleness reported,
    optionally bounded by ``max_staleness``) while writes shed fast.
    Backpressure is a bounded submit queue
    (:class:`~repro.serve.supervisor.QueueFull` carries
    ``retry_after``) plus per-request deadlines (``submit(...,
    timeout=)`` / ``check(..., deadline=)``).  No future ever hangs:
    shutdown, writer death and :meth:`kill` all resolve every pending
    future with a typed error.

In between sits the :class:`~repro.serve.cache.DecisionCache`
(journal-invalidated, selectively evicted on publication — see that
module for the soundness argument), a per-principal
:class:`~repro.serve.ratelimit.RateLimiter` with an injectable clock,
and a :class:`~repro.serve.metrics.PdpMetrics` registry.

Conformance is pinned the repo's established way: the suite in
``tests/serve/`` holds PDP decisions element-for-element identical to
a synchronous :class:`ReferenceMonitor` on replayed traces, fuzz
invariant 14 (:func:`repro.workloads.fuzz.fuzz_pdp`) interleaves
mutation bursts with concurrent read batches under churn on both
kernels, and fuzz invariant 15
(:func:`repro.workloads.fuzz.fuzz_crash_recovery`) kills the PDP at
every fault-injection point mid-trace and pins the recovered state
byte-identical to an uninterrupted oracle run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..core.authz_index import ReviewSnapshot
from ..core.commands import Command, CommandAction, ExecutionRecord, Mode
from ..core.entities import User
from ..core.monitor import ReferenceMonitor
from ..core.privileges import Grant, Privilege, Revoke
from ..errors import ReproError
from ..workloads.faults import FAULTS, CrashInjected
from .cache import DecisionCache
from .metrics import PdpMetrics
from .ratelimit import RateLimited, RateLimiter
from .supervisor import (
    DeadlineExceeded,
    QueueFull,
    ServiceStopped,
    SnapshotTooStale,
    WriterFailed,
    WriterSupervisor,
)
from .wal import PolicyWal, read_wal, repair_torn_tail, replay_wal, verify_chain

__all__ = ["Decision", "PolicyDecisionPoint", "as_command"]


@dataclass(frozen=True)
class Decision:
    """One PDP read verdict, pinned to the snapshot that made it."""

    allowed: bool
    #: the privilege that authorized the request (None when denied).
    authorized_by: Privilege | None
    #: the policy version the decision was made at.
    version: int
    #: True when the verdict came from the decision cache.
    cached: bool = False
    #: age of the answering snapshot in clock seconds — how long ago
    #: the version this decision is pinned to was published.  Grows
    #: while the writer is down or recovering (the degraded read-only
    #: mode); ~0 on a healthy write path.
    staleness: float = 0.0


def as_command(subject: User, request, target=None) -> Command:
    """Normalize a read request to a :class:`Command`.

    Accepts a :class:`Command` as-is (re-issued on behalf of
    ``subject``), a privilege term (``Grant(v, v')`` / ``Revoke(v,
    v')`` — "may ``subject`` exercise this?"), or an
    ``("grant"|"revoke", source, target)`` triple spelled as two
    arguments."""
    if isinstance(request, Command):
        if request.user == subject:
            return request
        return Command(
            subject, request.action, request.source, request.target
        )
    if isinstance(request, (Grant, Revoke)):
        action = (
            CommandAction.GRANT if isinstance(request, Grant)
            else CommandAction.REVOKE
        )
        source, privilege_target = request.edge
        return Command(subject, action, source, privilege_target)
    if isinstance(request, str) and target is not None:
        action = CommandAction(request)
        return Command(subject, action, target[0], target[1])
    raise ReproError(
        f"cannot interpret decision request {request!r} "
        "(expected a Command, a Grant/Revoke term, or "
        "('grant'|'revoke', (source, target)))"
    )


_REFRESH = object()  # writer-queue marker: publish without mutating
_SHUTDOWN = object()


class PolicyDecisionPoint:
    """An asyncio PDP over one index-backed refined monitor.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`); all coroutine methods must run on the loop that
    started it.  ``clock`` feeds the rate limiter, the latency
    histograms, the staleness surface and the supervisor's breaker,
    so a manual clock makes the whole surface deterministic.
    ``retain_history=True`` keeps every published snapshot and the
    applied batch log — the hooks the differential suites pin
    decisions with; serving deployments leave it off.

    Durability: pass ``wal`` (a :class:`~repro.serve.wal.PolicyWal`
    or a path) to hash-chain every accepted batch to disk.  An empty
    log gets a genesis record of the current policy; a non-empty log
    gets a ``rebase`` anchor, so the chain always resumes from the
    exact live policy (:meth:`recover` relies on this).  ``queue_limit``
    bounds the submit queue (load shedding via
    :class:`~repro.serve.supervisor.QueueFull`); ``max_staleness``
    bounds degraded reads (:class:`SnapshotTooStale` once the
    published snapshot is older while the writer is unhealthy).
    """

    def __init__(
        self,
        monitor: ReferenceMonitor | None = None,
        *,
        policy=None,
        compiled: bool = True,
        shards: int = 1,
        max_batch: int = 64,
        max_delay: float = 0.002,
        rate_limiter: RateLimiter | None = None,
        cache_size: int = 65536,
        clock=time.monotonic,
        retain_history: bool = False,
        wal: PolicyWal | str | None = None,
        queue_limit: int | None = None,
        max_staleness: float | None = None,
        supervisor: WriterSupervisor | None = None,
    ):
        if monitor is None:
            if policy is None:
                raise ReproError("PolicyDecisionPoint needs a monitor or a policy")
            monitor = ReferenceMonitor(
                policy,
                mode=Mode.REFINED,
                use_index=True,
                shards=shards,
                compiled=compiled,
            )
        if monitor.mode is not Mode.REFINED or monitor._index is None:
            raise ReproError(
                "PolicyDecisionPoint requires an index-backed refined "
                "monitor (mode=Mode.REFINED, use_index=True): the "
                "writer rides the batched submit-queue transaction"
            )
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        if queue_limit is not None and queue_limit < 1:
            raise ReproError(
                f"queue_limit must be >= 1 or None, got {queue_limit}"
            )
        self.monitor = monitor
        self.compiled = monitor.compiled
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.limiter = rate_limiter
        self.clock = clock
        self.metrics = PdpMetrics()
        self.cache = DecisionCache(monitor.policy, max_entries=cache_size)
        self.retain_history = retain_history
        self.history: dict[int, ReviewSnapshot] = {}
        self.batch_log: list[list[Command]] = []
        self.queue_limit = queue_limit
        self.max_staleness = max_staleness
        self.supervisor = supervisor or WriterSupervisor(clock=clock)
        self.wal: PolicyWal | None = None
        if wal is not None:
            if not isinstance(wal, PolicyWal):
                wal = PolicyWal(wal)
            if wal.next_seq == 0:
                wal.append_genesis(monitor.policy)
            else:
                # Re-anchor: whatever history precedes (a recovery, an
                # operator reattach), replay resumes from this exact
                # live policy — never from a silently diverged one.
                wal.append_rebase(monitor.policy)
            self.wal = wal
        self._snapshot = ReviewSnapshot(
            monitor.policy, compiled=self.compiled
        )
        self._published_at = self.clock()
        if retain_history:
            self.history[self._snapshot.version] = self._snapshot
        self._queue: asyncio.Queue = asyncio.Queue()
        self._writer: asyncio.Task | None = None
        #: the batch the writer is currently collecting/applying —
        #: entries here left the queue, so the drain must cover them
        #: too or a kill mid-collection would leak their futures.
        self._inflight: list | None = None
        self._window: list[tuple[User, Command, asyncio.Future]] = []
        self._drain_scheduled = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PolicyDecisionPoint":
        if self._writer is not None:
            raise ReproError("PolicyDecisionPoint already started")
        if self.supervisor.health == "dead":
            raise ServiceStopped(self.supervisor.last_error or "dead")
        self._stopping = False
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop()
        )
        return self

    async def stop(self) -> None:
        """Drain the mutation queue, apply the final batch, stop.

        Never hangs and never leaks: if the writer already died, the
        queued futures were failed at death; a cleanly stopping writer
        applies everything queued ahead of the shutdown marker and the
        loop's exit path fails anything that could remain."""
        if self._writer is None:
            return
        self._stopping = True
        writer = self._writer
        if not writer.done():
            self._queue.put_nowait(_SHUTDOWN)
        try:
            await writer
        except asyncio.CancelledError:
            pass
        self._writer = None
        self.supervisor.mark_stopped()
        if self.wal is not None:
            self.wal.close()

    def kill(self) -> None:
        """Abrupt death — the crash campaigns' kill switch, and the
        operator's last resort.  Cancels the writer without draining,
        fails every pending future with
        :class:`~repro.serve.supervisor.ServiceStopped` (no hangs, no
        leaks), and closes the WAL handle.  In-memory state is
        abandoned: bring the service back with :meth:`recover`."""
        self.supervisor.mark_dead("killed")
        self._stopping = True
        writer, self._writer = self._writer, None
        if writer is not None and not writer.done():
            writer.cancel()
        self._drain_pending()
        if self.wal is not None:
            self.wal.close()

    async def __aenter__(self) -> "PolicyDecisionPoint":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @classmethod
    def recover(
        cls,
        path,
        *,
        compiled: bool = True,
        shards: int = 1,
        expected_head: str | None = None,
        **kwargs,
    ) -> "PolicyDecisionPoint":
        """Rebuild a PDP from its write-ahead log alone.

        Truncates a torn tail (the one legitimate crash artifact —
        that batch was never acknowledged), verifies the full hash
        chain (against ``expected_head`` when an external anchor is
        known), deterministically replays every record through
        ``submit_queue(batched=True)``
        (:func:`~repro.serve.wal.replay_wal` — outcome and version
        tripwires included), and returns an **unstarted** PDP whose
        policy, index and published snapshot are byte-identical to the
        pre-crash service at its durable prefix (fuzz invariant 15).
        The log is reattached with a ``rebase`` anchor, so the chain
        continues across the crash.  ``kwargs`` pass through to the
        constructor (``max_batch``, ``rate_limiter``, ...); call
        :meth:`start` (or enter the context manager) to serve."""
        path = str(path)
        repair_torn_tail(path)
        records, _ = read_wal(path)
        verify_chain(records, expected_head=expected_head)
        monitor = replay_wal(records, compiled=compiled, shards=shards)
        return cls(monitor, wal=PolicyWal(path), **kwargs)

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    async def submit(
        self, command: Command, *, timeout: float | None = None
    ) -> ExecutionRecord:
        """Queue one mutation; resolves when its micro-batch applied
        (durably, when a WAL is attached).  ``timeout`` bounds the
        wait in real loop seconds — on expiry
        :class:`DeadlineExceeded` is raised, with the usual write
        ambiguity (the batch may still apply)."""
        [record] = await self.submit_many([command], timeout=timeout)
        return record

    async def submit_many(
        self, commands, *, timeout: float | None = None
    ) -> list[ExecutionRecord]:
        """Queue several mutations (still individually batched — the
        writer may coalesce them with other principals' commands).

        Sheds before spending anything: a stopped/dead service raises
        :class:`ServiceStopped`, an open circuit breaker
        :class:`WriterFailed`, a full bounded queue
        :class:`QueueFull` (with ``retry_after``), an already-expired
        ``timeout`` :class:`DeadlineExceeded` — all ahead of the
        rate-limiter spend and the enqueue."""
        commands = list(commands)
        if (
            self._writer is None
            or self._stopping
            or self.supervisor.health in ("stopped", "dead")
        ):
            raise ServiceStopped(
                "killed" if self.supervisor.health == "dead" else "stopped"
            )
        if not self.supervisor.accepting:
            self.metrics.writer_shed += len(commands)
            raise WriterFailed(
                "circuit breaker open; writes shed while degraded",
                health=self.supervisor.health,
            )
        if timeout is not None and timeout <= 0:
            self.metrics.deadline_expired += 1
            raise DeadlineExceeded("submit", 0.0)
        if not commands:
            return []
        if (
            self.queue_limit is not None
            and len(commands) > self.queue_limit
        ):
            # Not QueueFull: the batch exceeds the queue bound on its
            # own, so no amount of retrying can ever fit it.
            raise ReproError(
                f"batch of {len(commands)} commands exceeds "
                f"queue_limit {self.queue_limit} and can never be "
                "accepted; split it"
            )
        depth = self._queue.qsize()
        if (
            self.queue_limit is not None
            and depth + len(commands) > self.queue_limit
        ):
            self.metrics.queue_shed += 1
            per_batch = self.metrics.batch_apply_latency.mean or self.max_delay
            batches_ahead = depth // self.max_batch + 1
            raise QueueFull(
                depth, self.queue_limit,
                retry_after=max(self.max_delay, per_batch * batches_ahead),
            )
        if self.limiter is not None:
            # One atomic acquisition per principal for its whole share
            # of the batch: a rejected principal spends nothing, so a
            # retry after backoff cannot be starved by the front of
            # its own batch re-spending the refill.
            needed: dict[User, int] = {}
            for command in commands:
                needed[command.user] = needed.get(command.user, 0) + 1
            for principal, tokens in needed.items():
                try:
                    self.limiter.check(principal, float(tokens))
                except RateLimited:
                    self.metrics.rate_limited += 1
                    raise
        loop = asyncio.get_running_loop()
        started = self.clock()
        futures = []
        for command in commands:
            future = loop.create_future()
            futures.append(future)
            self._queue.put_nowait((command, future))
        if timeout is not None:
            done, pending = await asyncio.wait(futures, timeout=timeout)
            if pending:
                for future in pending:
                    future.cancel()
                for future in done:
                    if not future.cancelled():
                        future.exception()  # retrieved, not leaked
                self.metrics.deadline_expired += 1
                raise DeadlineExceeded("submit", timeout)
        results = await asyncio.gather(*futures, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        self.metrics.mutation_latency.observe(self.clock() - started)
        return list(results)

    async def refresh(self) -> int:
        """Republish the snapshot at the current policy state without
        mutating — the hook for out-of-band policy churn (tests,
        migrations).  Routed through the writer queue so publication
        order stays single-writer; with a WAL attached the drifted
        policy is re-anchored with a ``rebase`` record before
        publication.  Returns the published version."""
        if (
            self._writer is None
            or self._stopping
            or self.supervisor.health in ("stopped", "dead")
        ):
            raise ServiceStopped(
                "killed" if self.supervisor.health == "dead" else "stopped"
            )
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((_REFRESH, future))
        await future
        return self._snapshot.version

    async def _writer_loop(self) -> None:
        try:
            while True:
                item = await self._queue.get()
                if item is _SHUTDOWN:
                    break
                batch = [item]
                self._inflight = batch
                shutdown = False
                deadline = None
                while len(batch) < self.max_batch:
                    if self._queue.empty():
                        if deadline is None:
                            loop = asyncio.get_running_loop()
                            deadline = loop.time() + self.max_delay
                            timeout = self.max_delay
                        else:
                            timeout = deadline - asyncio.get_running_loop().time()
                        if timeout <= 0:
                            break
                        try:
                            item = await asyncio.wait_for(
                                self._queue.get(), timeout
                            )
                        except asyncio.TimeoutError:
                            break
                    else:
                        item = self._queue.get_nowait()
                    if item is _SHUTDOWN:
                        shutdown = True
                        break
                    batch.append(item)
                if not self.supervisor.allow_attempt():
                    # Breaker open: shed the whole batch fast, typed.
                    self.metrics.writer_shed += len(batch)
                    self._fail_batch(batch, WriterFailed(
                        "circuit breaker open; batch shed",
                        health=self.supervisor.health,
                    ))
                else:
                    try:
                        self._apply_batch(batch)
                        self.supervisor.record_success()
                    except CrashInjected as crash:
                        # A simulated kill -9: fatal, no retry.  The
                        # death path below is fully synchronous, so no
                        # submit can slip between it and the drain.
                        self._die(str(crash), batch, crash)
                        return
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:
                        try:
                            delay = self._handle_batch_failure(batch, error)
                        except CrashInjected as crash:
                            self._die(str(crash), batch, crash)
                            return
                        if delay > 0:
                            await asyncio.sleep(delay)
                if shutdown:
                    break
        except asyncio.CancelledError:
            if self.supervisor.health != "dead":
                self.supervisor.mark_dead("writer task cancelled")
            raise
        finally:
            # Whatever path ended the loop, nothing queued may hang.
            self._drain_pending()
            self.supervisor.mark_stopped()

    def _apply_batch(self, batch) -> None:
        """Execute one micro-batch as a submit-queue transaction,
        make it durable, and publish the post-batch snapshot.
        Synchronous on purpose: the whole apply/log/publish step
        happens within one event-loop tick, so readers see either the
        old or the new snapshot, never an intermediate — and futures
        resolve only *after* the fsync, so an acknowledged mutation
        is on disk."""
        depth = self._queue.qsize()
        refreshes = [entry for entry in batch if entry[0] is _REFRESH]
        entries = [entry for entry in batch if entry[0] is not _REFRESH]
        commands = [command for command, _ in entries]
        apply_started = self.clock()
        if FAULTS.active:
            FAULTS.hit("writer.before_apply")
        if (
            self.wal is not None
            and self.wal.last_version != self.monitor.policy.version
        ):
            # Out-of-band churn since the last append (refresh(), or
            # direct monitor use): anchor the drifted policy so replay
            # sees the same batch-entry state the kernel does.
            self.wal.append_rebase(self.monitor.policy)
        if commands:
            records = self.monitor.submit_queue(
                commands, batched=True, snapshot=True
            )
            self.metrics.observe_write_batch(len(commands), depth)
        else:
            records = []
        if FAULTS.active:
            FAULTS.hit("writer.after_apply")
        if self.wal is not None and commands:
            wal_started = self.clock()
            self.wal.append_batch(
                commands,
                [(record.executed, record.noop) for record in records],
                self.monitor.policy.version,
            )
            self.metrics.wal_appends += 1
            self.metrics.wal_append_latency.observe(
                self.clock() - wal_started
            )
        if FAULTS.active:
            FAULTS.hit("writer.before_publish")
        self._publish()
        self.metrics.batch_apply_latency.observe(
            self.clock() - apply_started
        )
        if FAULTS.active:
            FAULTS.hit("writer.before_resolve")
        for (_, future), record in zip(entries, records):
            if not future.done():
                future.set_result(record)
        for _, future in refreshes:
            if not future.done():
                future.set_result(None)
        if self.retain_history and commands:
            self.batch_log.append(commands)

    def _handle_batch_failure(self, batch, error: Exception) -> float:
        """Per-batch supervision: fail only this batch's futures
        (typed), resync the WAL if the apply half-landed, republish,
        and hand back the supervisor's backoff delay."""
        self.metrics.writer_failures += 1
        delay = self.supervisor.record_failure(error)
        self._resync_wal()
        # Publish whatever state exists: a failure after the apply
        # mutated the policy must still reach readers and advance the
        # decision cache past the mutation.  fresh=False: unless the
        # version actually advanced, this republish must not reset the
        # staleness clock — a writer stuck failing would otherwise
        # keep reported staleness near zero during exactly the outage
        # max_staleness is meant to bound.
        self._publish(fresh=False)
        self._fail_batch(batch, WriterFailed(
            "batch apply failed",
            health=self.supervisor.health,
            cause=error,
        ))
        return delay

    def _resync_wal(self) -> None:
        """After a mid-batch failure the policy may hold mutations the
        log never saw (applied, then the append failed).  A ``rebase``
        record closes that durability gap; if even the rebase cannot
        be written, the breaker is forced open — accepting more writes
        would only widen the gap, while reads stay safe."""
        wal = self.wal
        if wal is None or wal.last_version == self.monitor.policy.version:
            return
        try:
            wal.append_rebase(self.monitor.policy)
        except CrashInjected:
            raise
        except Exception as resync_error:
            self.supervisor.force_degrade(
                f"WAL resync failed: {resync_error}"
            )

    def _fail_batch(self, batch, error: ReproError) -> None:
        for _, future in batch:
            if not future.done():
                future.set_exception(error)

    def _die(self, reason: str, batch, cause: Exception) -> None:
        """Fatal writer death (simulated process kill): mark dead and
        fail the in-flight batch.  Runs synchronously — by the time
        any other coroutine runs, the health is ``dead`` and every
        pending future is resolved with a typed error."""
        self.supervisor.mark_dead(reason)
        self._fail_batch(batch, WriterFailed(
            reason, health="dead", cause=cause,
        ))

    def _drain_pending(self) -> None:
        """Fail everything still queued — no future survives the
        writer.  The hung-future fix: stop(), kill() and every death
        path funnel through here."""
        if self.supervisor.health == "dead":
            error = ServiceStopped(self.supervisor.last_error or "dead")
        else:
            error = ServiceStopped("stopped")
        inflight, self._inflight = self._inflight, None
        if inflight:
            # Resolved entries are skipped by the done() guard, so a
            # stale pointer to an applied batch is harmless.
            for _, future in inflight:
                if not future.done():
                    future.set_exception(error)
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _SHUTDOWN:
                continue
            _, future = item
            if not future.done():
                future.set_exception(error)

    def _publish(self, fresh: bool = True) -> None:
        """Capture and publish a fresh reader snapshot of the current
        policy, then advance the decision cache to its version by
        selective journal-driven eviction.

        ``fresh=True`` (every successful pass through the writer,
        batches and refreshes alike) restamps ``_published_at``; the
        failure path passes False so the staleness clock only resets
        when the version actually advanced — a same-version republish
        from a failing writer proves nothing about freshness."""
        snapshot = ReviewSnapshot(
            self.monitor.policy, compiled=self.compiled
        )
        if fresh or snapshot.version != self._snapshot.version:
            self._published_at = self.clock()
        self._snapshot = snapshot
        self.cache.advance(snapshot.version)
        if self.retain_history:
            self.history[snapshot.version] = snapshot

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The currently published policy version."""
        return self._snapshot.version

    @property
    def last_snapshot(self) -> ReviewSnapshot:
        """The currently published reader snapshot."""
        return self._snapshot

    @property
    def health(self) -> str:
        """The writer's health state (see
        :class:`~repro.serve.supervisor.WriterSupervisor`)."""
        return self.supervisor.health

    def _staleness(self) -> float:
        """Clock seconds since the current snapshot was published."""
        return max(0.0, self.clock() - self._published_at)

    async def check(
        self, subject: User, request, target=None, *,
        deadline: float | None = None,
    ) -> Decision:
        """Decide one request for ``subject`` against the latest
        published snapshot (see :func:`as_command` for accepted
        request shapes).  Raises :class:`RateLimited` when the
        subject's bucket is empty, :class:`DeadlineExceeded` when
        ``deadline`` (a ``clock()`` timestamp) has already passed —
        checked at entry, before any cache or index work."""
        [decision] = await self.check_many(
            subject, [(request, target)], deadline=deadline
        )
        return decision

    async def check_many(
        self, subject: User, requests, *, deadline: float | None = None
    ) -> list[Decision]:
        """Batch :meth:`check`: one rate-limit acquisition of
        ``len(requests)`` tokens, one cache pass, and the misses ride
        the shared read window's ``authorizes_batch`` sweep.

        Reads keep answering while the writer is down (the degraded
        read-only mode) — pinned to the last published snapshot, with
        the growing ``staleness`` reported per decision and bounded by
        ``max_staleness`` (:class:`SnapshotTooStale`) when configured."""
        now = self.clock()
        if deadline is not None and now >= deadline:
            self.metrics.deadline_expired += 1
            raise DeadlineExceeded("check", now - deadline)
        staleness = self._staleness()
        if (
            self.max_staleness is not None
            and staleness > self.max_staleness
            and self.supervisor.health != "serving"
        ):
            raise SnapshotTooStale(staleness, self.max_staleness)
        commands = []
        for request in requests:
            if isinstance(request, tuple) and len(request) == 2 and (
                isinstance(request[0], (Command, Grant, Revoke, str))
            ):
                commands.append(as_command(subject, request[0], request[1]))
            else:
                commands.append(as_command(subject, request))
        if not commands:
            return []
        if self.limiter is not None:
            try:
                self.limiter.check(subject, float(len(commands)))
            except RateLimited:
                self.metrics.rate_limited += 1
                raise
        started = self.clock()
        decisions: list = [None] * len(commands)
        pending: list[asyncio.Future] = []
        positions: list[int] = []
        for position, command in enumerate(commands):
            hit = self.cache.get(subject, command)
            if hit is not None:
                self.metrics.cache_hits += 1
                (verdict,) = hit
                decisions[position] = Decision(
                    verdict is not None, verdict, self.cache.version,
                    cached=True, staleness=staleness,
                )
            else:
                self.metrics.cache_misses += 1
                pending.append(self._enqueue_read(subject, command))
                positions.append(position)
        if pending:
            for position, decision in zip(
                positions, await asyncio.gather(*pending)
            ):
                decisions[position] = decision
        self.metrics.decisions += len(commands)
        self.metrics.decision_latency.observe(self.clock() - started)
        return decisions

    def _enqueue_read(self, subject: User, command: Command) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._window.append((subject, command, future))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain_reads)
        return future

    def _drain_reads(self) -> None:
        """Answer the accumulated read window in one batch sweep
        against the published snapshot.  Runs as a loop callback, so
        the snapshot cannot be republished mid-sweep."""
        self._drain_scheduled = False
        window, self._window = self._window, []
        if not window:
            return
        snapshot = self._snapshot
        verdicts = snapshot.authorizes_batch(
            [(subject, command) for subject, command, _ in window]
        )
        self.metrics.read_batches += 1
        version = snapshot.version
        staleness = self._staleness()
        for (subject, command, future), verdict in zip(window, verdicts):
            self.cache.put(subject, command, verdict, version)
            if not future.done():
                future.set_result(
                    Decision(
                        verdict is not None, verdict, version,
                        staleness=staleness,
                    )
                )

    async def review(
        self, subjects, principal: User | None = None
    ) -> dict[User, frozenset]:
        """Grantable entity pairs for a population, answered at one
        pinned version via the bulk review sweep
        (:meth:`AuthorizationIndex.grantable_pairs_bulk`).  When a
        ``principal`` (the auditor) is given, the sweep costs them one
        token per reviewed subject."""
        subjects = list(subjects)
        if self.limiter is not None and principal is not None and subjects:
            try:
                self.limiter.check(principal, float(len(subjects)))
            except RateLimited:
                self.metrics.rate_limited += 1
                raise
        self.metrics.reviews += 1
        return self._snapshot.grantable_pairs_bulk(subjects)

    def statistics(self) -> dict[str, object]:
        """Metrics plus cache, writer-health, queue, staleness, rate
        limiter and WAL counters — one JSON-able dict."""
        stats = self.metrics.snapshot()
        stats["cache"] = self.cache.statistics()
        stats["version"] = self.version
        stats["writer"] = self.supervisor.snapshot()
        stats["staleness"] = self._staleness()
        stats["queue"] = {
            "depth": self._queue.qsize(),
            "limit": self.queue_limit,
        }
        if self.limiter is not None:
            stats["rate_limiter"] = self.limiter.statistics()
        if self.wal is not None:
            stats["wal"] = self.wal.statistics()
        return stats
