"""The asyncio policy-decision-point (PDP).

The serving layer the ROADMAP calls for: one
:class:`~repro.core.monitor.ReferenceMonitor` behind an asyncio
front, split into a **single writer** and **lock-free readers**.

Writer side
    Every mutation goes through :meth:`PolicyDecisionPoint.submit`,
    which enqueues the command and returns a future.  One writer task
    drains the queue into micro-batches — closed by a size watermark
    (``max_batch``) or a time watermark (``max_delay``), whichever
    trips first — and executes each batch as one
    ``submit_queue(batched=True, snapshot=True)`` transaction, so the
    packed-matrix kernel authorizes the whole batch in one sweep and
    the audit contract (batch-entry snapshot retained as
    ``last_snapshot``) is exactly the monitor's.  The per-request
    futures resolve to the returned :class:`ExecutionRecord`\\ s in
    queue order.

Reader side
    :meth:`check` / :meth:`check_many` never touch the writer's index.
    After each batch the writer *publishes* a fresh
    :class:`~repro.core.authz_index.ReviewSnapshot`; readers decide
    against whatever snapshot is currently published — an immutable
    object, so no locks — and requests arriving within one event-loop
    tick accumulate into a read window answered by a single
    ``authorizes_batch`` sweep.  A read is therefore pinned to one
    policy version, reported on its :class:`Decision`.

In between sits the :class:`~repro.serve.cache.DecisionCache`
(journal-invalidated, selectively evicted on publication — see that
module for the soundness argument), a per-principal
:class:`~repro.serve.ratelimit.RateLimiter` with an injectable clock,
and a :class:`~repro.serve.metrics.PdpMetrics` registry.

Conformance is pinned the repo's established way: the suite in
``tests/serve/`` holds PDP decisions element-for-element identical to
a synchronous :class:`ReferenceMonitor` on replayed traces, and fuzz
invariant 14 (:func:`repro.workloads.fuzz.fuzz_pdp`) interleaves
mutation bursts with concurrent read batches under churn on both
kernels, pinning every decision at its snapshot version.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..core.authz_index import ReviewSnapshot
from ..core.commands import Command, CommandAction, ExecutionRecord, Mode
from ..core.entities import User
from ..core.monitor import ReferenceMonitor
from ..core.privileges import Grant, Privilege, Revoke
from ..errors import ReproError
from .cache import DecisionCache
from .metrics import PdpMetrics
from .ratelimit import RateLimited, RateLimiter

__all__ = ["Decision", "PolicyDecisionPoint", "as_command"]


@dataclass(frozen=True)
class Decision:
    """One PDP read verdict, pinned to the snapshot that made it."""

    allowed: bool
    #: the privilege that authorized the request (None when denied).
    authorized_by: Privilege | None
    #: the policy version the decision was made at.
    version: int
    #: True when the verdict came from the decision cache.
    cached: bool = False


def as_command(subject: User, request, target=None) -> Command:
    """Normalize a read request to a :class:`Command`.

    Accepts a :class:`Command` as-is (re-issued on behalf of
    ``subject``), a privilege term (``Grant(v, v')`` / ``Revoke(v,
    v')`` — "may ``subject`` exercise this?"), or an
    ``("grant"|"revoke", source, target)`` triple spelled as two
    arguments."""
    if isinstance(request, Command):
        if request.user == subject:
            return request
        return Command(
            subject, request.action, request.source, request.target
        )
    if isinstance(request, (Grant, Revoke)):
        action = (
            CommandAction.GRANT if isinstance(request, Grant)
            else CommandAction.REVOKE
        )
        source, privilege_target = request.edge
        return Command(subject, action, source, privilege_target)
    if isinstance(request, str) and target is not None:
        action = CommandAction(request)
        return Command(subject, action, target[0], target[1])
    raise ReproError(
        f"cannot interpret decision request {request!r} "
        "(expected a Command, a Grant/Revoke term, or "
        "('grant'|'revoke', (source, target)))"
    )


_REFRESH = object()  # writer-queue marker: publish without mutating
_SHUTDOWN = object()


class PolicyDecisionPoint:
    """An asyncio PDP over one index-backed refined monitor.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`); all coroutine methods must run on the loop that
    started it.  ``clock`` feeds both the rate limiter and the latency
    histograms, so a manual clock makes the whole surface
    deterministic.  ``retain_history=True`` keeps every published
    snapshot and the applied batch log — the hooks the differential
    suites pin decisions with; serving deployments leave it off.
    """

    def __init__(
        self,
        monitor: ReferenceMonitor | None = None,
        *,
        policy=None,
        compiled: bool = True,
        shards: int = 1,
        max_batch: int = 64,
        max_delay: float = 0.002,
        rate_limiter: RateLimiter | None = None,
        cache_size: int = 65536,
        clock=time.monotonic,
        retain_history: bool = False,
    ):
        if monitor is None:
            if policy is None:
                raise ReproError("PolicyDecisionPoint needs a monitor or a policy")
            monitor = ReferenceMonitor(
                policy,
                mode=Mode.REFINED,
                use_index=True,
                shards=shards,
                compiled=compiled,
            )
        if monitor.mode is not Mode.REFINED or monitor._index is None:
            raise ReproError(
                "PolicyDecisionPoint requires an index-backed refined "
                "monitor (mode=Mode.REFINED, use_index=True): the "
                "writer rides the batched submit-queue transaction"
            )
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self.monitor = monitor
        self.compiled = monitor.compiled
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.limiter = rate_limiter
        self.clock = clock
        self.metrics = PdpMetrics()
        self.cache = DecisionCache(monitor.policy, max_entries=cache_size)
        self.retain_history = retain_history
        self.history: dict[int, ReviewSnapshot] = {}
        self.batch_log: list[list[Command]] = []
        self._snapshot = ReviewSnapshot(
            monitor.policy, compiled=self.compiled
        )
        if retain_history:
            self.history[self._snapshot.version] = self._snapshot
        self._queue: asyncio.Queue = asyncio.Queue()
        self._writer: asyncio.Task | None = None
        self._window: list[tuple[User, Command, asyncio.Future]] = []
        self._drain_scheduled = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PolicyDecisionPoint":
        if self._writer is not None:
            raise ReproError("PolicyDecisionPoint already started")
        self._stopping = False
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop()
        )
        return self

    async def stop(self) -> None:
        """Drain the mutation queue, apply the final batch, stop."""
        if self._writer is None:
            return
        self._stopping = True
        await self._queue.put(_SHUTDOWN)
        await self._writer
        self._writer = None

    async def __aenter__(self) -> "PolicyDecisionPoint":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    async def submit(self, command: Command) -> ExecutionRecord:
        """Queue one mutation; resolves when its micro-batch applied."""
        [record] = await self.submit_many([command])
        return record

    async def submit_many(self, commands) -> list[ExecutionRecord]:
        """Queue several mutations (still individually batched — the
        writer may coalesce them with other principals' commands)."""
        commands = list(commands)
        if self._writer is None or self._stopping:
            raise ReproError("PolicyDecisionPoint is not serving")
        if self.limiter is not None:
            # One atomic acquisition per principal for its whole share
            # of the batch: a rejected principal spends nothing, so a
            # retry after backoff cannot be starved by the front of
            # its own batch re-spending the refill.
            needed: dict[User, int] = {}
            for command in commands:
                needed[command.user] = needed.get(command.user, 0) + 1
            for principal, tokens in needed.items():
                try:
                    self.limiter.check(principal, float(tokens))
                except RateLimited:
                    self.metrics.rate_limited += 1
                    raise
        loop = asyncio.get_running_loop()
        started = self.clock()
        futures = []
        for command in commands:
            future = loop.create_future()
            futures.append(future)
            self._queue.put_nowait((command, future))
        records = await asyncio.gather(*futures)
        self.metrics.mutation_latency.observe(self.clock() - started)
        return records

    async def refresh(self) -> int:
        """Republish the snapshot at the current policy state without
        mutating — the hook for out-of-band policy churn (tests,
        migrations).  Routed through the writer queue so publication
        order stays single-writer.  Returns the published version."""
        if self._writer is None or self._stopping:
            raise ReproError("PolicyDecisionPoint is not serving")
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((_REFRESH, future))
        await future
        return self._snapshot.version

    async def _writer_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            shutdown = False
            deadline = None
            while len(batch) < self.max_batch:
                if self._queue.empty():
                    if deadline is None:
                        loop = asyncio.get_running_loop()
                        deadline = loop.time() + self.max_delay
                        timeout = self.max_delay
                    else:
                        timeout = deadline - asyncio.get_running_loop().time()
                    if timeout <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                else:
                    item = self._queue.get_nowait()
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(item)
            self._apply_batch(batch)
            if shutdown:
                break

    def _apply_batch(self, batch) -> None:
        """Execute one micro-batch as a submit-queue transaction and
        publish the post-batch snapshot.  Synchronous on purpose: the
        whole apply/publish step happens within one event-loop tick,
        so readers see either the old or the new snapshot, never an
        intermediate."""
        depth = self._queue.qsize()
        refreshes = [entry for entry in batch if entry[0] is _REFRESH]
        entries = [entry for entry in batch if entry[0] is not _REFRESH]
        commands = [command for command, _ in entries]
        if commands:
            records = self.monitor.submit_queue(
                commands, batched=True, snapshot=True
            )
            self.metrics.observe_write_batch(len(commands), depth)
        else:
            records = []
        self._publish()
        for (_, future), record in zip(entries, records):
            if not future.cancelled():
                future.set_result(record)
        for _, future in refreshes:
            if not future.cancelled():
                future.set_result(None)
        if self.retain_history and commands:
            self.batch_log.append(commands)

    def _publish(self) -> None:
        """Capture and publish a fresh reader snapshot of the current
        policy, then advance the decision cache to its version by
        selective journal-driven eviction."""
        snapshot = ReviewSnapshot(
            self.monitor.policy, compiled=self.compiled
        )
        self._snapshot = snapshot
        self.cache.advance(snapshot.version)
        if self.retain_history:
            self.history[snapshot.version] = snapshot

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The currently published policy version."""
        return self._snapshot.version

    @property
    def last_snapshot(self) -> ReviewSnapshot:
        """The currently published reader snapshot."""
        return self._snapshot

    async def check(self, subject: User, request, target=None) -> Decision:
        """Decide one request for ``subject`` against the latest
        published snapshot (see :func:`as_command` for accepted
        request shapes).  Raises :class:`RateLimited` when the
        subject's bucket is empty."""
        [decision] = await self.check_many(subject, [(request, target)])
        return decision

    async def check_many(self, subject: User, requests) -> list[Decision]:
        """Batch :meth:`check`: one rate-limit acquisition of
        ``len(requests)`` tokens, one cache pass, and the misses ride
        the shared read window's ``authorizes_batch`` sweep."""
        commands = []
        for request in requests:
            if isinstance(request, tuple) and len(request) == 2 and (
                isinstance(request[0], (Command, Grant, Revoke, str))
            ):
                commands.append(as_command(subject, request[0], request[1]))
            else:
                commands.append(as_command(subject, request))
        if not commands:
            return []
        if self.limiter is not None:
            try:
                self.limiter.check(subject, float(len(commands)))
            except RateLimited:
                self.metrics.rate_limited += 1
                raise
        started = self.clock()
        decisions: list = [None] * len(commands)
        pending: list[asyncio.Future] = []
        positions: list[int] = []
        for position, command in enumerate(commands):
            hit = self.cache.get(subject, command)
            if hit is not None:
                self.metrics.cache_hits += 1
                (verdict,) = hit
                decisions[position] = Decision(
                    verdict is not None, verdict, self.cache.version,
                    cached=True,
                )
            else:
                self.metrics.cache_misses += 1
                pending.append(self._enqueue_read(subject, command))
                positions.append(position)
        if pending:
            for position, decision in zip(
                positions, await asyncio.gather(*pending)
            ):
                decisions[position] = decision
        self.metrics.decisions += len(commands)
        self.metrics.decision_latency.observe(self.clock() - started)
        return decisions

    def _enqueue_read(self, subject: User, command: Command) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._window.append((subject, command, future))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain_reads)
        return future

    def _drain_reads(self) -> None:
        """Answer the accumulated read window in one batch sweep
        against the published snapshot.  Runs as a loop callback, so
        the snapshot cannot be republished mid-sweep."""
        self._drain_scheduled = False
        window, self._window = self._window, []
        if not window:
            return
        snapshot = self._snapshot
        verdicts = snapshot.authorizes_batch(
            [(subject, command) for subject, command, _ in window]
        )
        self.metrics.read_batches += 1
        version = snapshot.version
        for (subject, command, future), verdict in zip(window, verdicts):
            self.cache.put(subject, command, verdict, version)
            if not future.cancelled():
                future.set_result(
                    Decision(verdict is not None, verdict, version)
                )

    async def review(
        self, subjects, principal: User | None = None
    ) -> dict[User, frozenset]:
        """Grantable entity pairs for a population, answered at one
        pinned version via the bulk review sweep
        (:meth:`AuthorizationIndex.grantable_pairs_bulk`).  When a
        ``principal`` (the auditor) is given, the sweep costs them one
        token per reviewed subject."""
        subjects = list(subjects)
        if self.limiter is not None and principal is not None and subjects:
            try:
                self.limiter.check(principal, float(len(subjects)))
            except RateLimited:
                self.metrics.rate_limited += 1
                raise
        self.metrics.reviews += 1
        return self._snapshot.grantable_pairs_bulk(subjects)

    def statistics(self) -> dict[str, object]:
        """Metrics plus cache counters, one JSON-able dict."""
        stats = self.metrics.snapshot()
        stats["cache"] = self.cache.statistics()
        stats["version"] = self.version
        return stats
