"""Per-principal token-bucket rate limiting for the serving layer.

One bucket per principal, refilled lazily from an injectable monotonic
clock: nothing ticks in the background, so a limiter driven by a fake
clock is fully deterministic (the conformance and fuzz suites lean on
this — a rate-limited decision is re-issued after advancing the clock
and must then match the oracle exactly).
"""

from __future__ import annotations

import time

from ..errors import ReproError


class RateLimited(ReproError):
    """Raised by the PDP when a principal's token bucket is empty.

    Carries ``retry_after`` (seconds until the bucket holds enough
    tokens again) so callers can back off precisely instead of
    polling."""

    def __init__(self, principal, retry_after: float):
        self.principal = principal
        self.retry_after = retry_after
        super().__init__(
            f"{principal} rate limited; retry in {retry_after:.6f}s"
        )


class TokenBucket:
    """One principal's bucket: ``tokens`` grows at ``rate``/s up to
    ``capacity``; an acquisition spends whole tokens atomically."""

    __slots__ = ("capacity", "rate", "tokens", "updated")

    def __init__(self, capacity: float, rate: float, now: float):
        self.capacity = capacity
        self.rate = rate
        self.tokens = capacity
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.rate
            )
        self.updated = now

    def try_acquire(self, now: float, tokens: float) -> bool:
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def wait_time(self, now: float, tokens: float) -> float:
        """Seconds until ``tokens`` could be acquired (0 if now)."""
        self._refill(now)
        deficit = tokens - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class RateLimiter:
    """Per-principal token buckets over a shared injectable clock.

    ``capacity`` is the burst size, ``rate`` the sustained
    requests-per-second refill.  The clock defaults to
    :func:`time.monotonic`; tests inject a manual clock and advance it
    explicitly.
    """

    def __init__(
        self,
        capacity: float,
        rate: float,
        clock=time.monotonic,
    ):
        if capacity <= 0 or rate <= 0:
            raise ValueError(
                f"capacity and rate must be positive, got "
                f"capacity={capacity}, rate={rate}"
            )
        self.capacity = capacity
        self.rate = rate
        self.clock = clock
        self._buckets: dict[object, TokenBucket] = {}

    def _bucket(self, principal) -> TokenBucket:
        bucket = self._buckets.get(principal)
        if bucket is None:
            bucket = self._buckets[principal] = TokenBucket(
                self.capacity, self.rate, self.clock()
            )
        return bucket

    def try_acquire(self, principal, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` from the principal's bucket if available."""
        return self._bucket(principal).try_acquire(self.clock(), tokens)

    def wait_time(self, principal, tokens: float = 1.0) -> float:
        """Seconds until the principal could acquire ``tokens``."""
        return self._bucket(principal).wait_time(self.clock(), tokens)

    def check(self, principal, tokens: float = 1.0) -> None:
        """:meth:`try_acquire` or raise :class:`RateLimited`."""
        bucket = self._bucket(principal)
        now = self.clock()
        if not bucket.try_acquire(now, tokens):
            raise RateLimited(principal, bucket.wait_time(now, tokens))
