"""Per-principal token-bucket rate limiting for the serving layer.

One bucket per principal, refilled lazily from an injectable monotonic
clock: nothing ticks in the background, so a limiter driven by a fake
clock is fully deterministic (the conformance and fuzz suites lean on
this — a rate-limited decision is re-issued after advancing the clock
and must then match the oracle exactly).
"""

from __future__ import annotations

import time

from ..errors import ReproError


class RateLimited(ReproError):
    """Raised by the PDP when a principal's token bucket is empty.

    Carries ``retry_after`` (seconds until the bucket holds enough
    tokens again) so callers can back off precisely instead of
    polling."""

    def __init__(self, principal, retry_after: float):
        self.principal = principal
        self.retry_after = retry_after
        super().__init__(
            f"{principal} rate limited; retry in {retry_after:.6f}s"
        )


class TokenBucket:
    """One principal's bucket: ``tokens`` grows at ``rate``/s up to
    ``capacity``; an acquisition spends whole tokens atomically."""

    __slots__ = ("capacity", "rate", "tokens", "updated")

    def __init__(self, capacity: float, rate: float, now: float):
        self.capacity = capacity
        self.rate = rate
        self.tokens = capacity
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.rate
            )
        self.updated = now

    def try_acquire(self, now: float, tokens: float) -> bool:
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def wait_time(self, now: float, tokens: float) -> float:
        """Seconds until ``tokens`` could be acquired (0 if now)."""
        self._refill(now)
        deficit = tokens - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class RateLimiter:
    """Per-principal token buckets over a shared injectable clock.

    ``capacity`` is the burst size, ``rate`` the sustained
    requests-per-second refill.  The clock defaults to
    :func:`time.monotonic`; tests inject a manual clock and advance it
    explicitly.

    The bucket map is **bounded**: at most ``max_principals`` buckets
    are retained (default 65536 — a few MB even under millions of
    distinct principals).  Eviction is LRU with an idleness
    preference: among the least-recently-used tail, a bucket whose
    lazy refill would already be full is evicted first — dropping it
    is *lossless*, since a fresh bucket starts full anyway.  Only when
    no scanned tail bucket is idle-full does absolute LRU apply; the
    evicted principal then gets a slightly *fresher* bucket on return
    (a full burst allowance), which errs on the side of admitting —
    never double-charges.
    """

    #: how deep into the LRU tail to look for a losslessly evictable
    #: (fully refilled) bucket before falling back to absolute LRU.
    _EVICTION_SCAN = 8

    def __init__(
        self,
        capacity: float,
        rate: float,
        clock=time.monotonic,
        max_principals: int | None = 65536,
    ):
        if capacity <= 0 or rate <= 0:
            raise ValueError(
                f"capacity and rate must be positive, got "
                f"capacity={capacity}, rate={rate}"
            )
        if max_principals is not None and max_principals < 1:
            raise ValueError(
                f"max_principals must be >= 1 or None, got {max_principals}"
            )
        self.capacity = capacity
        self.rate = rate
        self.clock = clock
        self.max_principals = max_principals
        self.evicted_buckets = 0
        # Insertion order doubles as recency order: _bucket() re-inserts
        # on every touch, so iteration starts at the LRU end.
        self._buckets: dict[object, TokenBucket] = {}

    def _evict(self, now: float) -> None:
        scanned = 0
        fallback = None
        for principal, bucket in self._buckets.items():
            if fallback is None:
                fallback = principal
            bucket._refill(now)
            if bucket.tokens >= bucket.capacity:
                del self._buckets[principal]
                self.evicted_buckets += 1
                return
            scanned += 1
            if scanned >= self._EVICTION_SCAN:
                break
        del self._buckets[fallback]
        self.evicted_buckets += 1

    def _bucket(self, principal) -> TokenBucket:
        bucket = self._buckets.pop(principal, None)
        if bucket is None:
            if (
                self.max_principals is not None
                and len(self._buckets) >= self.max_principals
            ):
                self._evict(self.clock())
            bucket = TokenBucket(self.capacity, self.rate, self.clock())
        self._buckets[principal] = bucket  # (re-)insert at MRU end
        return bucket

    def statistics(self) -> dict[str, object]:
        return {
            "principals": len(self._buckets),
            "max_principals": self.max_principals,
            "evicted_buckets": self.evicted_buckets,
        }

    def try_acquire(self, principal, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` from the principal's bucket if available."""
        return self._bucket(principal).try_acquire(self.clock(), tokens)

    def wait_time(self, principal, tokens: float = 1.0) -> float:
        """Seconds until the principal could acquire ``tokens``."""
        return self._bucket(principal).wait_time(self.clock(), tokens)

    def check(self, principal, tokens: float = 1.0) -> None:
        """:meth:`try_acquire` or raise :class:`RateLimited`."""
        bucket = self._bucket(principal)
        now = self.clock()
        if not bucket.try_acquire(now, tokens):
            raise RateLimited(principal, bucket.wait_time(now, tokens))
