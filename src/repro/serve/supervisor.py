"""Writer supervision: typed failures, backoff, and a crash-loop
circuit breaker.

The PDP's single writer task used to be a single point of silent
failure — one exception killed the loop and every queued future hung
forever.  This module supplies the pieces that make it supervised:

* the typed error surface (:class:`WriterFailed`, :class:`QueueFull`,
  :class:`DeadlineExceeded`, :class:`ServiceStopped`,
  :class:`SnapshotTooStale`) — every way a request can fail resolves
  its future with one of these, never a hang;
* :class:`WriterSupervisor`, the restart state machine: per-batch
  failures fail only the affected futures and re-arm the writer under
  exponential backoff; a crash loop (``breaker_threshold`` consecutive
  failures) opens a circuit breaker that sheds writes fast while reads
  keep serving the pinned snapshot (the degraded read-only mode), with
  a half-open probe after ``breaker_reset`` seconds.

Health is a small enum-by-string surface (``serving`` / ``backoff`` /
``degraded`` / ``stopped`` / ``dead``) exposed through
``PolicyDecisionPoint.statistics()["writer"]`` — ``dead`` is reserved
for fatal events (a :class:`~repro.workloads.faults.CrashInjected`
simulated process death, or :meth:`PolicyDecisionPoint.kill`), after
which only recovery from the WAL brings the service back.
"""

from __future__ import annotations

import time

from ..errors import ReproError

__all__ = [
    "DeadlineExceeded",
    "QueueFull",
    "ServiceStopped",
    "SnapshotTooStale",
    "WriterFailed",
    "WriterSupervisor",
]


class WriterFailed(ReproError):
    """A mutation batch failed in the writer.

    Resolves (never hangs) every future of the affected batch; carries
    the writer's health at failure time and the underlying cause.  A
    request failed this way is *ambiguous the way any distributed
    write timeout is*: the batch may or may not have applied before
    the failure — callers re-check rather than blindly retry."""

    def __init__(self, reason: str, health: str = "serving",
                 cause: BaseException | None = None):
        self.reason = reason
        self.health = health
        self.cause = cause
        message = f"writer failed ({health}): {reason}"
        if cause is not None:
            message += f" [{type(cause).__name__}: {cause}]"
        super().__init__(message)


class QueueFull(ReproError):
    """The bounded submit queue is at capacity — load was shed before
    the request spent anything.  ``retry_after`` estimates when the
    writer will have drained enough backlog to accept it."""

    def __init__(self, depth: int, limit: int, retry_after: float):
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"submit queue full ({depth}/{limit}); "
            f"retry in {retry_after:.6f}s"
        )


class DeadlineExceeded(ReproError):
    """A per-request deadline expired.

    For reads the check runs at entry — before any cache or index
    work.  For writes the request may still apply after the caller
    gave up (the batch was already queued); like :class:`WriterFailed`
    this is the standard write-timeout ambiguity."""

    def __init__(self, operation: str, waited: float):
        self.operation = operation
        self.waited = waited
        super().__init__(
            f"{operation} deadline exceeded after {waited:.6f}s"
        )


class ServiceStopped(ReproError):
    """The PDP is stopped, killed, or dead — the request was failed
    (not leaked) and will never apply."""

    def __init__(self, reason: str = "stopped"):
        self.reason = reason
        super().__init__(f"PolicyDecisionPoint is not serving ({reason})")


class SnapshotTooStale(ReproError):
    """Degraded reads exceeded the configured staleness bound: the
    published snapshot is older than ``max_staleness`` and the writer
    is not healthy enough to refresh it."""

    def __init__(self, staleness: float, bound: float):
        self.staleness = staleness
        self.bound = bound
        super().__init__(
            f"published snapshot is {staleness:.6f}s stale "
            f"(bound {bound:.6f}s) and the writer is down"
        )


class WriterSupervisor:
    """The writer's restart policy as a small explicit state machine.

    States (``health``):

    ``serving``
        Healthy; batches apply normally.
    ``backoff``
        At least one recent failure; the writer sleeps
        ``base_delay * factor**(n-1)`` (capped at ``max_delay``)
        before the next attempt.  Failures here fail only their own
        batch's futures.
    ``degraded``
        The breaker opened (``breaker_threshold`` consecutive
        failures): writes are shed fast with :class:`WriterFailed`
        while snapshot reads keep serving.  After ``breaker_reset``
        seconds one probe batch is allowed through (half-open);
        success closes the breaker, failure re-opens it and restarts
        the clock.
    ``stopped`` / ``dead``
        Terminal: clean shutdown, or a fatal crash /
        :meth:`~repro.serve.pdp.PolicyDecisionPoint.kill`.  ``dead``
        additionally means in-memory state is untrustworthy — recover
        from the WAL.

    All timing flows through the injected ``clock``, so the tests
    drive the breaker deterministically.
    """

    def __init__(
        self,
        base_delay: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 5.0,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        clock=time.monotonic,
    ):
        if breaker_threshold < 1:
            raise ReproError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.clock = clock
        self.health = "serving"
        self.consecutive_failures = 0
        self.total_failures = 0
        self.restarts = 0
        self.breaker_opened_at: float | None = None
        self.breaker_trips = 0
        self.last_error: str | None = None

    # -- transitions ---------------------------------------------------
    def record_success(self) -> None:
        """A batch applied: close the breaker, reset the backoff."""
        if self.health in ("backoff", "degraded"):
            self.restarts += 1
        self.consecutive_failures = 0
        self.breaker_opened_at = None
        self.health = "serving"

    def record_failure(self, error: BaseException) -> float:
        """A batch failed: returns the backoff delay to sleep before
        the next attempt (0.0 once the breaker is open — the writer
        sheds instead of sleeping)."""
        self.total_failures += 1
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        if self.consecutive_failures >= self.breaker_threshold:
            if self.health != "degraded":
                self.breaker_trips += 1
            self.health = "degraded"
            self.breaker_opened_at = self.clock()
            return 0.0
        self.health = "backoff"
        delay = self.base_delay * (
            self.factor ** (self.consecutive_failures - 1)
        )
        return min(delay, self.max_delay)

    def allow_attempt(self) -> bool:
        """May the writer try the next batch?  True while closed or
        backing off; while the breaker is open, True only for the
        half-open probe after ``breaker_reset`` elapsed."""
        if self.health != "degraded":
            return True
        if self.breaker_opened_at is None:
            return True
        return self.clock() - self.breaker_opened_at >= self.breaker_reset

    def force_degrade(self, reason: str) -> None:
        """Open the breaker immediately, skipping the backoff ladder.

        Used when continuing to accept writes is known-unsafe before
        the threshold trips — e.g. the WAL resync after a half-landed
        batch failed, so every further accepted write would widen the
        durability gap.  Reads keep serving; the normal half-open
        probe path applies."""
        self.total_failures += 1
        self.consecutive_failures = max(
            self.consecutive_failures, self.breaker_threshold
        )
        self.last_error = reason
        if self.health != "degraded":
            self.breaker_trips += 1
        self.health = "degraded"
        self.breaker_opened_at = self.clock()

    def mark_dead(self, reason: str) -> None:
        self.health = "dead"
        self.last_error = reason

    def mark_stopped(self) -> None:
        if self.health != "dead":
            self.health = "stopped"

    # -- surface -------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.health == "degraded"

    @property
    def accepting(self) -> bool:
        """Whether new submits should be accepted at all (degraded
        sheds fast unless a half-open probe is due; stopped/dead
        always shed)."""
        if self.health in ("stopped", "dead"):
            return False
        if self.health == "degraded":
            return self.allow_attempt()
        return True

    def snapshot(self) -> dict:
        return {
            "health": self.health,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "restarts": self.restarts,
            "breaker_trips": self.breaker_trips,
            "breaker_open": self.health == "degraded",
            "last_error": self.last_error,
        }
