"""The policy write-ahead log: durable, hash-chained, replayable.

Reuses the append/replay idiom of the kvlog backend
(:mod:`repro.dbms.backends.kvlog`) for the PDP's mutation stream:
every accepted micro-batch becomes one canonical JSON line, fsync'd
**before** the batch's futures resolve, so an acknowledged mutation
survives any process death.  Three record kinds:

``genesis``
    The full policy document and version at the moment the WAL was
    attached — the replay starting point.
``batch``
    One applied micro-batch: the commands (via
    :func:`~repro.core.serialization.command_to_dict`), the
    executed/noop outcome per command (a replay-divergence tripwire —
    batched ``submit_queue`` decisions are deterministic functions of
    batch-entry state, so replay must reproduce them exactly), and the
    post-batch policy version.
``rebase``
    A fresh full policy document mid-log.  Appended when the policy
    version drifted past what the WAL recorded — out-of-band churn
    through :meth:`~repro.serve.pdp.PolicyDecisionPoint.refresh`, or
    the writer resynchronizing after an append failure — so replay
    never has to reconstruct mutations the log never saw.

Tamper evidence is a SHA-256 hash chain: each record's ``digest``
covers its ``seq``, ``kind``, ``payload`` and the *predecessor's
digest* (``prev``), over a canonical encoding (sorted keys, tight
separators).  :func:`verify_chain` therefore detects any single-record
**mutation** (digest mismatch), **omission** (seq gap / prev-link
break) and — given the expected head digest — **truncation** of the
tail.  A *torn tail* (one final line without its newline) is the
legitimate crash artifact: the batch it belonged to was never
acknowledged (fsync precedes resolution), so recovery may drop it;
everything else is corruption.

Recovery is deterministic replay: :func:`replay_wal` rebuilds the
policy from the genesis document, re-aligns the version counter
(:meth:`~repro.graph.digraph.Digraph.fast_forward_version`), and
re-executes every batch through ``submit_queue(batched=True)`` —
byte-identical to the uninterrupted run at the durable prefix, on
either kernel (fuzz invariant 15 pins exactly this).
"""

from __future__ import annotations

import hashlib
import json
import os

from ..core.commands import Mode
from ..core.monitor import ReferenceMonitor
from ..core.serialization import (
    command_from_dict,
    command_to_dict,
    policy_from_dict,
    policy_to_dict,
)
from ..errors import ReproError
from ..workloads.faults import FAULTS, CrashInjected

__all__ = [
    "GENESIS_PREV",
    "PolicyWal",
    "WalError",
    "WalRecord",
    "read_wal",
    "repair_torn_tail",
    "replay_wal",
    "verify_chain",
]

#: The ``prev`` digest of the genesis record (no predecessor).
GENESIS_PREV = "0" * 64

_KINDS = ("genesis", "batch", "rebase")


class WalError(ReproError):
    """A corrupt, tampered, or misused write-ahead log."""


class WalRecord:
    """One parsed log record (immutable value object)."""

    __slots__ = ("seq", "kind", "payload", "prev", "digest")

    def __init__(self, seq: int, kind: str, payload: dict,
                 prev: str, digest: str):
        self.seq = seq
        self.kind = kind
        self.payload = payload
        self.prev = prev
        self.digest = digest

    def __repr__(self) -> str:
        return (
            f"WalRecord(seq={self.seq}, kind={self.kind!r}, "
            f"digest={self.digest[:12]}...)"
        )


def _canonical(seq: int, kind: str, payload: dict, prev: str) -> bytes:
    """The digest pre-image: the record minus its own digest, in
    canonical JSON (sorted keys, tight separators) — the encoding the
    chain is defined over, independent of line formatting."""
    return json.dumps(
        {"kind": kind, "payload": payload, "prev": prev, "seq": seq},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")


def _digest(seq: int, kind: str, payload: dict, prev: str) -> str:
    return hashlib.sha256(_canonical(seq, kind, payload, prev)).hexdigest()


def _encode(record: WalRecord) -> bytes:
    return json.dumps(
        {
            "digest": record.digest,
            "kind": record.kind,
            "payload": record.payload,
            "prev": record.prev,
            "seq": record.seq,
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8") + b"\n"


def _parse_line(data: bytes, line_number: int) -> WalRecord:
    try:
        document = json.loads(data)
    except ValueError as error:
        raise WalError(
            f"WAL line {line_number} is not valid JSON: {error}"
        ) from None
    if not isinstance(document, dict):
        raise WalError(f"WAL line {line_number} is not a record object")
    seq = document.get("seq")
    kind = document.get("kind")
    payload = document.get("payload")
    prev = document.get("prev")
    digest = document.get("digest")
    if (
        not isinstance(seq, int)
        or kind not in _KINDS
        or not isinstance(payload, dict)
        or not isinstance(prev, str)
        or not isinstance(digest, str)
    ):
        raise WalError(f"WAL line {line_number} is malformed: {data[:80]!r}")
    return WalRecord(seq, kind, payload, prev, digest)


def read_wal(
    path: str, tolerate_torn_tail: bool = False
) -> tuple[list[WalRecord], int | None]:
    """Parse the log at ``path`` into records.

    Returns ``(records, torn_offset)``: ``torn_offset`` is the byte
    offset of a torn tail (a final line missing its newline — the one
    legitimate crash artifact, dropped from ``records``), or None for
    a cleanly terminated file.  With ``tolerate_torn_tail=False`` a
    torn tail raises instead — the strict mode ``verify`` uses.  Any
    malformed *newline-terminated* line is corruption and always
    raises :class:`WalError`."""
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[WalRecord] = []
    torn_offset: int | None = None
    offset = 0
    line_number = 0
    while offset < len(data):
        line_number += 1
        end = data.find(b"\n", offset)
        if end == -1:
            # Unterminated final line: the torn-write artifact.
            if not tolerate_torn_tail:
                raise WalError(
                    f"WAL has a torn tail at byte {offset} (line "
                    f"{line_number}): recover with "
                    "tolerate_torn_tail=True, or the file is corrupt"
                )
            torn_offset = offset
            break
        line = data[offset:end]
        if line.strip():
            records.append(_parse_line(line, line_number))
        offset = end + 1
    return records, torn_offset


def repair_torn_tail(path: str) -> int | None:
    """Truncate a torn tail off the log at ``path`` so appends can
    resume on a clean record boundary.  Returns the truncation offset,
    or None when the file was already cleanly terminated.  The dropped
    batch was never acknowledged (fsync precedes future resolution),
    so no caller was told it survived."""
    _, torn_offset = read_wal(path, tolerate_torn_tail=True)
    if torn_offset is not None:
        with open(path, "rb+") as handle:
            handle.truncate(torn_offset)
            handle.flush()
            os.fsync(handle.fileno())
    return torn_offset


def verify_chain(
    records: list[WalRecord], expected_head: str | None = None
) -> str:
    """Verify the full tamper-evidence contract; returns the head
    digest.  Raises :class:`WalError` naming the first violated link:

    * the log is non-empty and starts with a ``genesis`` at seq 0
      whose ``prev`` is the all-zero digest;
    * sequence numbers are contiguous (an omitted record breaks this
      even if the tamperer re-links ``prev``);
    * every record's stored digest matches a recomputation over its
      canonical encoding (mutation detection);
    * every record's ``prev`` equals its predecessor's digest
      (omission/reorder detection — re-sequencing without re-hashing
      breaks here);
    * with ``expected_head``, the final record's digest matches it
      (tail-truncation detection: a truncated log is internally
      consistent, so the head must be anchored outside the file —
      the live WAL's in-memory head, or an operator-recorded anchor).
    """
    if not records:
        raise WalError("empty WAL: no genesis record")
    head = GENESIS_PREV
    for position, record in enumerate(records):
        if record.seq != position:
            raise WalError(
                f"sequence break at record {position}: stored seq "
                f"{record.seq} (omitted or reordered record)"
            )
        if position == 0 and record.kind != "genesis":
            raise WalError(
                f"record 0 is {record.kind!r}, expected genesis"
            )
        if position > 0 and record.kind == "genesis":
            raise WalError(f"unexpected genesis at record {position}")
        if record.prev != head:
            raise WalError(
                f"hash chain broken at record {position}: prev "
                f"{record.prev[:12]}... does not match predecessor "
                f"digest {head[:12]}..."
            )
        recomputed = _digest(
            record.seq, record.kind, record.payload, record.prev
        )
        if recomputed != record.digest:
            raise WalError(
                f"digest mismatch at record {position}: stored "
                f"{record.digest[:12]}..., recomputed "
                f"{recomputed[:12]}... (record mutated)"
            )
        head = record.digest
    if expected_head is not None and head != expected_head:
        raise WalError(
            f"head digest {head[:12]}... does not match expected "
            f"{expected_head[:12]}... (log truncated or diverged)"
        )
    return head


def replay_wal(
    records: list[WalRecord],
    compiled: bool = True,
    shards: int = 1,
) -> ReferenceMonitor:
    """Deterministically rebuild the pre-crash monitor from verified
    ``records``: policy document + version fast-forward at genesis and
    every rebase, one ``submit_queue(batched=True)`` transaction per
    batch record.  Each batch's recorded executed/noop outcomes and
    post-batch version are cross-checked — a mismatch means the log
    does not describe this codebase's deterministic decision function
    and replay must not silently continue.  ``compiled`` picks the
    kernel; the rebuilt *state* is kernel-independent (invariant 15
    pins both)."""
    monitor: ReferenceMonitor | None = None
    for record in records:
        if record.kind in ("genesis", "rebase"):
            policy = policy_from_dict(record.payload.get("policy"))
            version = record.payload.get("version")
            if not isinstance(version, int):
                raise WalError(
                    f"record {record.seq}: missing policy version"
                )
            policy.graph.fast_forward_version(version)
            monitor = ReferenceMonitor(
                policy,
                mode=Mode.REFINED,
                use_index=True,
                shards=shards,
                compiled=compiled,
            )
            continue
        if monitor is None:
            raise WalError(f"batch record {record.seq} before genesis")
        payload = record.payload
        try:
            commands = [
                command_from_dict(document)
                for document in payload.get("commands", [])
            ]
        except ReproError as error:
            raise WalError(
                f"record {record.seq}: undecodable command: {error}"
            ) from None
        outcomes = payload.get("outcomes")
        version = payload.get("version")
        replayed = monitor.submit_queue(commands, batched=True)
        observed = [
            [record_out.executed, record_out.noop]
            for record_out in replayed
        ]
        if outcomes is not None and observed != outcomes:
            raise WalError(
                f"replay divergence at record {record.seq}: recorded "
                f"outcomes {outcomes} != replayed {observed}"
            )
        if isinstance(version, int) and monitor.policy.version != version:
            raise WalError(
                f"replay divergence at record {record.seq}: recorded "
                f"version {version} != replayed "
                f"{monitor.policy.version}"
            )
    if monitor is None:
        raise WalError("empty WAL: nothing to replay")
    return monitor


class PolicyWal:
    """An append handle over one hash-chained policy log.

    Opening an existing file parses and chains it (so appends continue
    the chain); a torn tail is refused here — run
    :func:`repair_torn_tail` first (the recovery entry point
    :meth:`PolicyDecisionPoint.recover` does) so appends never land
    mid-record.  ``fsync=False`` trades durability for speed (the
    bench's no-durability baseline); the serving default is True.
    """

    def __init__(self, path, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._handle = None
        self.head = GENESIS_PREV
        self.next_seq = 0
        self.records = 0
        self.batches = 0
        self.bytes_written = 0
        #: policy version after the last appended record (None before
        #: genesis) — the writer's drift tripwire.
        self.last_version: int | None = None
        #: non-None once the on-disk state no longer matches this
        #: handle's chain position (a simulated mid-append death, or an
        #: append failure whose rollback failed too): every further
        #: append is refused — writing on ambiguous state would
        #: duplicate a seq and corrupt the chain for good.
        self._poisoned: str | None = None
        if os.path.exists(self.path) and os.path.getsize(self.path):
            existing, _ = read_wal(self.path, tolerate_torn_tail=False)
            self.head = verify_chain(existing)
            self.next_seq = len(existing)
            self.records = len(existing)
            self.batches = sum(
                1 for record in existing if record.kind == "batch"
            )
            self.bytes_written = os.path.getsize(self.path)
            for record in reversed(existing):
                version = record.payload.get("version")
                if isinstance(version, int):
                    self.last_version = version
                    break

    # -- appends -------------------------------------------------------
    def _append(self, kind: str, payload: dict) -> WalRecord:
        if self._poisoned is not None:
            raise WalError(
                f"WAL at {self.path} refuses appends: {self._poisoned}"
            )
        if FAULTS.active:
            FAULTS.hit("wal.before_append")
        record = WalRecord(
            self.next_seq, kind, payload, self.head,
            _digest(self.next_seq, kind, payload, self.head),
        )
        line = _encode(record)
        if self._handle is None:
            self._handle = open(self.path, "ab")
        if FAULTS.active:
            torn = FAULTS.torn_prefix("wal.torn_write", line)
            if torn is not None:
                # A simulated process death mid-write: the prefix
                # stays on disk (recovery repairs it) and — exactly
                # like a real kill — no cleanup runs, so the handle is
                # done for.
                self._poisoned = "simulated crash mid-append (torn write)"
                self._handle.write(torn)
                self._handle.flush()
                os.fsync(self._handle.fileno())
                raise CrashInjected("wal.torn_write")
        try:
            self._handle.write(line)
            self._handle.flush()
            if FAULTS.active:
                FAULTS.hit("wal.before_fsync")
            if self.fsync:
                os.fsync(self._handle.fileno())
        except CrashInjected:
            # A simulated process death after the line (possibly)
            # reached the file: no cleanup, recovery decides what
            # survived the page cache.
            self._poisoned = "simulated crash mid-append"
            raise
        except BaseException as error:
            # The line may be wholly or partly on disk while
            # head/next_seq still describe the pre-append state; a
            # supervised retry or rebase on top would duplicate the
            # seq and break the chain permanently.  Wind the file back
            # to the last durable record boundary first.
            self._rollback(error)
            raise
        self.head = record.digest
        self.next_seq += 1
        self.records += 1
        self.bytes_written += len(line)
        version = payload.get("version")
        if isinstance(version, int):
            self.last_version = version
        if FAULTS.active:
            FAULTS.hit("wal.after_append")
        return record

    def _rollback(self, cause: BaseException) -> None:
        """Truncate the file back to ``bytes_written`` — the end of the
        last *successful* append, the repair_torn_tail idiom applied
        eagerly — so the failed line never coexists with its retry.
        If even the rollback fails, post-write state is ambiguous and
        the handle is poisoned: further appends are refused (the
        writer's resync path then forces the breaker open, and reads
        keep serving)."""
        try:
            if self._handle is not None:
                try:
                    # Drop any bytes still buffered from the failed
                    # write before truncating on a fresh handle.
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
            with open(self.path, "rb+") as handle:
                handle.truncate(self.bytes_written)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            self._poisoned = (
                f"append failed ({cause}) and rollback to byte "
                f"{self.bytes_written} failed too ({error})"
            )

    def append_genesis(self, policy) -> WalRecord:
        """Record the replay starting point; must be the first append."""
        if self.next_seq != 0:
            raise WalError(
                f"genesis must be record 0, log already holds "
                f"{self.next_seq} record(s)"
            )
        return self._append(
            "genesis",
            {"policy": policy_to_dict(policy), "version": policy.version},
        )

    def append_batch(self, commands, outcomes, version: int) -> WalRecord:
        """Record one applied micro-batch (commands, executed/noop
        outcome per command, post-batch policy version)."""
        if self.next_seq == 0:
            raise WalError("cannot append a batch before genesis")
        record = self._append(
            "batch",
            {
                "commands": [
                    command_to_dict(command) for command in commands
                ],
                "outcomes": [list(outcome) for outcome in outcomes],
                "version": version,
            },
        )
        self.batches += 1
        return record

    def append_rebase(self, policy) -> WalRecord:
        """Record a full policy document mid-log — the resync record
        for out-of-band churn and append-failure recovery."""
        if self.next_seq == 0:
            raise WalError("cannot rebase before genesis")
        return self._append(
            "rebase",
            {"policy": policy_to_dict(policy), "version": policy.version},
        )

    # -- maintenance ---------------------------------------------------
    def verify(self, expected_head: str | None = None) -> dict:
        """Re-read and verify the file on disk; returns a stats dict.
        With no explicit anchor, the handle's in-memory head pins the
        tail — so truncation behind a live WAL is caught too."""
        records, _ = read_wal(self.path, tolerate_torn_tail=False)
        anchor = expected_head
        if anchor is None and self.records:
            anchor = self.head
        head = verify_chain(records, expected_head=anchor)
        return {
            "records": len(records),
            "batches": sum(1 for r in records if r.kind == "batch"),
            "head": head,
            "version": next(
                (
                    r.payload["version"] for r in reversed(records)
                    if isinstance(r.payload.get("version"), int)
                ),
                None,
            ),
        }

    @property
    def poisoned(self) -> str | None:
        """Why this handle refuses appends, or None while healthy."""
        return self._poisoned

    def statistics(self) -> dict:
        return {
            "path": self.path,
            "records": self.records,
            "batches": self.batches,
            "bytes": self.bytes_written,
            "head": self.head,
            "version": self.last_version,
            "fsync": self.fsync,
            "poisoned": self._poisoned,
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
