"""Workload generators: random, hospital-shaped, enterprise-shaped,
and churn policies/traces for the tests and benchmarks."""

from .churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    differential_churn,
    differential_shard_churn,
    run_churn,
)
from .generators import (
    PolicyShape,
    layered_hierarchy,
    nested_grant,
    random_policy,
)
from .dbms import Operation, TraceResult, run_trace
from .hospital import (
    HospitalShape,
    guarded_hospital_database,
    hospital_policy,
    hospital_query_trace,
)
from .faults import (
    FAULTS,
    FAIL_POINTS,
    CrashInjected,
    Fault,
    FaultInjector,
    INJECTION_POINTS,
    InjectedFailure,
    differential_append_failure,
    differential_crash_recovery,
    wal_tamper_campaign,
)
from .fuzz import (
    FuzzReport,
    fuzz_crash_recovery,
    fuzz_index_churn,
    fuzz_many,
    fuzz_monitor,
    fuzz_sharded_index,
)
from .enterprise import (
    EnterpriseShape,
    delegation_targets,
    enterprise_policy,
    enterprise_query_trace,
    guarded_enterprise_database,
)

__all__ = [
    "ChurnShape",
    "churn_policy",
    "churn_trace",
    "differential_churn",
    "differential_shard_churn",
    "run_churn",
    "PolicyShape",
    "layered_hierarchy",
    "nested_grant",
    "random_policy",
    "HospitalShape",
    "guarded_hospital_database",
    "hospital_policy",
    "hospital_query_trace",
    "Operation", "TraceResult", "run_trace",
    "FAULTS", "FAIL_POINTS", "CrashInjected", "Fault", "FaultInjector",
    "INJECTION_POINTS", "InjectedFailure",
    "differential_append_failure",
    "differential_crash_recovery", "wal_tamper_campaign",
    "FuzzReport", "fuzz_crash_recovery", "fuzz_index_churn",
    "fuzz_many", "fuzz_monitor", "fuzz_sharded_index",
    "EnterpriseShape",
    "delegation_targets",
    "enterprise_policy",
    "enterprise_query_trace",
    "guarded_enterprise_database",
]
