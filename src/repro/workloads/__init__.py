"""Workload generators: random, hospital-shaped, enterprise-shaped,
and churn policies/traces for the tests and benchmarks."""

from .churn import (
    ChurnShape,
    churn_policy,
    churn_trace,
    differential_churn,
    run_churn,
)
from .generators import (
    PolicyShape,
    layered_hierarchy,
    nested_grant,
    random_policy,
)
from .hospital import HospitalShape, hospital_policy
from .fuzz import FuzzReport, fuzz_index_churn, fuzz_many, fuzz_monitor
from .enterprise import (
    EnterpriseShape,
    delegation_targets,
    enterprise_policy,
)

__all__ = [
    "ChurnShape",
    "churn_policy",
    "churn_trace",
    "differential_churn",
    "run_churn",
    "PolicyShape",
    "layered_hierarchy",
    "nested_grant",
    "random_policy",
    "HospitalShape",
    "hospital_policy",
    "FuzzReport", "fuzz_index_churn", "fuzz_many", "fuzz_monitor",
    "EnterpriseShape",
    "delegation_targets",
    "enterprise_policy",
]
