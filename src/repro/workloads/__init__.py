"""Workload generators: random, hospital-shaped, and enterprise-shaped
policies for the tests and benchmarks."""

from .generators import (
    PolicyShape,
    layered_hierarchy,
    nested_grant,
    random_policy,
)
from .hospital import HospitalShape, hospital_policy
from .fuzz import FuzzReport, fuzz_many, fuzz_monitor
from .enterprise import (
    EnterpriseShape,
    delegation_targets,
    enterprise_policy,
)

__all__ = [
    "PolicyShape",
    "layered_hierarchy",
    "nested_grant",
    "random_policy",
    "HospitalShape",
    "hospital_policy",
    "FuzzReport", "fuzz_many", "fuzz_monitor",
    "EnterpriseShape",
    "delegation_targets",
    "enterprise_policy",
]
