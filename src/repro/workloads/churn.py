"""Interleaved grant/revoke/query policy-churn workloads.

The reference monitor's hot loop in a large deployment is *policy
churn*: administrative mutations (user-role assignments come and go,
occasionally the hierarchy or an administrator's authority changes)
interleaved with bursts of authorization queries.  A full-rebuild
authorization index makes this workload quadratic — every mutation
pays a rebuild proportional to the whole user population on the next
query.  This module generates deterministic churn traces used by

* ``benchmarks/bench_index_churn.py`` — incremental vs. full-rebuild
  index maintenance, and
* the differential churn harness in :mod:`repro.workloads.fuzz` —
  incremental answers must equal a from-scratch rebuild after every
  mutation.

The generated organization: a layered role hierarchy, a population of
ordinary users assigned into it, and a small set of administrators
whose roles hold ¤/♦ privileges over user-role and role-role edges.
Mutations are dominated by UA churn (the realistic case — and the one
where incremental maintenance shines, because a user-role edge dirties
only that user's index entry), with occasional RH and PA churn to
exercise wide dirty regions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.commands import Command, CommandAction, grant_cmd, revoke_cmd
from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant, Revoke, perm
from .generators import PolicyShape, random_policy


@dataclass(frozen=True)
class ChurnShape:
    """Parameters of a churn workload."""

    n_users: int = 200
    n_roles: int = 24
    n_admins: int = 4
    layers: int = 4
    mutations: int = 120
    queries_per_mutation: int = 4
    #: probability split of mutation kinds (rest is RH/PA churn)
    ua_fraction: float = 0.85
    #: membership/assignment density — the defaults (1 role per user,
    #: 1 privilege per role) keep the original thin organization; the
    #: kernel benchmark raises both so per-subject reachable sets have
    #: realistic enterprise weight (tens of vertices, not a handful).
    roles_per_user: int = 1
    privileges_per_role: int = 1
    #: user-specific ¤/♦ delegations each top role's administrator
    #: entry carries — delegated administration grows with the
    #: organization, so the kernel benchmark scales it up.
    delegations_per_top_role: int = 4


@dataclass(frozen=True)
class ChurnOp:
    """One trace step: apply ``command``'s edge (kind="mutate") or probe
    the index with it (kind="query")."""

    kind: str  # "mutate" | "query"
    command: Command


@dataclass
class ChurnStats:
    """Outcome counters of one trace replay."""

    mutations: int = 0
    queries: int = 0
    permitted: int = 0
    decisions: list[bool] = field(default_factory=list)


def churn_policy(seed: int, shape: ChurnShape = ChurnShape()) -> Policy:
    """The initial organization for a churn trace (deterministic)."""
    rng = random.Random(seed)
    policy = Policy()
    roles = [Role(f"r{i}") for i in range(shape.n_roles)]
    for role in roles:
        policy.add_role(role)
    per_layer = max(1, shape.n_roles // shape.layers)
    for index, role in enumerate(roles):
        layer = index // per_layer
        juniors = roles[(layer + 1) * per_layer:(layer + 2) * per_layer]
        if juniors:
            policy.add_inheritance(role, rng.choice(juniors))
        policy.assign_privilege(role, perm("read", f"doc{index}"))
        for extra in range(1, shape.privileges_per_role):
            # Deterministic (no rng draw): keeps the default-shape
            # stream byte-identical to the original generator.
            policy.assign_privilege(
                role, perm("write" if extra % 2 else "exec",
                           f"doc{index}.{extra}")
            )

    users = [User(f"u{i}") for i in range(shape.n_users)]
    for user in users:
        policy.add_user(user)
        policy.assign_user(user, rng.choice(roles))
        for _ in range(1, shape.roles_per_user):
            policy.assign_user(user, rng.choice(roles))

    admin_role = Role("admin")
    policy.add_role(admin_role)
    top = roles[:per_layer]
    for senior in top:
        # Administrators may assign anyone into a top role (and hence,
        # by rule 2, into anything it inherits) and revoke exact edges.
        policy.assign_privilege(admin_role, Grant(senior, senior))
        for user in rng.sample(
            users, min(shape.delegations_per_top_role, len(users))
        ):
            policy.assign_privilege(admin_role, Grant(user, senior))
            policy.assign_privilege(admin_role, Revoke(user, senior))
    for i in range(shape.n_admins):
        admin = User(f"admin{i}")
        policy.add_user(admin)
        policy.assign_user(admin, admin_role)
    return policy


def churn_trace(
    seed: int,
    shape: ChurnShape = ChurnShape(),
    mutation_users: list[User] | None = None,
    mutation_roles: list[Role] | None = None,
) -> list[ChurnOp]:
    """A deterministic interleaved mutate/query trace for the policy
    built by :func:`churn_policy` with the same seed and shape.

    ``mutation_users`` restricts which users the UA mutations touch —
    the *localized churn* case (e.g. one department re-orged while the
    rest of the organization only issues queries), used by
    ``benchmarks/bench_shard_scaling.py`` to show that repair work
    follows the dirty region, not the population.  Setting it also
    drops the occasional RH churn (whose dirty region is global by
    nature).  ``mutation_roles`` additionally restricts which roles the
    localized UA edges attach to (mutating below the top layer keeps
    administrator rectangles — whose source regions are the top roles'
    ancestor sets — out of the dirty region).  Queries still probe the
    whole population either way.
    """
    rng = random.Random(seed ^ 0x5EED)
    users = [User(f"u{i}") for i in range(shape.n_users)]
    admins = [User(f"admin{i}") for i in range(shape.n_admins)]
    roles = [Role(f"r{i}") for i in range(shape.n_roles)]
    churned = users if mutation_users is None else list(mutation_users)
    churned_roles = roles if mutation_roles is None else list(mutation_roles)
    ops: list[ChurnOp] = []
    for _ in range(shape.mutations):
        issuer = rng.choice(admins)
        if mutation_users is not None or rng.random() < shape.ua_fraction:
            edge = (rng.choice(churned), rng.choice(churned_roles))
        else:
            senior, junior = rng.sample(roles, 2)
            edge = (senior, junior)
        maker = grant_cmd if rng.random() < 0.6 else revoke_cmd
        ops.append(ChurnOp("mutate", maker(issuer, *edge)))
        for _ in range(shape.queries_per_mutation):
            probe_user = rng.choice(admins + users[:8])
            probe_edge = (rng.choice(users), rng.choice(roles))
            ops.append(ChurnOp("query", grant_cmd(probe_user, *probe_edge)))
    return ops


def run_churn(policy: Policy, index, trace: list[ChurnOp]) -> ChurnStats:
    """Replay a trace: mutations hit the policy directly (the trace is
    the post-authorization mutation stream), queries hit the index."""
    stats = ChurnStats()
    for op in trace:
        if op.kind == "mutate":
            source, target = op.command.source, op.command.target
            if op.command.action is CommandAction.GRANT:
                policy.add_edge(source, target)
            else:
                policy.remove_edge(source, target)
            stats.mutations += 1
        else:
            decision = index.authorizes(op.command.user, op.command)
            stats.queries += 1
            allowed = decision is not None
            stats.permitted += allowed
            stats.decisions.append(allowed)
    return stats


def differential_churn(
    seed: int,
    steps: int = 50,
    shape: PolicyShape = PolicyShape(),
    probes_per_step: int = 12,
    compiled: bool = True,
    remove_users: bool = False,
    mutation_log: list[str] | None = None,
) -> list[str]:
    """Randomized differential check: after every mutation the
    incremental index must agree *structurally* (held sets, rectangles,
    effective authority) and *behaviourally* (sampled authorization
    probes) with a from-scratch rebuild.

    Two oracles are compared against.  A fresh index in the *same*
    representation pins incremental maintenance exactly (internal
    structures included).  When ``compiled=True``, a fresh
    ``compiled=False`` index additionally pins the bitset kernel to
    the frozenset oracle (invariant 9): held sets are compared through
    :meth:`~repro.core.authz_index.AuthorizationIndex.held_privileges`,
    rectangles through ``thaw()``, review surfaces exactly, and probe
    decisions at grant/deny level — the covering privilege may
    legitimately differ between representations when several cover
    (scan order), so the frozenset oracle additionally checks the
    returned privilege is genuinely held.

    ``remove_users=True`` mixes user deprovisioning (and usually
    re-provisioning) into the mutations — the interner ID-reuse case.
    Returns the list of violations (empty means the property held).
    Random policies here exercise cycles, nested admin privileges and
    privilege-vertex garbage collection — the edge cases of the dirty
    region computation.
    """
    from ..core.authz_index import AuthorizationIndex

    rng = random.Random(seed)
    policy = random_policy(seed, shape)
    index = AuthorizationIndex(policy, compiled=compiled)
    violations: list[str] = []

    users = sorted(policy.users(), key=str)
    roles = sorted(policy.roles(), key=str)
    privileges = sorted(policy.subterm_closure(), key=str)

    for step_number in range(steps):
        if remove_users and rng.random() < 0.25 and users:
            victim = rng.choice(users)
            policy.remove_user(victim)
            mutation = f"remove-user {victim}"
            if rng.random() < 0.7:
                # Re-added in the same burst: the freed interner ID is
                # typically handed straight back — a surviving stale
                # mask would now misread it.
                policy.add_user(victim)
                policy.assign_user(victim, rng.choice(roles))
                mutation += f"; re-add {victim}"
        else:
            mutation = _random_mutation(rng, policy, users, roles, privileges)
        if mutation_log is not None:
            mutation_log.append(mutation)
        index.refresh()
        fresh = AuthorizationIndex(policy, compiled=compiled)
        oracle = (
            AuthorizationIndex(policy, compiled=False) if compiled else fresh
        )
        for user in users:
            if index._held.get(user) != fresh._held.get(user):
                violations.append(
                    f"step {step_number} ({mutation}): held set of {user} "
                    "diverged from full rebuild"
                )
            if set(index._rectangles.get(user, ())) != set(
                fresh._rectangles.get(user, ())
            ):
                violations.append(
                    f"step {step_number} ({mutation}): rectangles of {user} "
                    "diverged from full rebuild"
                )
            if index.effective_authority(user) != fresh.effective_authority(
                user
            ):
                violations.append(
                    f"step {step_number} ({mutation}): effective authority "
                    f"of {user} diverged from full rebuild"
                )
            if compiled:
                if index.held_privileges(user) != oracle.held_privileges(
                    user
                ):
                    violations.append(
                        f"step {step_number} ({mutation}): compiled held "
                        f"set of {user} diverged from the frozenset oracle"
                    )
                if {
                    r.thaw() for r in index._rectangles.get(user, ())
                } != set(oracle._rectangles.get(user, ())):
                    violations.append(
                        f"step {step_number} ({mutation}): compiled "
                        f"rectangles of {user} diverged from the frozenset "
                        "oracle"
                    )
                if index.effective_authority(
                    user
                ) != oracle.effective_authority(user):
                    violations.append(
                        f"step {step_number} ({mutation}): compiled "
                        f"effective authority of {user} diverged from the "
                        "frozenset oracle"
                    )
        for _ in range(probes_per_step):
            issuer = rng.choice(users)
            probe = Command(
                issuer,
                rng.choice([CommandAction.GRANT, CommandAction.REVOKE]),
                rng.choice(users + roles),
                rng.choice(roles + privileges),
            )
            got = index.authorizes(issuer, probe)
            if got != fresh.authorizes(issuer, probe):
                violations.append(
                    f"step {step_number}: incremental and fresh index "
                    f"disagree on {probe}"
                )
            if compiled:
                want = oracle.authorizes(issuer, probe)
                if (got is None) != (want is None):
                    violations.append(
                        f"step {step_number}: compiled kernel and "
                        f"frozenset oracle disagree on {probe}"
                    )
                elif got is not None and got not in oracle.held_privileges(
                    issuer
                ):
                    violations.append(
                        f"step {step_number}: compiled kernel authorized "
                        f"{probe} by a privilege the oracle says {issuer} "
                        "does not hold"
                    )
    return violations


def differential_shard_churn(
    seed: int,
    steps: int = 40,
    shape: PolicyShape = PolicyShape(),
    shard_counts: tuple[int, ...] = (2, 4, 7),
    probes_per_step: int = 8,
    burst_log: list[str] | None = None,
    compiled: bool = True,
) -> list[str]:
    """Randomized differential check for the *sharded* index: after
    every delta burst, a :class:`~repro.core.authz_shard.\
ShardedAuthorizationIndex` at each shard count must answer
    ``authorizes``, ``grantable_pairs``, ``revocable_pairs`` and
    ``effective_authority`` identically to a from-scratch unsharded
    oracle.

    Bursts contain one to three mutations applied back-to-back before
    any index validates, including user deprovisioning and users
    removed *and re-added* within the same burst — the cases where a
    shard's journal replay must not resurrect or lose per-user
    entries (and, under the compiled kernel, where interner IDs are
    recycled).  When ``compiled=True`` the review surfaces are pinned
    to a *frozenset* oracle — they are plain pair sets, equal across
    representations — and ``authorizes`` is pinned exactly to a
    same-representation oracle plus at grant/deny level to the
    frozenset one.  Returns the list of violations (empty means the
    invariant held); ``burst_log`` (if given) collects the mutation
    labels so callers can assert the mix was actually exercised.
    """
    from ..core.authz_index import AuthorizationIndex
    from ..core.authz_shard import ShardedAuthorizationIndex

    rng = random.Random(seed ^ 0x51A2D)
    policy = random_policy(seed, shape)
    sharded = {
        count: ShardedAuthorizationIndex(
            policy, shards=count, compiled=compiled
        )
        for count in shard_counts
    }
    violations: list[str] = []

    users = sorted(policy.users(), key=str)
    roles = sorted(policy.roles(), key=str)
    privileges = sorted(policy.subterm_closure(), key=str)

    for step_number in range(steps):
        burst: list[str] = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.2 and users:
                victim = rng.choice(users)
                policy.remove_user(victim)
                burst.append(f"remove-user {victim}")
                if rng.random() < 0.7:
                    # Re-added within the same delta burst: the shard
                    # must end up with a fresh entry, not a stale one.
                    policy.add_user(victim)
                    policy.assign_user(victim, rng.choice(roles))
                    burst.append(f"re-add {victim}")
            else:
                burst.append(
                    _random_mutation(rng, policy, users, roles, privileges)
                )
        label = "; ".join(burst)
        if burst_log is not None:
            burst_log.extend(burst)
        fresh = AuthorizationIndex(policy, compiled=compiled)
        oracle = (
            AuthorizationIndex(policy, compiled=False) if compiled else fresh
        )
        probes = [
            Command(
                rng.choice(users),
                rng.choice([CommandAction.GRANT, CommandAction.REVOKE]),
                rng.choice(users + roles),
                rng.choice(roles + privileges),
            )
            for _ in range(probes_per_step)
        ]
        for count, index in sharded.items():
            for user in users:
                for surface in (
                    "grantable_pairs", "revocable_pairs",
                    "effective_authority",
                ):
                    got = getattr(index, surface)(user)
                    expected = getattr(oracle, surface)(user)
                    if got != expected:
                        violations.append(
                            f"step {step_number} ({label}): shards={count} "
                            f"{surface} of {user} diverged from the "
                            "unsharded oracle"
                        )
            for probe in probes:
                got = index.authorizes(probe.user, probe)
                if got != fresh.authorizes(probe.user, probe):
                    violations.append(
                        f"step {step_number} ({label}): shards={count} "
                        f"authorizes disagrees on {probe}"
                    )
                if compiled:
                    want = oracle.authorizes(probe.user, probe)
                    if (got is None) != (want is None):
                        violations.append(
                            f"step {step_number} ({label}): shards={count} "
                            f"compiled decision disagrees with the "
                            f"frozenset oracle on {probe}"
                        )
    return violations


def _random_mutation(rng, policy, users, roles, privileges) -> str:
    """Apply one random legal mutation to ``policy``; returns a label."""
    kind = rng.random()
    if kind < 0.3:
        existing = sorted(policy.edge_set(), key=str)
        if existing:
            edge = rng.choice(existing)
            policy.remove_edge(*edge)
            return f"remove {edge}"
    if kind < 0.55:
        user, role = rng.choice(users), rng.choice(roles)
        policy.assign_user(user, role)
        return f"assign {user}->{role}"
    if kind < 0.8:
        senior, junior = rng.sample(roles, 2) if len(roles) > 1 else (
            roles[0], roles[0]
        )
        if senior != junior:
            policy.add_inheritance(senior, junior)
            return f"inherit {senior}->{junior}"
    role = rng.choice(roles)
    privilege = rng.choice(privileges)
    policy.assign_privilege(role, privilege)
    return f"pa {role}->{privilege}"
