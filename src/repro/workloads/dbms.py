"""Guarded-database workload traces, runnable against any backend.

A trace is a list of :class:`Operation` values — SQL statements issued
by named users with named active roles, interleaved with administrative
grant/revoke commands — with **no** references to live objects, so the
same trace replays bit-for-bit against every storage backend.
:func:`run_trace` executes one against a
:class:`~repro.dbms.engine.GuardedDatabase` and returns a
:class:`TraceResult` whose :meth:`~TraceResult.canonical` form (every
row of every SELECT, every affected-count, every denial, in order) is
what the differential suite compares across engines, alongside the
audit trail.

The hospital and enterprise trace builders live with their policy
generators (:func:`repro.workloads.hospital.hospital_query_trace`,
:func:`repro.workloads.enterprise.enterprise_query_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.commands import grant_cmd, revoke_cmd
from ..core.entities import Role, User
from ..core.sessions import Session
from ..dbms.engine import GuardedDatabase
from ..dbms.sql import execute_sql
from ..errors import AccessDenied


@dataclass(frozen=True)
class Operation:
    """One step of a replayable workload.

    ``kind`` is ``"sql"`` (execute ``sql`` as ``user`` with ``roles``
    active) or ``"grant"`` / ``"revoke"`` (the administrative command
    ``cmd(user, ¤/♦, source, target)`` with ``source`` a user name and
    ``target`` a role name).
    """

    kind: str
    user: str
    roles: tuple[str, ...] = ()
    sql: str = ""
    source: str = ""
    target: str = ""

    @classmethod
    def query(cls, user: str, roles: tuple[str, ...], sql: str) -> "Operation":
        return cls("sql", user, roles, sql)

    @classmethod
    def grant(cls, actor: str, source: str, target: str) -> "Operation":
        return cls("grant", actor, source=source, target=target)

    @classmethod
    def revoke(cls, actor: str, source: str, target: str) -> "Operation":
        return cls("revoke", actor, source=source, target=target)


@dataclass
class TraceResult:
    """Everything observable from one trace replay."""

    #: per-operation outcomes, in trace order:
    #: ``("rows", <tuple of row tuples>)`` for SELECT,
    #: ``("affected", n)`` for mutations,
    #: ``("denied", message)`` for denials,
    #: ``("admin", executed)`` for administrative commands.
    outcomes: list[tuple] = field(default_factory=list)
    rows_returned: int = 0
    affected: int = 0
    denials: int = 0
    admin_executed: int = 0

    def canonical(self) -> tuple[tuple, ...]:
        """Hashable image for cross-backend comparison."""
        return tuple(self.outcomes)


def _frozen_rows(rows) -> tuple:
    """Rows as nested tuples (column, value) — order-preserving and
    hashable, so two backends' results compare exactly."""
    return tuple(tuple(row.items()) for row in rows)


def run_trace(
    database: GuardedDatabase, trace: list[Operation]
) -> TraceResult:
    """Replay ``trace`` against ``database``.

    Sessions are created lazily, one per distinct ``(user, roles)``
    pair, at the pair's first SQL operation — deterministically, so the
    audit trail (logins included) is identical across backends.  A
    session opened before a revocation naturally loses access when the
    policy edge goes (the monitor re-checks authorization per access).
    """
    result = TraceResult()
    sessions: dict[tuple[str, tuple[str, ...]], Session] = {}
    for operation in trace:
        if operation.kind in ("grant", "revoke"):
            builder = grant_cmd if operation.kind == "grant" else revoke_cmd
            record = database.administer(
                builder(
                    User(operation.user),
                    User(operation.source),
                    Role(operation.target),
                )
            )
            result.outcomes.append(("admin", record.executed))
            result.admin_executed += record.executed
            continue
        key = (operation.user, operation.roles)
        session = sessions.get(key)
        if session is None:
            try:
                session = database.login(
                    User(operation.user),
                    *(Role(name) for name in operation.roles),
                )
            except AccessDenied as denied:  # role not (or no longer) reachable
                result.outcomes.append(("denied", str(denied)))
                result.denials += 1
                continue
            sessions[key] = session
        try:
            query_result = execute_sql(database, session, operation.sql)
        except AccessDenied as denied:
            result.outcomes.append(("denied", str(denied)))
            result.denials += 1
        else:
            if query_result.rows or operation.sql.lstrip()[:6].lower() == "select":
                result.outcomes.append(("rows", _frozen_rows(query_result.rows)))
                result.rows_returned += len(query_result.rows)
            else:
                result.outcomes.append(("affected", query_result.affected))
                result.affected += query_result.affected
    return result
