"""Enterprise workloads: large hierarchies with delegation chains.

The paper's introduction motivates the problem with organizations
whose "RBAC policies can be very large and dynamic, consisting of
thousands of roles".  This module builds such policies — departmental
trees with per-department administrators and multi-level delegation
privileges (nested ¤ terms) — for the scaling benchmarks and the
enterprise example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant, perm


@dataclass(frozen=True)
class EnterpriseShape:
    departments: int = 5
    levels_per_department: int = 4
    roles_per_level: int = 3
    employees_per_department: int = 10
    delegation_depth: int = 2


def enterprise_policy(
    shape: EnterpriseShape = EnterpriseShape(), seed: int = 0
) -> Policy:
    """A multi-department enterprise.

    Each department is a tree of roles ``dept_d_L{level}_r{index}``;
    the department head role sits on top; a global ``CISO`` role holds
    nested delegation privileges — ``¤(head_d, ¤(employee, role))``
    chains of configurable depth — so the ordering has real work to do.
    """
    rng = random.Random(seed)
    policy = Policy()
    ciso = Role("CISO")
    root_admin = User("ciso_admin")
    policy.assign_user(root_admin, ciso)

    for dept in range(shape.departments):
        head = Role(f"dept{dept}_head")
        policy.add_role(head)
        previous_level = [head]
        for level in range(shape.levels_per_department):
            current_level = [
                Role(f"dept{dept}_L{level}_r{index}")
                for index in range(shape.roles_per_level)
            ]
            for role in current_level:
                policy.add_role(role)
                policy.add_inheritance(rng.choice(previous_level), role)
            previous_level = current_level
        # Bottom roles carry the department's resources.
        for index, role in enumerate(previous_level):
            policy.assign_privilege(role, perm("read", f"dept{dept}_doc{index}"))
            policy.assign_privilege(role, perm("write", f"dept{dept}_wiki"))

        employees = [
            User(f"dept{dept}_emp{index}")
            for index in range(shape.employees_per_department)
        ]
        for employee in employees:
            level_roles = [
                role for role in policy.roles()
                if role.name.startswith(f"dept{dept}_L")
            ]
            policy.assign_user(employee, rng.choice(level_roles))

        # Delegation chain: the CISO may give the department head the
        # privilege to give ... the privilege to assign an employee to
        # a mid-level role (nested ¤ terms of the requested depth).
        target_role = Role(
            f"dept{dept}_L{shape.levels_per_department - 1}_r0"
        )
        newcomer = User(f"dept{dept}_newcomer")
        policy.add_user(newcomer)
        term = Grant(newcomer, target_role)
        for _ in range(shape.delegation_depth):
            term = Grant(head, term)
        policy.assign_privilege(ciso, term)
        # Heads can directly appoint newcomers to the top working level.
        policy.assign_privilege(
            head, Grant(newcomer, Role(f"dept{dept}_L0_r0"))
        )
        policy.assign_user(User(f"dept{dept}_manager"), head)
    return policy


def delegation_targets(policy: Policy) -> list[tuple[Role, Grant]]:
    """All (holder, nested-grant) pairs — benchmark query workload."""
    return [
        (holder, privilege)
        for holder, privilege in policy.admin_privileges_assigned()
        if isinstance(privilege, Grant) and privilege.depth >= 2
    ]
