"""Enterprise workloads: large hierarchies with delegation chains.

The paper's introduction motivates the problem with organizations
whose "RBAC policies can be very large and dynamic, consisting of
thousands of roles".  This module builds such policies — departmental
trees with per-department administrators and multi-level delegation
privileges (nested ¤ terms) — for the scaling benchmarks and the
enterprise example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.commands import Mode
from ..core.entities import Role, User
from ..core.policy import Policy
from ..core.privileges import Grant, perm
from ..dbms.engine import GuardedDatabase
from .dbms import Operation


@dataclass(frozen=True)
class EnterpriseShape:
    departments: int = 5
    levels_per_department: int = 4
    roles_per_level: int = 3
    employees_per_department: int = 10
    delegation_depth: int = 2


def enterprise_policy(
    shape: EnterpriseShape = EnterpriseShape(), seed: int = 0
) -> Policy:
    """A multi-department enterprise.

    Each department is a tree of roles ``dept_d_L{level}_r{index}``;
    the department head role sits on top; a global ``CISO`` role holds
    nested delegation privileges — ``¤(head_d, ¤(employee, role))``
    chains of configurable depth — so the ordering has real work to do.
    """
    rng = random.Random(seed)
    policy = Policy()
    ciso = Role("CISO")
    root_admin = User("ciso_admin")
    policy.assign_user(root_admin, ciso)

    for dept in range(shape.departments):
        head = Role(f"dept{dept}_head")
        policy.add_role(head)
        previous_level = [head]
        for level in range(shape.levels_per_department):
            current_level = [
                Role(f"dept{dept}_L{level}_r{index}")
                for index in range(shape.roles_per_level)
            ]
            for role in current_level:
                policy.add_role(role)
                policy.add_inheritance(rng.choice(previous_level), role)
            previous_level = current_level
        # Bottom roles carry the department's resources.
        for index, role in enumerate(previous_level):
            policy.assign_privilege(role, perm("read", f"dept{dept}_doc{index}"))
            policy.assign_privilege(role, perm("write", f"dept{dept}_wiki"))

        employees = [
            User(f"dept{dept}_emp{index}")
            for index in range(shape.employees_per_department)
        ]
        for employee in employees:
            level_roles = [
                role for role in policy.roles()
                if role.name.startswith(f"dept{dept}_L")
            ]
            policy.assign_user(employee, rng.choice(level_roles))

        # Delegation chain: the CISO may give the department head the
        # privilege to give ... the privilege to assign an employee to
        # a mid-level role (nested ¤ terms of the requested depth).
        target_role = Role(
            f"dept{dept}_L{shape.levels_per_department - 1}_r0"
        )
        newcomer = User(f"dept{dept}_newcomer")
        policy.add_user(newcomer)
        term = Grant(newcomer, target_role)
        for _ in range(shape.delegation_depth):
            term = Grant(head, term)
        policy.assign_privilege(ciso, term)
        # Heads can directly appoint newcomers to the top working level.
        policy.assign_privilege(
            head, Grant(newcomer, Role(f"dept{dept}_L0_r0"))
        )
        policy.assign_user(User(f"dept{dept}_manager"), head)
    return policy


def delegation_targets(policy: Policy) -> list[tuple[Role, Grant]]:
    """All (holder, nested-grant) pairs — benchmark query workload."""
    return [
        (holder, privilege)
        for holder, privilege in policy.admin_privileges_assigned()
        if isinstance(privilege, Grant) and privilege.depth >= 2
    ]


def guarded_enterprise_database(
    shape: EnterpriseShape = EnterpriseShape(),
    backend="memory",
    mode: Mode = Mode.STRICT,
    seed: int = 0,
    rows_per_table: int = 6,
    **backend_options,
) -> GuardedDatabase:
    """The enterprise as a guarded DBMS over any backend.

    Per department: one ``dept{d}_doc{i}`` table per bottom-level role
    (matching the policy's ``(read, ...)`` objects) and one
    ``dept{d}_wiki`` table (the shared ``(write, ...)`` object), seeded
    deterministically.
    """
    database = GuardedDatabase.create(
        enterprise_policy(shape, seed), mode=mode,
        backend=backend, **backend_options,
    )
    for dept in range(shape.departments):
        for index in range(shape.roles_per_level):
            name = f"dept{dept}_doc{index}"
            database.store.create_table(name, ["title", "owner", "revision"])
            for row in range(rows_per_table):
                database.store.insert(name, {
                    "title": f"d{dept}-doc{index}-r{row}",
                    "owner": f"dept{dept}_manager",
                    "revision": row,
                })
        wiki = f"dept{dept}_wiki"
        database.store.create_table(wiki, ["page", "author", "body"])
        database.store.insert(wiki, {
            "page": "index", "author": f"dept{dept}_manager", "body": "root",
        })
    return database


def enterprise_query_trace(
    shape: EnterpriseShape = EnterpriseShape(), operations: int = 100
) -> list[Operation]:
    """A deterministic enterprise workload runnable on any backend.

    Department managers (assigned to the head role, which reaches every
    bottom-level role regardless of the seed's random tree shape) read
    the docs and write the wiki; newcomers hold no roles yet and are
    denied.  The trace is pure data — no RNG, no policy inspection.
    """
    trace: list[Operation] = []
    for step in range(operations):
        dept = step % shape.departments
        manager = f"dept{dept}_manager"
        head_roles = (f"dept{dept}_head",)
        kind = step % 4
        if kind == 0:
            doc = (step // shape.departments) % shape.roles_per_level
            trace.append(Operation.query(
                manager, head_roles,
                f"SELECT title, revision FROM dept{dept}_doc{doc} "
                f"WHERE revision >= {step % 4}",
            ))
        elif kind == 1:
            trace.append(Operation.query(
                manager, head_roles,
                f"INSERT INTO dept{dept}_wiki (page, author, body) "
                f"VALUES ('page-{step:03d}', '{manager}', 'body {step}')",
            ))
        elif kind == 2:
            trace.append(Operation.query(
                manager, head_roles,
                f"UPDATE dept{dept}_wiki SET body = 'edited {step}' "
                f"WHERE page != 'index'",
            ))
        else:
            # Newcomers are in the policy but hold no roles: denied.
            trace.append(Operation.query(
                f"dept{dept}_newcomer", (),
                f"SELECT * FROM dept{dept}_doc0",
            ))
    return trace
