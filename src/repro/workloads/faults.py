"""Named fault-injection points for the serving layer.

The chaos harness the fault-tolerance layer is tested with: the WAL
and the PDP writer thread named *injection points* through their hot
paths (``wal.before_append``, ``writer.after_apply``, ...), and this
module decides — per point — whether to do nothing (the default),
raise a simulated process death (:class:`CrashInjected`), raise an
ordinary supervised failure (:class:`InjectedFailure`), sleep, or
corrupt the bytes about to hit disk (a *torn write*: a prefix of the
record reaches the file, then the process dies).

Zero overhead when disarmed: call sites guard with the single
attribute read ``if FAULTS.active: FAULTS.hit("point")``, so a
serving deployment pays one falsy branch per point.  Arming is
programmatic (:meth:`FaultInjector.arm`) or environment-driven
(``REPRO_FAULTS=point:action[:times[:after]][,...]`` — the knob the
CLI and CI chaos jobs use).

The second half of the module is the differential crash-recovery
campaign behind **fuzz invariant 15**
(:func:`differential_crash_recovery` +
:func:`differential_append_failure` + :func:`wal_tamper_campaign`,
fronted by :func:`repro.workloads.fuzz.fuzz_crash_recovery` and
``repro fuzz --crash-diff``): for every injection point, a PDP is
killed mid-trace, recovered from the WAL alone, and pinned
byte-identical to an uninterrupted oracle run at the durable batch
prefix; a *recoverable* failure at every point (the
``wal.before_fsync:fail`` class) must fail only its batch and leave
a chain that still verifies and recovers to the live state; and
every single-record mutation, omission and truncation of the log
must be rejected by ``verify_chain``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = [
    "CrashInjected",
    "InjectedFailure",
    "Fault",
    "FaultInjector",
    "FAULTS",
    "FAIL_POINTS",
    "INJECTION_POINTS",
    "differential_append_failure",
    "differential_crash_recovery",
    "wal_tamper_campaign",
]


class CrashInjected(ReproError):
    """A simulated ``kill -9`` at a named injection point.

    The supervisor treats this as **fatal** — the writer dies without
    retry, exactly like a real process death: whatever bytes already
    reached the WAL are the only survivors, and recovery must rebuild
    from them alone."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"crash injected at {point}")


class InjectedFailure(ReproError):
    """A simulated *recoverable* failure (I/O hiccup, transient bug):
    the supervisor fails the affected batch and retries under
    backoff."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"failure injected at {point}")


@dataclass
class Fault:
    """One armed fault: fire ``action`` at ``point``, skipping the
    first ``after`` hits, at most ``times`` times."""

    point: str
    action: str = "crash"  # crash | fail | delay | torn
    times: int = 1
    after: int = 0
    delay: float = 0.0
    #: bytes of the record prefix that survive a torn write (the rest
    #: of the line, including the newline, is lost with the process).
    torn_bytes: int = 16
    hits: int = field(default=0)
    fired: int = field(default=0)

    _ACTIONS = ("crash", "fail", "delay", "torn")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {', '.join(self._ACTIONS)})"
            )


class FaultInjector:
    """The registry of armed faults, keyed by injection point.

    One module-level instance (:data:`FAULTS`) is shared by the WAL,
    the PDP writer and the campaigns; tests arm and :meth:`clear` it
    around each scenario.  ``active`` is the cheap guard: False means
    every ``hit`` call was skipped at the call site.
    """

    def __init__(self):
        self._faults: dict[str, Fault] = {}
        self.active = False

    # -- arming --------------------------------------------------------
    def arm(
        self,
        point: str,
        action: str = "crash",
        times: int = 1,
        after: int = 0,
        delay: float = 0.0,
        torn_bytes: int = 16,
    ) -> Fault:
        """Arm ``action`` at ``point``; returns the armed fault (its
        ``fired`` counter lets tests assert the fault actually hit)."""
        fault = Fault(
            point, action, times=times, after=after,
            delay=delay, torn_bytes=torn_bytes,
        )
        self._faults[point] = fault
        self.active = True
        return fault

    def disarm(self, point: str) -> None:
        self._faults.pop(point, None)
        self.active = bool(self._faults)

    def clear(self) -> None:
        self._faults.clear()
        self.active = False

    def load_env(self, text: str | None = None) -> int:
        """Arm faults from ``REPRO_FAULTS`` (or an explicit spec):
        ``point:action[:times[:after]]`` entries, comma-separated.
        Returns the number of faults armed."""
        if text is None:
            text = os.environ.get("REPRO_FAULTS", "")
        count = 0
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) < 2:
                raise ReproError(
                    f"malformed REPRO_FAULTS entry {entry!r} "
                    "(want point:action[:times[:after]])"
                )
            point, action = parts[0], parts[1]
            try:
                times = int(parts[2]) if len(parts) > 2 else 1
                after = int(parts[3]) if len(parts) > 3 else 0
            except ValueError as error:
                raise ReproError(
                    f"malformed REPRO_FAULTS entry {entry!r}: {error}"
                ) from None
            self.arm(point, action, times=times, after=after)
            count += 1
        return count

    # -- introspection -------------------------------------------------
    def fired(self, point: str) -> int:
        """How many times the fault at ``point`` actually fired."""
        fault = self._faults.get(point)
        return fault.fired if fault else 0

    def armed(self) -> list[str]:
        return sorted(self._faults)

    # -- the hot-path hooks -------------------------------------------
    def hit(self, point: str) -> None:
        """Consult the registry at ``point``.  Raises
        :class:`CrashInjected` / :class:`InjectedFailure` or sleeps
        when an armed fault fires; otherwise returns immediately."""
        fault = self._faults.get(point)
        if fault is None or fault.fired >= fault.times:
            return
        fault.hits += 1
        if fault.hits <= fault.after:
            return
        fault.fired += 1
        if fault.action == "crash":
            raise CrashInjected(point)
        if fault.action == "fail":
            raise InjectedFailure(point)
        if fault.action == "delay":
            time.sleep(fault.delay)

    def torn_prefix(self, point: str, data: bytes) -> bytes | None:
        """For torn-write points: the surviving prefix of ``data`` if
        a ``torn`` fault fires here, else None.  The caller writes the
        prefix and then raises :class:`CrashInjected` itself — the
        split keeps the file mutation and the death at the call site,
        where the handles live."""
        fault = self._faults.get(point)
        if fault is None or fault.action != "torn":
            return None
        if fault.fired >= fault.times:
            return None
        fault.hits += 1
        if fault.hits <= fault.after:
            return None
        fault.fired += 1
        return data[: max(1, min(fault.torn_bytes, len(data) - 1))]


#: The shared injector instance.  ``REPRO_FAULTS`` is honoured at
#: import so env-armed faults reach code that never touches this
#: module directly.
FAULTS = FaultInjector()
if os.environ.get("REPRO_FAULTS"):
    FAULTS.load_env()


# ---------------------------------------------------------------------------
# The differential crash-recovery campaign (fuzz invariant 15)
# ---------------------------------------------------------------------------

#: Every named injection point the campaign kills the PDP at, in
#: pipeline order.  The writer's apply/log/publish/resolve steps plus
#: the WAL's append/torn-write/fsync steps — between them, a crash
#: lands on every edge of the durability pipeline.
INJECTION_POINTS = (
    "writer.before_apply",
    "writer.after_apply",
    "wal.before_append",
    "wal.torn_write",
    "wal.before_fsync",
    "writer.before_publish",
    "writer.before_resolve",
)

#: How many batches are *durable* when a crash fires at each point on
#: batch ``k`` (0-based).  Before the WAL append (or mid-append, the
#: torn write) the batch is lost; once the full line reached the file
#: it survives — an in-process simulated death does not lose the page
#: cache, so ``wal.before_fsync`` keeps its batch.  Values are the
#: offset added to ``k``.
_DURABLE_OFFSET = {
    "writer.before_apply": 0,
    "writer.after_apply": 0,
    "wal.before_append": 0,
    "wal.torn_write": 0,
    "wal.before_fsync": 1,
    "writer.before_publish": 1,
    "writer.before_resolve": 1,
}

#: The points the *recoverable-failure* campaign arms with action
#: "fail" instead of a kill: every crash point except the torn write
#: (which only exists as a death), plus ``wal.after_append``.  The
#: load-bearing case is ``wal.before_fsync:fail`` — a flush/fsync
#: error *after* the line reached the file must roll the file back,
#: or the supervised retry/rebase would append a duplicate seq and
#: permanently break the chain.
FAIL_POINTS = (
    "writer.before_apply",
    "writer.after_apply",
    "wal.before_append",
    "wal.before_fsync",
    "wal.after_append",
    "writer.before_publish",
    "writer.before_resolve",
)


async def _scripted_run(
    seed: int,
    batches: int,
    batch_size: int,
    shape,
    compiled: bool,
    wal_path: str | None = None,
    plan: list | None = None,
):
    """Drive one PDP for ``batches`` micro-batches.

    With ``plan=None`` the command stream is generated on the fly
    (deterministic in ``seed`` and the evolving policy); otherwise the
    given per-batch command lists are replayed verbatim — how the
    victim runs repeat the oracle's exact trace.  ``max_batch`` equals
    the batch size and every batch is fully enqueued within one event
    loop tick, so batching is deterministic: one submit_many == one
    WAL record.  Returns ``(plan, states)`` where ``states[k]`` is the
    ``(policy_json, version)`` pair after ``k`` applied batches."""
    import random

    from ..core.serialization import policy_to_json
    from ..serve import PolicyDecisionPoint
    from .fuzz import _random_command
    from .generators import random_policy

    rng = random.Random(seed)
    policy = random_policy(seed, shape)
    pdp = PolicyDecisionPoint(
        policy=policy, compiled=compiled, wal=wal_path,
        max_batch=batch_size, max_delay=0.0005,
    )
    executed_plan: list = []
    states = [(policy_to_json(pdp.monitor.policy), pdp.monitor.policy.version)]
    async with pdp:
        for index in range(batches):
            if plan is None:
                commands = [
                    _random_command(rng, pdp.monitor.policy)
                    for _ in range(batch_size)
                ]
            else:
                commands = plan[index]
            executed_plan.append(commands)
            await pdp.submit_many(commands)
            states.append(
                (policy_to_json(pdp.monitor.policy),
                 pdp.monitor.policy.version)
            )
    return executed_plan, states


async def _victim_run(
    seed: int,
    plan: list,
    shape,
    wal_path: str,
    point: str,
    crash_batch: int,
    compiled: bool,
):
    """Replay the oracle's trace into a WAL-attached PDP with one
    fault armed at ``point``, scheduled for batch ``crash_batch``.
    Returns ``(fault, failure)`` — the armed fault (its ``fired``
    counter proves the crash actually happened) and the typed error
    the doomed submit surfaced with (None is a campaign violation:
    something hung or silently succeeded)."""
    from ..serve import PolicyDecisionPoint
    from .generators import random_policy

    policy = random_policy(seed, shape)
    batch_size = len(plan[0])
    # Construct first, arm second: the genesis append must not
    # consume a hit, so every point's budget counts batches only.
    pdp = PolicyDecisionPoint(
        policy=policy, compiled=compiled, wal=wal_path,
        max_batch=batch_size, max_delay=0.0005,
    )
    action = "torn" if point == "wal.torn_write" else "crash"
    fault = FAULTS.arm(point, action, times=1, after=crash_batch)
    failure = None
    await pdp.start()
    try:
        for commands in plan:
            try:
                await pdp.submit_many(commands)
            except ReproError as error:
                failure = error
                break
    finally:
        FAULTS.clear()
        pdp.kill()
    return fault, failure


async def _failure_run(
    seed: int,
    plan: list,
    shape,
    wal_path: str,
    point: str,
    fail_batch: int,
    compiled: bool,
):
    """Replay the oracle's trace with a *recoverable* failure armed at
    ``point`` for batch ``fail_batch``: the doomed batch must fail
    typed, the supervised writer must resync and keep serving, and the
    remaining batches must apply.  Returns ``(fault, failure, doc,
    version, head)`` — the armed fault, the typed error the doomed
    submit surfaced with, and the live service's final canonical
    policy JSON / version / WAL head."""
    from ..core.serialization import policy_to_json
    from ..serve import PolicyDecisionPoint, WriterSupervisor

    from .generators import random_policy

    policy = random_policy(seed, shape)
    batch_size = len(plan[0])
    # Construct first, arm second: the genesis append must not consume
    # a hit, so every point's budget counts batches only.
    pdp = PolicyDecisionPoint(
        policy=policy, compiled=compiled, wal=wal_path,
        max_batch=batch_size, max_delay=0.0005,
        supervisor=WriterSupervisor(base_delay=0.0),
    )
    fault = FAULTS.arm(point, "fail", times=1, after=fail_batch)
    failure = None
    try:
        async with pdp:
            for commands in plan:
                try:
                    await pdp.submit_many(commands)
                except ReproError as error:
                    failure = error
            return (
                fault,
                failure,
                policy_to_json(pdp.monitor.policy),
                pdp.monitor.policy.version,
                pdp.wal.head,
            )
    finally:
        FAULTS.clear()


def differential_append_failure(
    seed: int = 0,
    batches: int = 6,
    batch_size: int = 8,
    shape=None,
    compiled: bool = True,
    points=None,
    fail_batch: int | None = None,
    workdir: str | None = None,
) -> list[str]:
    """Inject a recoverable failure at every point; pin the survivors.

    The crash campaign kills the process, so it never exercises the
    *supervised* path where the writer lives on after an append
    failure — exactly where a half-written line followed by a
    retry/rebase could duplicate a seq and break the chain for good.
    Per point in :data:`FAIL_POINTS`: a WAL-attached PDP replays the
    oracle's trace, an ``InjectedFailure`` fires mid-``fail_batch``,
    the doomed batch must surface a typed
    :class:`~repro.serve.supervisor.WriterFailed` (no hang, no silent
    success), the remaining batches must still apply, and afterwards
    the log must (a) pass the strict head-anchored ``verify_chain``
    and (b) :meth:`~repro.serve.pdp.PolicyDecisionPoint.recover` —
    on both kernels — to state byte-identical to the live service's.
    Returns violation strings; empty means the invariant held."""
    import asyncio
    import tempfile

    from ..core.serialization import policy_to_json
    from ..serve import PolicyDecisionPoint
    from ..serve.supervisor import WriterFailed
    from ..serve.wal import WalError, read_wal, verify_chain
    from .generators import PolicyShape

    if shape is None:
        shape = PolicyShape()
    if points is None:
        points = FAIL_POINTS
    if fail_batch is None:
        fail_batch = batches // 2
    if not 0 <= fail_batch < batches:
        raise ReproError(
            f"fail_batch {fail_batch} outside [0, {batches})"
        )
    violations: list[str] = []
    plan, _ = asyncio.run(
        _scripted_run(seed, batches, batch_size, shape, compiled)
    )
    workdir = workdir or tempfile.mkdtemp(prefix="repro-fail-")
    for point in points:
        path = os.path.join(
            workdir, point.replace(".", "_") + "_fail.wal"
        )
        fault, failure, doc, version, head = asyncio.run(
            _failure_run(
                seed, plan, shape, path, point, fail_batch, compiled
            )
        )
        if fault.fired == 0:
            violations.append(f"{point}: armed fault never fired")
            continue
        if failure is None:
            violations.append(
                f"{point}: injected failure surfaced no typed error "
                "(hang or silent success)"
            )
            continue
        if not isinstance(failure, WriterFailed):
            violations.append(
                f"{point}: doomed batch raised "
                f"{type(failure).__name__}, expected WriterFailed"
            )
        try:
            records, _ = read_wal(path)
            verify_chain(records, expected_head=head)
        except WalError as error:
            violations.append(
                f"{point}: log corrupt after supervised failure "
                f"(duplicate seq / broken chain?): {error}"
            )
            continue
        for kernel in (compiled, not compiled):
            label = "compiled" if kernel else "python"
            try:
                recovered = PolicyDecisionPoint.recover(
                    path, compiled=kernel
                )
            except ReproError as error:
                violations.append(
                    f"{point} [{label}]: recovery failed: {error}"
                )
                continue
            if policy_to_json(recovered.monitor.policy) != doc:
                violations.append(
                    f"{point} [{label}]: recovered policy diverges "
                    "from the live post-failure state"
                )
            if recovered.monitor.policy.version != version:
                violations.append(
                    f"{point} [{label}]: recovered version "
                    f"{recovered.monitor.policy.version} != live "
                    f"{version}"
                )
    return violations


def differential_crash_recovery(
    seed: int = 0,
    batches: int = 6,
    batch_size: int = 8,
    shape=None,
    compiled: bool = True,
    points=None,
    crash_batch: int | None = None,
    workdir: str | None = None,
) -> list[str]:
    """Kill the PDP at every injection point; pin recovery to the oracle.

    One uninterrupted *oracle* run records the state trajectory
    ``states[k]`` (canonical policy JSON + version after ``k``
    batches).  Then, per injection point: a fresh WAL-attached PDP
    replays the same trace, a crash fires mid-``crash_batch``, the
    service is killed, and :meth:`PolicyDecisionPoint.recover` must
    rebuild — **on both kernels** — state byte-identical to the oracle
    at that point's durable prefix.  Also asserts the crash surfaced
    as a typed error (no hang, no silent success) and that the fault
    actually fired.  Returns violation strings; empty means the
    invariant held."""
    import asyncio
    import tempfile

    from ..core.serialization import policy_to_json
    from ..serve import PolicyDecisionPoint
    from .generators import PolicyShape

    if shape is None:
        shape = PolicyShape()
    if points is None:
        points = INJECTION_POINTS
    if crash_batch is None:
        crash_batch = batches // 2
    if not 0 <= crash_batch < batches:
        raise ReproError(
            f"crash_batch {crash_batch} outside [0, {batches})"
        )
    violations: list[str] = []
    plan, states = asyncio.run(
        _scripted_run(seed, batches, batch_size, shape, compiled)
    )
    workdir = workdir or tempfile.mkdtemp(prefix="repro-crash-")
    for point in points:
        if point not in _DURABLE_OFFSET:
            raise ReproError(f"unknown injection point {point!r}")
        path = os.path.join(workdir, point.replace(".", "_") + ".wal")
        fault, failure = asyncio.run(
            _victim_run(
                seed, plan, shape, path, point, crash_batch, compiled
            )
        )
        if fault.fired == 0:
            violations.append(f"{point}: armed fault never fired")
            continue
        if failure is None:
            violations.append(
                f"{point}: crash surfaced no typed error "
                "(hang or silent success)"
            )
            continue
        expected_doc, expected_version = states[
            crash_batch + _DURABLE_OFFSET[point]
        ]
        for kernel in (compiled, not compiled):
            label = "compiled" if kernel else "python"
            try:
                recovered = PolicyDecisionPoint.recover(
                    path, compiled=kernel
                )
            except ReproError as error:
                violations.append(
                    f"{point} [{label}]: recovery failed: {error}"
                )
                continue
            document = policy_to_json(recovered.monitor.policy)
            if document != expected_doc:
                violations.append(
                    f"{point} [{label}]: recovered policy diverges "
                    f"from oracle at durable batch "
                    f"{crash_batch + _DURABLE_OFFSET[point]}"
                )
            if recovered.monitor.policy.version != expected_version:
                violations.append(
                    f"{point} [{label}]: recovered version "
                    f"{recovered.monitor.policy.version} != oracle "
                    f"{expected_version}"
                )
            if recovered.version != expected_version:
                violations.append(
                    f"{point} [{label}]: published snapshot version "
                    f"{recovered.version} != oracle {expected_version}"
                )
    return violations


def wal_tamper_campaign(
    seed: int = 0,
    batches: int = 4,
    batch_size: int = 6,
    shape=None,
    compiled: bool = True,
) -> list[str]:
    """Every single-record mutation, omission, and truncation of a
    healthy log must be rejected by :func:`~repro.serve.wal.verify_chain`.

    Builds one healthy WAL, then for **every** record produces three
    tampered variants — payload mutated (stored digest kept), record
    omitted, log truncated at the record — and requires the strict
    read/verify path (anchored at the known head digest, the way
    ``repro wal verify --head`` runs) to raise
    :class:`~repro.serve.wal.WalError` for each.  Returns violation
    strings for any tamper that was accepted."""
    import asyncio
    import json
    import tempfile

    from ..serve.wal import WalError, read_wal, verify_chain
    from .generators import PolicyShape

    if shape is None:
        shape = PolicyShape()
    workdir = tempfile.mkdtemp(prefix="repro-tamper-")
    path = os.path.join(workdir, "healthy.wal")
    asyncio.run(
        _scripted_run(
            seed, batches, batch_size, shape, compiled, wal_path=path
        )
    )
    records, _ = read_wal(path)
    head = verify_chain(records)
    with open(path, "rb") as handle:
        lines = handle.read().splitlines()

    def _mutate(line: bytes) -> bytes:
        document = json.loads(line)
        version = document["payload"].get("version")
        document["payload"]["version"] = (
            version + 1 if isinstance(version, int) else 1
        )
        return json.dumps(
            document, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    violations: list[str] = []
    tampered_path = os.path.join(workdir, "tampered.wal")
    for index in range(len(lines)):
        variants = (
            ("mutation", lines[:index] + [_mutate(lines[index])]
             + lines[index + 1:]),
            ("omission", lines[:index] + lines[index + 1:]),
            ("truncation", lines[:index]),
        )
        for name, tampered in variants:
            with open(tampered_path, "wb") as handle:
                for line in tampered:
                    handle.write(line + b"\n")
            try:
                tampered_records, _ = read_wal(tampered_path)
                verify_chain(tampered_records, expected_head=head)
            except WalError:
                continue
            violations.append(
                f"record {index}: {name} accepted by verify_chain"
            )
    return violations
